"""DSL-based synthesis — Algorithm 2.

One DBS invocation searches for a program satisfying *all* given examples
by plugging grammar-generated expressions into the supplied contexts.
The search interleaves, per Algorithm 2:

1. loop strategies — tried up front by default (cheap relative to
   enumeration), or, with ``DbsOptions.concurrent_loops`` (what the CLI's
   ``--jobs > 1`` selects for single syntheses), on a helper thread that
   runs alongside enumeration exactly as the paper describes; the
   concurrent variant is traced under a dedicated
   ``dbs.loops.concurrent`` span;
2. plugging every (context, expression) pair and testing the result;
3. a conditional-synthesis pass after each expression generation, using
   the recorded T(p) and B(g) sets (§5.2);
4. generating the next expression generation (§5.1).

The result is a program or ``TIMEOUT`` (``DbsResult.program is None``)
when the budget — wall clock, expression count, or program count — is
exhausted.
"""

from __future__ import annotations

import io
import threading
import time
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..obs.metrics import Registry
from ..obs.trace import get_tracer
from .budget import Budget, BudgetExhausted, default_budget
from .components import ComponentPool, PoolOptions
from .conditionals import ConditionalStore, solve_with_buckets
from .contexts import Context, trivial_context
from .dsl import Dsl, Example, Signature
from .evaluator import METRICS as EVAL_METRICS
from .evaluator import EvaluationError, run_program
from .expr import Expr, free_vars, is_recursive
from .loops import run_loop_strategies
from .types import BOOL, types_compatible
from .values import ERROR, structurally_equal


@dataclass
class DbsOptions:
    """Feature switches; the §6.3 ablations turn these off selectively."""

    use_dsl: bool = True
    semantic_dedup: bool = True
    enable_conditionals: bool = True
    enable_loops: bool = True
    # Run loop strategies on a helper thread beside enumeration (the
    # paper's concurrent-thread model) instead of serially up front.
    concurrent_loops: bool = False
    max_generations: int = 24
    evaluation_fuel: int = 60_000
    max_recursion_depth: int = 40


class DbsStats:
    """Counters for one DBS run — a backward-compatible property view
    over the run's :class:`~repro.obs.metrics.Registry`.

    The historical fields (``elapsed``, ``expressions``, ...) read and
    write the registry, so existing consumers (TDS steps, experiment
    drivers, baselines) keep working while everything new — labeled
    pool/dedup/evaluator breakdowns, per-production counts — lives in
    ``stats.registry`` and flows into trace reports.
    """

    __slots__ = ("registry",)

    # field name -> metric name (counters unless noted)
    ELAPSED = "dbs.elapsed_seconds"  # gauge
    EXPRESSIONS = "dbs.expressions"
    PROGRAMS_TESTED = "dbs.programs_tested"
    GENERATIONS = "dbs.generations"
    LOOP_CANDIDATES = "dbs.loop.candidates"
    CONDITIONAL_ATTEMPTS = "dbs.conditional.attempts"

    def __init__(
        self,
        elapsed: float = 0.0,
        expressions: int = 0,
        programs_tested: int = 0,
        generations: int = 0,
        loop_candidates: int = 0,
        conditional_attempts: int = 0,
        registry: Optional[Registry] = None,
    ):
        self.registry = registry if registry is not None else Registry()
        if elapsed:
            self.elapsed = elapsed
        if expressions:
            self.expressions = expressions
        if programs_tested:
            self.programs_tested = programs_tested
        if generations:
            self.generations = generations
        if loop_candidates:
            self.loop_candidates = loop_candidates
        if conditional_attempts:
            self.conditional_attempts = conditional_attempts

    @property
    def elapsed(self) -> float:
        return self.registry.value(self.ELAPSED, 0.0)

    @elapsed.setter
    def elapsed(self, value: float) -> None:
        self.registry.gauge(self.ELAPSED).set(value)

    @property
    def expressions(self) -> int:
        return int(self.registry.value(self.EXPRESSIONS))

    @expressions.setter
    def expressions(self, value: int) -> None:
        self.registry.counter(self.EXPRESSIONS).value = value

    @property
    def programs_tested(self) -> int:
        return int(self.registry.value(self.PROGRAMS_TESTED))

    @programs_tested.setter
    def programs_tested(self, value: int) -> None:
        self.registry.counter(self.PROGRAMS_TESTED).value = value

    @property
    def generations(self) -> int:
        return int(self.registry.value(self.GENERATIONS))

    @generations.setter
    def generations(self, value: int) -> None:
        self.registry.counter(self.GENERATIONS).value = value

    @property
    def loop_candidates(self) -> int:
        return int(self.registry.value(self.LOOP_CANDIDATES))

    @loop_candidates.setter
    def loop_candidates(self, value: int) -> None:
        self.registry.counter(self.LOOP_CANDIDATES).value = value

    @property
    def conditional_attempts(self) -> int:
        return int(self.registry.value(self.CONDITIONAL_ATTEMPTS))

    @conditional_attempts.setter
    def conditional_attempts(self, value: int) -> None:
        self.registry.counter(self.CONDITIONAL_ATTEMPTS).value = value

    def __repr__(self) -> str:
        return (
            f"DbsStats(elapsed={self.elapsed!r}, "
            f"expressions={self.expressions!r}, "
            f"programs_tested={self.programs_tested!r}, "
            f"generations={self.generations!r}, "
            f"loop_candidates={self.loop_candidates!r}, "
            f"conditional_attempts={self.conditional_attempts!r})"
        )


@dataclass
class DbsResult:
    """``program is None`` means TIMEOUT."""

    program: Optional[Expr]
    stats: DbsStats

    @property
    def timed_out(self) -> bool:
        return self.program is None


def dbs(
    contexts: Sequence[Context],
    examples: Sequence[Example],
    seeds: Sequence[Expr],
    dsl: Dsl,
    signature: Signature,
    max_branches: int = 1,
    budget: Optional[Budget] = None,
    lasy_fns: Optional[Mapping] = None,
    lasy_signatures: Optional[Mapping[str, Signature]] = None,
    options: Optional[DbsOptions] = None,
    previous_program: Optional[Expr] = None,
) -> DbsResult:
    """Algorithm 2. Returns a program satisfying all ``examples`` or
    TIMEOUT.

    ``previous_program`` (P_i from TDS) is additionally used to evaluate
    *recursive* candidates angelically when recording T(p): a recursive
    branch body without its base case diverges under true self-recursion,
    so its recursive calls are bound to the previous program instead; the
    assembled conditional is always re-verified with true recursion."""
    options = options or DbsOptions()
    budget = budget or default_budget()
    budget.restart_clock()
    tracer = get_tracer()
    stats = DbsStats(registry=Registry(detailed=tracer.enabled))
    depth = getattr(_RUN_DEPTH, "value", 0)
    nested = depth > 0
    # local_value: a worker-snapshot merge into the process-global
    # evaluator registry landing inside this region must not be
    # attributed to (double-counted against) this run.
    eval_runs_before = EVAL_METRICS.local_value("eval.run_program")
    _RUN_DEPTH.value = depth + 1
    try:
        with tracer.span(
            "dbs",
            examples=len(examples),
            contexts=len(contexts),
            nested=nested,
        ) as root_span:
            result = _run_dbs(
                contexts, examples, seeds, dsl, signature, max_branches,
                budget, lasy_fns, lasy_signatures, options,
                previous_program, stats, tracer,
            )
            if tracer.enabled:
                registry = stats.registry
                registry.counter("eval.run_program").value = int(
                    EVAL_METRICS.local_value("eval.run_program")
                    - eval_runs_before
                )
                root_span.set(
                    outcome="timeout" if result.timed_out else "solved"
                )
                tracer.event(
                    "dbs.metrics",
                    nested=nested,
                    metrics=registry.snapshot(),
                )
            return result
    finally:
        _RUN_DEPTH.value = depth


# Depth of dbs() calls on the current thread's stack; loop-body
# sub-syntheses run nested (their spawned budgets are excluded from
# report totals). Thread-local so a concurrent loop-strategy thread
# can't corrupt the main thread's depth — the thread seeds its own
# depth at 1, since its sub-syntheses are logically nested in the run
# that spawned it.
_RUN_DEPTH = threading.local()


def _run_dbs(
    contexts: Sequence[Context],
    examples: Sequence[Example],
    seeds: Sequence[Expr],
    dsl: Dsl,
    signature: Signature,
    max_branches: int,
    budget: Budget,
    lasy_fns: Optional[Mapping],
    lasy_signatures: Optional[Mapping[str, Signature]],
    options: DbsOptions,
    previous_program: Optional[Expr],
    stats: DbsStats,
    tracer,
) -> DbsResult:
    start_time = time.monotonic()
    lasy_fns = dict(lasy_fns or {})
    lasy_signatures = dict(lasy_signatures or {})
    examples = list(examples)
    if not contexts:
        contexts = [trivial_context(dsl)]

    tester = _Tester(
        signature, examples, lasy_fns, options, stats, budget,
        previous_program=previous_program,
    )
    loop_state: Optional[_ConcurrentLoops] = None

    def finish(program: Optional[Expr]) -> DbsResult:
        if loop_state is not None:
            program = loop_state.finish(program, tracer)
        stats.elapsed = time.monotonic() - start_time
        stats.expressions = budget.expressions
        return DbsResult(program, stats)

    try:
        # 1. Loop strategies (Algorithm 2, line 1): serially up front,
        # or on a helper thread racing enumeration (§5.3's concurrent
        # model) when options.concurrent_loops.
        if options.enable_loops and dsl.loops:
            if options.concurrent_loops:

                def run_loops(cancel) -> Optional[Expr]:
                    return _try_loop_strategies(
                        dsl, signature, examples, tester, budget,
                        lasy_fns, lasy_signatures, options, stats,
                        cancel=cancel,
                    )

                loop_state = _ConcurrentLoops(
                    parent_traced=tracer.enabled, runner=run_loops
                ).start()
            else:
                with tracer.span("dbs.loops") as loops_span:
                    program = _try_loop_strategies(
                        dsl, signature, examples, tester, budget,
                        lasy_fns, lasy_signatures, options, stats,
                    )
                    loops_span.set(
                        candidates=stats.loop_candidates,
                        solved=program is not None,
                    )
                if program is not None:
                    return finish(program)

        # Generation 0: the atoms (params, constants, seeds, ...).
        with tracer.span(
            "dbs.enumerate", generation=0, production="<atoms>"
        ) as atoms_span:
            pool = ComponentPool(
                dsl,
                signature,
                examples,
                seeds=seeds,
                lasy_fns=lasy_fns,
                lasy_signatures=lasy_signatures,
                options=PoolOptions(
                    use_dsl=options.use_dsl,
                    semantic_dedup=options.semantic_dedup,
                ),
                budget=budget,
                metrics=stats.registry,
            )
            atoms_span.set(offered=budget.expressions, added=pool.total())
        # Composition strategies may value recursive pieces angelically
        # against the previous program (see strategies._string_pieces).
        pool.previous_program = previous_program
        store = ConditionalStore(len(examples))
        guard_nts = _guard_nts(dsl)
        all_set = frozenset(range(len(examples)))
        acceptable = _acceptable_nts(contexts, dsl, options)
        root_nt = next(
            (ctx.hole_nt for ctx in contexts if ctx.is_trivial), dsl.start
        )

        def run_strategies() -> Optional[Expr]:
            """§5.4 composition strategies: goal-directed candidates
            assembled from the pool, tested through the same contexts."""
            pool.guard_sets = [g.true_set for g in store.guards]
            with tracer.span("dbs.strategies") as span:
                offered_before = budget.expressions
                tried = 0
                try:
                    for strategy in dsl.composition_strategies:
                        candidates = strategy(pool, examples, signature, dsl)
                        if not candidates:
                            continue
                        tried += len(candidates)
                        program = _test_batch(
                            candidates, contexts, acceptable, tester, store,
                            guard_nts, dsl, options,
                        )
                        if program is not None:
                            span.set(solved=True)
                            return program
                        for candidate in candidates:
                            pool.offer_external(candidate)
                finally:
                    span.set(
                        candidates=tried,
                        offered=budget.expressions - offered_before,
                    )
            return None

        last_store_size = (-1, -1)
        size_before = -1
        batches = iter([_all_pool_exprs(pool)])
        while True:
            if loop_state is not None and loop_state.program is not None:
                # The loop-strategy thread won the race; finish() joins
                # it and returns its program.
                return finish(None)
            program = None
            for pending in batches:
                with tracer.span("dbs.test", batch=len(pending)):
                    program = _test_batch(
                        pending, contexts, acceptable, tester, store,
                        guard_nts, dsl, options,
                    )
                if program is not None:
                    break
            if program is not None:
                return finish(program)
            if budget.exhausted():
                # The budget died mid-generation, but the pool still
                # holds everything the search built. Give the
                # goal-directed composition strategies one final pass
                # over it (under the tester's grace window) before
                # reporting TIMEOUT: a solution assembled from
                # already-enumerated pieces should not be lost to the
                # enumeration cutoff.
                program = run_strategies()
                if program is not None:
                    return finish(program)
                break
            program = run_strategies()
            if program is not None:
                return finish(program)
            # Conditional pass (Algorithm 2, line 7).
            store_size = (len(store.programs), len(store.guards))
            if (
                options.enable_conditionals
                and max_branches > 1
                and dsl.conditionals
                and store_size != last_store_size
            ):
                last_store_size = store_size
                stats.conditional_attempts += 1
                candidate = solve_with_buckets(
                    store, dsl, all_set, max_branches, root_nt, budget
                )
                if candidate is not None and tester.passes_all(candidate):
                    return finish(candidate)
            if stats.generations >= options.max_generations:
                break
            if pool.exhausted:
                break  # budget died mid-generation; partial batch tested
            if stats.generations > 0 and pool.total() == size_before:
                break  # language exhausted below the size cap
            # Next generation (Algorithm 2, line 8), tested batch-wise at
            # the top of the loop (the generator is lazy).
            stats.generations += 1
            size_before = pool.total()
            batches = pool.advance_batches()
    except BudgetExhausted:
        pass
    return finish(None)


# ---------------------------------------------------------------------


class _Tester:
    """Evaluates candidate programs against the examples."""

    def __init__(
        self,
        signature: Signature,
        examples: Sequence[Example],
        lasy_fns: Mapping,
        options: DbsOptions,
        stats: DbsStats,
        budget: Budget,
        previous_program: Optional[Expr] = None,
    ):
        self.signature = signature
        self.examples = list(examples)
        self.lasy_fns = lasy_fns
        self.options = options
        self.stats = stats
        self.budget = budget
        self.previous_program = previous_program
        self._tested = stats.registry.counter(DbsStats.PROGRAMS_TESTED)
        self._guard_records = stats.registry.counter(
            "dbs.cond.guards_recorded"
        )
        self._program_records = stats.registry.counter(
            "dbs.cond.programs_recorded"
        )
        # Once the generation budget is exhausted we still want to test
        # whatever the pool already built (the partial last generation);
        # the grace counter bounds that final sweep.
        self._grace = 8_000

    def _charge(self) -> None:
        from .budget import BudgetExhausted

        self._tested.value += 1
        try:
            self.budget.charge_program()
        except BudgetExhausted:
            self._grace -= 1
            if self._grace < 0:
                raise

    def passed_set(self, program: Expr) -> frozenset:
        """T(p): indices of examples the program handles."""
        self._charge()
        passed = set()
        for index, example in enumerate(self.examples):
            value = self._run(program, example)
            if value is not ERROR and structurally_equal(value, example.output):
                passed.add(index)
        return frozenset(passed)

    def angelic_passed_set(self, program: Expr) -> frozenset:
        """T(p) with recursive calls answered angelically: from the
        example table first (the examples are ground truth for the
        function being synthesized), then by running the previous
        program. A recursive branch body without its base case diverges
        under true self-recursion; this lets the conditional strategy
        still observe which examples the branch would handle."""
        if not is_recursive(program):
            return frozenset()
        self._charge()
        oracle = self._recursion_oracle()
        passed = set()
        for index, example in enumerate(self.examples):
            value = self._run(program, example, recursion_oracle=oracle)
            if value is not ERROR and structurally_equal(value, example.output):
                passed.add(index)
        return frozenset(passed)

    def _recursion_oracle(self):
        from .evaluator import EvaluationError as _EE
        from .values import freeze as _freeze

        table = {
            _freeze(example.args): _freeze(example.output)
            for example in self.examples
        }
        previous = self.previous_program

        def oracle(args):
            if args in table:
                return table[args]
            if previous is not None:
                return run_program(
                    previous,
                    self.signature.param_names,
                    args,
                    lasy_fns=self.lasy_fns,
                    fuel=self.options.evaluation_fuel,
                    max_depth=self.options.max_recursion_depth,
                )
            raise _EE("angelic recursion: input not in example table")

        return oracle

    def passes_all(self, program: Expr) -> bool:
        self._charge()
        for example in self.examples:
            value = self._run(program, example)
            if value is ERROR or not structurally_equal(value, example.output):
                return False
        return True

    def _run(self, program: Expr, example: Example, recursion_oracle=None):
        try:
            return run_program(
                program,
                self.signature.param_names,
                example.args,
                lasy_fns=self.lasy_fns,
                fuel=self.options.evaluation_fuel,
                max_depth=self.options.max_recursion_depth,
                recursion_oracle=recursion_oracle,
            )
        except EvaluationError:
            return ERROR

    def guard_sets(self, guard: Expr) -> Tuple[frozenset, frozenset]:
        """(B(g), error set) for a boolean expression."""
        true_set = set()
        errors = set()
        for index, example in enumerate(self.examples):
            value = self._run(guard, example)
            if value is ERROR:
                errors.add(index)
            elif value is True:
                true_set.add(index)
        return frozenset(true_set), frozenset(errors)


def _guard_nts(dsl: Dsl) -> frozenset:
    names = set()
    for rule in dsl.conditionals:
        names.update(dsl.expansion(rule.guard_nt))
    return frozenset(names)


def _acceptable_nts(
    contexts: Sequence[Context], dsl: Dsl, options: DbsOptions
) -> Dict[int, frozenset]:
    """Per context (by position), the nonterminal tags it accepts."""
    table: Dict[int, frozenset] = {}
    for i, ctx in enumerate(contexts):
        if ctx.hole_nt in dsl.nonterminals:
            table[i] = frozenset(dsl.expansion(ctx.hole_nt))
        else:
            table[i] = frozenset((ctx.hole_nt,))
    return table


def _all_pool_exprs(pool: ComponentPool) -> List[Expr]:
    return pool.all_expressions()


def _test_batch(
    exprs: Sequence[Expr],
    contexts: Sequence[Context],
    acceptable: Dict[int, frozenset],
    tester: _Tester,
    store: ConditionalStore,
    guard_nts: frozenset,
    dsl: Dsl,
    options: DbsOptions,
) -> Optional[Expr]:
    """Plug each new expression into each compatible context; return a
    program satisfying every example, else record T(p)/B(g) and None."""
    for expr in exprs:
        expr_free = free_vars(expr)
        is_guard = (
            expr.nt in guard_nts
            if options.use_dsl
            else expr.nt == "τ:bool"
        )
        if is_guard and not expr_free:
            true_set, errors = tester.guard_sets(expr)
            store.record_guard(expr, true_set, errors)
            tester._guard_records.value += 1
        for i, ctx in enumerate(contexts):
            if options.use_dsl:
                if expr.nt not in acceptable[i]:
                    continue
            else:
                expr_type = _expr_type_for_hole(expr, dsl)
                if expr_type is None or not types_compatible(
                    ctx.hole_type, expr_type
                ):
                    continue
            program = ctx.plug(expr)
            if free_vars(program):
                continue
            passed = tester.passed_set(program)
            if len(passed) == len(tester.examples) and tester.examples:
                return program
            store.record_program(program, passed)
            tester._program_records.value += 1
            angelic = tester.angelic_passed_set(program)
            if angelic and angelic != passed:
                store.record_program(program, angelic)
    return None


def _expr_type_for_hole(expr: Expr, dsl: Dsl):
    from .contexts import _hole_type

    return _hole_type(dsl, expr)


class _ConcurrentLoops:
    """Loop strategies on a helper thread beside enumeration (§5.3).

    The paper runs loop strategies "concurrently with the DBS
    algorithm"; this is that thread. Isolation model:

    * the thread installs its own tracer via ``set_thread_tracer`` —
      an in-memory ``JsonlTracer`` when the parent traces, else the
      null tracer — because tracer span stacks are not thread-safe;
      the buffered records are spliced into the parent's stream on
      join (``absorb_shard``), re-parented under the open ``dbs`` span;
    * the thread seeds its ``_RUN_DEPTH`` at 1, so its sub-syntheses
      report as nested runs just like the serial path;
    * the shared ``Budget`` and registry counters take concurrent plain
      ``+=`` increments — benign under the GIL (worst case a slightly
      stale read), and the budget's exhaustion check is conservative.

    Cancellation is cooperative: enumeration finding a program first
    sets ``cancel``, which loop strategies check between candidate
    sub-syntheses, so the join in :meth:`finish` is bounded by one
    sub-DBS budget.
    """

    def __init__(self, parent_traced: bool, runner) -> None:
        self.cancel = threading.Event()
        self.program: Optional[Expr] = None
        self.error: Optional[BaseException] = None
        self.seconds = 0.0
        self._buffer = io.StringIO() if parent_traced else None
        self._runner = runner
        self._thread = threading.Thread(
            target=self._run, name="dbs-loop-strategies", daemon=True
        )

    def start(self) -> "_ConcurrentLoops":
        self._thread.start()
        return self

    def _run(self) -> None:
        from ..obs.trace import (
            NULL_TRACER,
            JsonlTracer,
            set_thread_tracer,
        )

        tracer = (
            JsonlTracer(self._buffer)
            if self._buffer is not None
            else NULL_TRACER
        )
        set_thread_tracer(tracer)
        _RUN_DEPTH.value = 1
        start = time.monotonic()
        try:
            with tracer.span("dbs.loops.concurrent") as span:
                program = self._runner(self.cancel)
                span.set(solved=program is not None)
                self.program = program
        except BudgetExhausted:
            pass
        except BaseException as exc:  # re-raised on the main thread
            self.error = exc
        finally:
            self.seconds = time.monotonic() - start
            set_thread_tracer(None)

    def finish(self, program: Optional[Expr], tracer) -> Optional[Expr]:
        """Join the thread, splice its trace, and pick the winner:
        enumeration's program when it found one, else the thread's."""
        self.cancel.set()
        self._thread.join()
        if self._buffer is not None:
            absorb = getattr(tracer, "absorb_shard", None)
            if absorb is not None:
                absorb(self._buffer.getvalue().splitlines())
        if self.error is not None:
            raise self.error
        return program if program is not None else self.program


def _try_loop_strategies(
    dsl: Dsl,
    signature: Signature,
    examples: Sequence[Example],
    tester: _Tester,
    budget: Budget,
    lasy_fns: Mapping,
    lasy_signatures: Mapping[str, Signature],
    options: DbsOptions,
    stats: DbsStats,
    cancel: Optional[threading.Event] = None,
) -> Optional[Expr]:
    """Assemble loop candidates (§5.3) and test them on all examples."""

    def synthesize_body(
        body_sig: Signature, body_examples: Sequence[Example], start_nt: str
    ) -> Optional[Expr]:
        from .contexts import Context as _Context
        from .expr import Hole

        if cancel is not None and cancel.is_set():
            return None
        sub_context = _Context(
            root=Hole(start_nt),
            path=(),
            hole_nt=start_nt,
            hole_type=dsl.type_of(start_nt),
        )
        sub_options = DbsOptions(
            use_dsl=options.use_dsl,
            semantic_dedup=options.semantic_dedup,
            enable_conditionals=options.enable_conditionals,
            enable_loops=False,  # no nested loop strategies
            max_generations=options.max_generations,
            evaluation_fuel=options.evaluation_fuel,
        )
        result = dbs(
            contexts=[sub_context],
            examples=body_examples,
            seeds=[],
            dsl=dsl,
            signature=body_sig,
            max_branches=3,
            budget=budget.spawn(0.35),
            lasy_fns=lasy_fns,
            lasy_signatures=lasy_signatures,
            options=sub_options,
        )
        return result.program

    candidates = run_loop_strategies(dsl, signature, examples, synthesize_body)
    stats.loop_candidates += len(candidates)
    for candidate in candidates:
        if cancel is not None and cancel.is_set():
            return None
        if tester.passes_all(candidate.program):
            return candidate.program
    return None
