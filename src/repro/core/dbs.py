"""DSL-based synthesis — Algorithm 2, driving the layered engine.

One DBS invocation searches for a program satisfying *all* given examples
by plugging grammar-generated expressions into the supplied contexts.
The search interleaves, per Algorithm 2:

1. startup strategies (the loop strategies) — tried up front by default
   (cheap relative to enumeration), or, with
   ``DbsOptions.concurrent_loops`` (what the CLI's ``--jobs > 1``
   selects for single syntheses), on a helper thread that runs alongside
   enumeration exactly as the paper describes; the concurrent variant is
   traced under a dedicated ``dbs.loops.concurrent`` span;
2. plugging every (context, expression) pair and testing the result;
3. the round strategies after each expression generation — composition
   strategies (§5.4) and conditional synthesis from the recorded T(p)
   and B(g) sets (§5.2);
4. generating the next expression generation (§5.1).

The heavy lifting lives in :mod:`repro.core.engine`: a
:class:`~repro.core.engine.session.SynthesisSession` threads the
expression store, enumerator, tester, and strategy registry through the
run. Passing a persistent session (as TDS does) makes the store carry
over between runs — see ``engine/session.py`` for the warm path.

The result is a program or ``TIMEOUT`` (``DbsResult.program is None``)
when the budget — wall clock, expression count, or program count — is
exhausted.
"""

from __future__ import annotations

import io
import os
import threading
import time
from dataclasses import dataclass
from typing import Mapping, Optional, Sequence

from ..obs.metrics import Registry
from ..obs.trace import get_tracer
from .budget import Budget, BudgetExhausted, CancelToken, Deadline, default_budget
from .contexts import Context, trivial_context
from .dsl import Dsl, Example, Signature
from .engine.shard import DEFAULT_SHARD_MIN_COST
from .engine.session import SynthesisSession
from .evaluator import METRICS as EVAL_METRICS
from .expr import Expr


@dataclass
class DbsOptions:
    """Feature switches; the §6.3 ablations turn these off selectively."""

    use_dsl: bool = True
    semantic_dedup: bool = True
    enable_conditionals: bool = True
    enable_loops: bool = True
    # Run loop strategies on a helper thread beside enumeration (the
    # paper's concurrent-thread model) instead of serially up front.
    concurrent_loops: bool = False
    max_generations: int = 24
    evaluation_fuel: int = 60_000
    max_recursion_depth: int = 40
    # Hard per-run wall-clock deadline (seconds). Unlike the soft
    # Budget.max_seconds it allows no grace sweep: the run truncates
    # with a structured SynthesisTimeout within one cooperative check
    # interval of the wall (see docs/robustness.md). None/0 = off.
    timeout_s: Optional[float] = None
    # Enumeration path: "batched" (value-vector candidates, the
    # default), "classic" (per-expression reference pipeline), or None
    # to defer to the process-wide REPRO_ENUM switch.
    enum_mode: Optional[str] = None
    # Shard each generation's enumeration across this many worker
    # processes (see engine.shard; strictly deterministic — the merged
    # pool and synthesized programs are byte-identical to a serial
    # run). 0 defers to the REPRO_DBS_JOBS environment switch; 0/1
    # there too means serial.
    shard_jobs: int = 0
    # Productions with fewer estimated candidate combinations than
    # this run serially even when sharding is on: dispatch and record
    # shipping would cost more than the enumeration they split. When
    # left at the default, the REPRO_DBS_SHARD_MIN_COST environment
    # switch overrides it (CI uses 0 to force worker dispatch on
    # otherwise-small smoke tasks).
    shard_min_cost: int = DEFAULT_SHARD_MIN_COST


class _Metric:
    """Descriptor exposing one registry metric as a plain read/write
    attribute — ``stats.expressions`` reads the counter, assignment sets
    it. Replaces a hand-written property pair per field."""

    def __init__(self, name: str, kind: str = "counter", cast=int):
        self.name = name
        self.kind = kind
        self.cast = cast

    def __get__(self, obj, objtype=None):
        if obj is None:
            return self
        return self.cast(obj.registry.value(self.name, 0))

    def __set__(self, obj, value) -> None:
        if self.kind == "gauge":
            obj.registry.gauge(self.name).set(value)
        else:
            obj.registry.counter(self.name).value = value


class DbsStats:
    """Counters for one DBS run — a backward-compatible attribute view
    over the run's :class:`~repro.obs.metrics.Registry`.

    The historical fields (``elapsed``, ``expressions``, ...) read and
    write the registry via :class:`_Metric` descriptors, so existing
    consumers (TDS steps, experiment drivers, baselines) keep working
    while everything new — labeled pool/dedup/evaluator breakdowns,
    per-production counts — lives in ``stats.registry`` and flows into
    trace reports.
    """

    __slots__ = ("registry",)

    # metric names (counters unless noted)
    ELAPSED = "dbs.elapsed_seconds"  # gauge
    EXPRESSIONS = "dbs.expressions"
    PROGRAMS_TESTED = "dbs.programs_tested"
    GENERATIONS = "dbs.generations"
    LOOP_CANDIDATES = "dbs.loop.candidates"
    CONDITIONAL_ATTEMPTS = "dbs.conditional.attempts"

    elapsed = _Metric(ELAPSED, kind="gauge", cast=float)
    expressions = _Metric(EXPRESSIONS)
    programs_tested = _Metric(PROGRAMS_TESTED)
    generations = _Metric(GENERATIONS)
    loop_candidates = _Metric(LOOP_CANDIDATES)
    conditional_attempts = _Metric(CONDITIONAL_ATTEMPTS)

    _FIELDS = (
        "elapsed",
        "expressions",
        "programs_tested",
        "generations",
        "loop_candidates",
        "conditional_attempts",
    )

    def __init__(
        self,
        elapsed: float = 0.0,
        expressions: int = 0,
        programs_tested: int = 0,
        generations: int = 0,
        loop_candidates: int = 0,
        conditional_attempts: int = 0,
        registry: Optional[Registry] = None,
    ):
        self.registry = registry if registry is not None else Registry()
        values = (
            elapsed,
            expressions,
            programs_tested,
            generations,
            loop_candidates,
            conditional_attempts,
        )
        for name, value in zip(self._FIELDS, values):
            if value:
                setattr(self, name, value)

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{name}={getattr(self, name)!r}" for name in self._FIELDS
        )
        return f"DbsStats({inner})"


@dataclass
class SynthesisTimeout:
    """Structured record of a truncated run (``DbsResult.timeout``).

    ``reason`` is what ended the search first: ``"deadline"`` (hard
    wall), ``"cancelled: ..."``, ``"time"`` / ``"expressions"`` /
    ``"programs"`` (soft budget), ``"max_generations"``, or
    ``"search_exhausted"`` (the language ran dry below the size cap).
    The partial component pool survives in the run's
    :class:`~repro.core.engine.session.SynthesisSession` for warm
    reuse, and ``pool_entries`` records its size at truncation.
    """

    reason: str
    elapsed: float
    expressions: int
    pool_entries: int
    budget_seconds: Optional[float] = None

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return (
            f"SynthesisTimeout({self.reason} after {self.elapsed:.3f}s, "
            f"{self.expressions} expressions, {self.pool_entries} pooled)"
        )


@dataclass
class DbsResult:
    """``program is None`` means TIMEOUT (``timeout`` says why)."""

    program: Optional[Expr]
    stats: DbsStats
    timeout: Optional[SynthesisTimeout] = None

    @property
    def timed_out(self) -> bool:
        return self.program is None


def dbs(
    contexts: Sequence[Context],
    examples: Sequence[Example],
    seeds: Sequence[Expr],
    dsl: Dsl,
    signature: Signature,
    max_branches: int = 1,
    budget: Optional[Budget] = None,
    lasy_fns: Optional[Mapping] = None,
    lasy_signatures: Optional[Mapping[str, Signature]] = None,
    options: Optional[DbsOptions] = None,
    previous_program: Optional[Expr] = None,
    session: Optional[SynthesisSession] = None,
) -> DbsResult:
    """Algorithm 2. Returns a program satisfying all ``examples`` or
    TIMEOUT.

    ``previous_program`` (P_i from TDS) is additionally used to evaluate
    *recursive* candidates angelically when recording T(p): a recursive
    branch body without its base case diverges under true self-recursion,
    so its recursive calls are bound to the previous program instead; the
    assembled conditional is always re-verified with true recursion.

    ``session`` is an optional persistent
    :class:`~repro.core.engine.session.SynthesisSession`; when given (and
    built for the same DSL and signature), its expression store carries
    over from previous runs and is *extended* by the newly appended
    examples instead of rebuilt — TDS passes one session across its whole
    example sequence."""
    options = options or DbsOptions()
    budget = budget or default_budget()
    budget.restart_clock()
    if options.timeout_s:
        budget.add_deadline(Deadline.after(options.timeout_s))
    tracer = get_tracer()
    stats = DbsStats(registry=Registry(detailed=tracer.enabled))
    if session is not None and (
        session.dsl is not dsl or session.signature is not signature
    ):
        session = None  # a foreign session's store cannot serve this run
    depth = getattr(_RUN_DEPTH, "value", 0)
    nested = depth > 0
    # local_value: a worker-snapshot merge into the process-global
    # evaluator registry landing inside this region must not be
    # attributed to (double-counted against) this run.
    eval_runs_before = EVAL_METRICS.local_value("eval.run_program")
    _RUN_DEPTH.value = depth + 1
    try:
        with tracer.span(
            "dbs",
            examples=len(examples),
            contexts=len(contexts),
            nested=nested,
        ) as root_span:
            result = _run_dbs(
                contexts, examples, seeds, dsl, signature, max_branches,
                budget, lasy_fns, lasy_signatures, options,
                previous_program, stats, tracer, session,
            )
            if tracer.enabled:
                root_span.set(
                    outcome="timeout" if result.timed_out else "solved"
                )
                if result.timeout is not None:
                    root_span.set(timeout_reason=result.timeout.reason)
        # Snapshot and emit outside the span: the report reconciles the
        # span's duration against DbsStats.elapsed, and the metrics
        # serialization is reporting overhead, not search time.
        if tracer.enabled:
            registry = stats.registry
            registry.counter("eval.run_program").value = int(
                EVAL_METRICS.local_value("eval.run_program")
                - eval_runs_before
            )
            tracer.event(
                "dbs.metrics",
                nested=nested,
                metrics=registry.snapshot(),
            )
        return result
    finally:
        _RUN_DEPTH.value = depth


# Depth of dbs() calls on the current thread's stack; loop-body
# sub-syntheses run nested (their spawned budgets are excluded from
# report totals). Thread-local so a concurrent loop-strategy thread
# can't corrupt the main thread's depth — the thread seeds its own
# depth at 1, since its sub-syntheses are logically nested in the run
# that spawned it.
_RUN_DEPTH = threading.local()


def _shard_jobs(options: DbsOptions) -> int:
    """Effective worker count for sharded enumeration: the explicit
    option, else the ``REPRO_DBS_JOBS`` environment default. Forced
    serial inside any worker process (one flat level of parallelism)
    and for the untyped no-DSL mode (its expansion has no
    per-production combination stream to stride)."""
    if os.environ.get("REPRO_IN_WORKER"):
        return 0
    jobs = options.shard_jobs
    if not jobs:
        try:
            jobs = int(os.environ.get("REPRO_DBS_JOBS", "0") or 0)
        except ValueError:
            jobs = 0
    if jobs > 1 and options.use_dsl:
        return jobs
    return 0


def _shard_min_cost(options: DbsOptions) -> int:
    """Effective per-production sharding threshold: the explicit
    option, or — when it sits at the default — the
    ``REPRO_DBS_SHARD_MIN_COST`` environment switch (used by CI to
    force dispatch on small smoke tasks)."""
    if options.shard_min_cost == DEFAULT_SHARD_MIN_COST:
        try:
            env = os.environ.get("REPRO_DBS_SHARD_MIN_COST")
            if env:
                return int(env)
        except ValueError:
            pass
    return options.shard_min_cost


def _run_dbs(
    contexts: Sequence[Context],
    examples: Sequence[Example],
    seeds: Sequence[Expr],
    dsl: Dsl,
    signature: Signature,
    max_branches: int,
    budget: Budget,
    lasy_fns: Optional[Mapping],
    lasy_signatures: Optional[Mapping[str, Signature]],
    options: DbsOptions,
    previous_program: Optional[Expr],
    stats: DbsStats,
    tracer,
    session: Optional[SynthesisSession],
) -> DbsResult:
    start_time = time.monotonic()
    examples = list(examples)
    if not contexts:
        contexts = [trivial_context(dsl)]
    ephemeral_session = session is None
    if session is None:
        session = SynthesisSession(
            dsl,
            signature,
            lasy_fns=dict(lasy_fns or {}),
            lasy_signatures=dict(lasy_signatures or {}),
        )
    loop_state: Optional[_ConcurrentLoops] = None
    shard_coord = None

    def finish(
        program: Optional[Expr], reason: Optional[str] = None
    ) -> DbsResult:
        if loop_state is not None:
            program = loop_state.finish(program, tracer)
        if shard_coord is not None:
            shard_coord.detach()
            if ephemeral_session:
                # Nobody holds this session after the run; reap its
                # workers now (a persistent session keeps them warm
                # until it is suspended).
                session.close_shard_coordinator()
        session.cancel = None
        stats.elapsed = time.monotonic() - start_time
        stats.expressions = budget.expressions
        timeout = None
        if program is None:
            timeout = SynthesisTimeout(
                reason=budget.exhausted_reason or reason or "search_exhausted",
                elapsed=stats.elapsed,
                expressions=budget.expressions,
                pool_entries=session.pool.total() if session.pool else 0,
                budget_seconds=(
                    options.timeout_s
                    if options.timeout_s
                    else budget.max_seconds
                ),
            )
            stats.registry.counter("dbs.timeout").inc(1, reason=timeout.reason)
        return DbsResult(program, stats, timeout=timeout)

    try:
        session.begin_run(
            contexts=contexts,
            examples=examples,
            seeds=seeds,
            budget=budget,
            options=options,
            stats=stats,
            tracer=tracer,
            previous_program=previous_program,
            max_branches=max_branches,
        )
        pool = session.pool
        registry = session.registry

        jobs = _shard_jobs(options)
        if jobs and getattr(_RUN_DEPTH, "value", 1) <= 1:
            # Top-level runs only: a nested loop-body synthesis is
            # small and already races the main thread's enumeration.
            shard_coord = session.shard_coordinator(
                jobs, _shard_min_cost(options)
            )
            shard_coord.attach(pool, session.enumerator)

        # 1. Startup strategies (Algorithm 2, line 1): serially up
        # front, or on a helper thread racing enumeration (§5.3's
        # concurrent model) when options.concurrent_loops.
        if registry.for_stage("startup"):
            if options.concurrent_loops:

                def run_startup(cancel) -> Optional[Expr]:
                    # The helper thread installed its own tracer; the
                    # plugins pick it up via get_tracer().
                    session.cancel = cancel
                    return registry.run(
                        "startup", session, budget, get_tracer()
                    )

                loop_state = _ConcurrentLoops(
                    parent_traced=tracer.enabled, runner=run_startup
                ).start()
            else:
                program = registry.run("startup", session, budget, tracer)
                if program is not None:
                    return finish(program)

        last_size = -1
        batches = iter([pool.iter_all()])
        while True:
            if loop_state is not None and loop_state.program is not None:
                # The loop-strategy thread won the race; finish() joins
                # it and returns its program.
                return finish(None)
            program = None
            for pending in batches:
                with tracer.span("dbs.test") as test_span:
                    program = session.test_batch(pending, span=test_span)
                if program is not None:
                    break
            if program is not None:
                return finish(program)
            if budget.exhausted():
                # The budget died mid-generation, but the pool still
                # holds everything the search built. Give the final
                # round strategies (goal-directed composition) one last
                # pass over it (under the tester's grace window) before
                # reporting TIMEOUT: a solution assembled from
                # already-enumerated pieces should not be lost to the
                # enumeration cutoff. The grace sweep only applies to
                # soft budgets — past the hard deadline the run must
                # truncate immediately.
                if not budget.hard_expired():
                    program = registry.run(
                        "round", session, budget, tracer, final_only=True
                    )
                    if program is not None:
                        return finish(program)
                break
            # 2. Round strategies (Algorithm 2, lines 6-7): composition
            # strategies, then the conditional pass.
            program = registry.run("round", session, budget, tracer)
            if program is not None:
                return finish(program)
            if stats.generations >= options.max_generations:
                return finish(None, reason="max_generations")
            if pool.exhausted:
                break  # budget died mid-generation; partial batch tested
            if (
                stats.generations > 0
                and pool.total() == last_size
                and not pool.last_generation_redone
            ):
                # Language exhausted below the size cap. A *redone*
                # generation (warm resume after a mid-generation
                # truncation) is exempt: when the truncation landed past
                # the last admittable combination, the redo adds nothing
                # even though the next generation has fresh combos.
                break
            # 3. Next generation (Algorithm 2, line 8), tested batch-wise
            # at the top of the loop (the generator is lazy).
            stats.generations += 1
            last_size = pool.total()
            batches = session.enumerator.advance_batches()
    except BudgetExhausted:
        pass
    return finish(None)


class _ConcurrentLoops:
    """Loop strategies on a helper thread beside enumeration (§5.3).

    The paper runs loop strategies "concurrently with the DBS
    algorithm"; this is that thread. Isolation model:

    * the thread installs its own tracer via ``set_thread_tracer`` —
      an in-memory ``JsonlTracer`` when the parent traces, else the
      null tracer — because tracer span stacks are not thread-safe;
      the buffered records are spliced into the parent's stream on
      join (``absorb_shard``), re-parented under the open ``dbs`` span;
    * the thread seeds its ``_RUN_DEPTH`` at 1, so its sub-syntheses
      report as nested runs just like the serial path;
    * the shared ``Budget`` and registry counters take concurrent plain
      ``+=`` increments — benign under the GIL (worst case a slightly
      stale read), and the budget's exhaustion check is conservative.

    Cancellation is cooperative: enumeration finding a program first
    sets ``cancel``, which loop strategies check between candidate
    sub-syntheses, so the join in :meth:`finish` is bounded by one
    sub-DBS budget.
    """

    def __init__(self, parent_traced: bool, runner) -> None:
        self.cancel = CancelToken()
        self.program: Optional[Expr] = None
        self.error: Optional[BaseException] = None
        self.seconds = 0.0
        self._buffer = io.StringIO() if parent_traced else None
        self._runner = runner
        self._thread = threading.Thread(
            target=self._run, name="dbs-loop-strategies", daemon=True
        )

    def start(self) -> "_ConcurrentLoops":
        self._thread.start()
        return self

    def _run(self) -> None:
        from ..obs.trace import (
            NULL_TRACER,
            JsonlTracer,
            set_thread_tracer,
        )

        tracer = (
            JsonlTracer(self._buffer)
            if self._buffer is not None
            else NULL_TRACER
        )
        set_thread_tracer(tracer)
        _RUN_DEPTH.value = 1
        start = time.monotonic()
        try:
            with tracer.span("dbs.loops.concurrent") as span:
                program = self._runner(self.cancel)
                span.set(solved=program is not None)
                self.program = program
        except BudgetExhausted:
            pass
        except BaseException as exc:  # re-raised on the main thread
            self.error = exc
        finally:
            self.seconds = time.monotonic() - start
            set_thread_tracer(None)

    def finish(self, program: Optional[Expr], tracer) -> Optional[Expr]:
        """Join the thread, splice its trace, and pick the winner:
        enumeration's program when it found one, else the thread's."""
        self.cancel.cancel("cancelled: enumeration finished first")
        self._thread.join()
        if self._buffer is not None:
            absorb = getattr(tracer, "absorb_shard", None)
            if absorb is not None:
                absorb(self._buffer.getvalue().splitlines())
        if self.error is not None:
            raise self.error
        return program if program is not None else self.program
