"""Incremental re-synthesis (§8 future work).

"[We intend to] explore other applications for TDS utilizing its
incremental nature including updating synthesized code as a
specification changes or fixing code from another synthesizer that
generates approximate or incomplete solutions."

Both applications fall out of TDS's structure: seed a session with the
*old* (or approximate) program as ``P_0`` instead of ⊥, and feed the new
specification's examples in order. Examples the old program still
satisfies cost nothing; the first disagreement triggers a DBS call whose
contexts and components come from the old program, so the repair is a
subexpression replacement whenever one suffices — exactly the paper's
"program repair as synthesis-from-a-previous-program" reading.

Warm sessions inherit :class:`~repro.core.tds.TdsSession`'s persistent
engine: the component pool built while repairing against the first
disagreement carries into every later DBS call of the same session
(extended example-by-example), so repeated repairs amortize enumeration
exactly like a cold TDS run does.
"""

from __future__ import annotations

from typing import Mapping, MutableMapping, Optional, Sequence

from .budget import Budget
from .dsl import Dsl, Example, Signature
from .expr import Expr
from .tds import BudgetFactory, TdsOptions, TdsResult, TdsSession


class WarmTdsSession(TdsSession):
    """A TDS session whose ``P_0`` is an existing program."""

    def __init__(
        self,
        signature: Signature,
        dsl: Dsl,
        previous_program: Optional[Expr],
        budget_factory: Optional[BudgetFactory] = None,
        lasy_fns: Optional[MutableMapping] = None,
        lasy_signatures: Optional[Mapping[str, Signature]] = None,
        options: Optional[TdsOptions] = None,
    ):
        super().__init__(
            signature,
            dsl,
            budget_factory=budget_factory,
            lasy_fns=lasy_fns,
            lasy_signatures=lasy_signatures,
            options=options,
        )
        self.program = previous_program


def resynthesize(
    signature: Signature,
    previous_program: Optional[Expr],
    examples: Sequence[Example],
    dsl: Dsl,
    budget_factory: Optional[BudgetFactory] = None,
    lasy_fns: Optional[MutableMapping] = None,
    options: Optional[TdsOptions] = None,
) -> TdsResult:
    """Update ``previous_program`` to satisfy a changed specification.

    The ordered ``examples`` are the *new* specification; the previous
    program plays ``P_0``. Returns an ordinary :class:`TdsResult` (whose
    step records show which examples were already satisfied for free).
    """
    session = WarmTdsSession(
        signature,
        dsl,
        previous_program,
        budget_factory=budget_factory,
        lasy_fns=lasy_fns,
        options=options,
    )
    for example in examples:
        session.add_example(example)
    return session.finalize()


def repair(
    signature: Signature,
    approximate_program: Expr,
    examples: Sequence[Example],
    dsl: Dsl,
    budget_factory: Optional[BudgetFactory] = None,
    options: Optional[TdsOptions] = None,
) -> TdsResult:
    """Fix an approximate/incomplete program from another synthesizer.

    Identical mechanics to :func:`resynthesize`; named separately because
    the paper lists the two applications separately and callers read
    better with the intent spelled out.
    """
    return resynthesize(
        signature,
        approximate_program,
        examples,
        dsl,
        budget_factory=budget_factory,
        options=options,
    )
