"""Runtime values and structural equality.

LaSy's semantics (§3.1) compare example outputs with *structural*
equality (``.Equals()`` in C#). Our value universe is:

* ``str``, ``int``, ``bool`` — Python natives;
* lists — represented as tuples so values stay hashable;
* XML documents — :class:`repro.domains.xmltree.XmlNode` (hashable);
* tables — :class:`repro.domains.tables.Table` (hashable).

Two helpers matter to the synthesizer:

* :func:`structurally_equal` — the ``==`` of the paper's ``require``;
* :func:`signature_key` — a hashable key used for semantic component
  deduplication (§5.1 "Semantic" optimization). Evaluation errors are
  first-class here: the distinguished :data:`ERROR` value means "this
  expression crashed on that example input", which is itself observable
  behaviour that must participate in dedup.
"""

from __future__ import annotations

from typing import Any, Iterable, Tuple


class ErrorValue:
    """The observable result of a crashing evaluation.

    A single interned instance :data:`ERROR` is used. It compares equal
    only to itself, so an expression that errors on an example is never
    semantically merged with one that returns a value there.
    """

    _instance: "ErrorValue | None" = None

    def __new__(cls) -> "ErrorValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "<error>"

    def __hash__(self) -> int:
        return 0x5EEDED

    def __eq__(self, other: object) -> bool:
        return other is self


ERROR = ErrorValue()


def freeze(value: Any) -> Any:
    """Convert a value into its canonical immutable representation.

    Lists become tuples (recursively); dicts become sorted item tuples.
    Domain values (XmlNode, Table) are already immutable.
    """
    if isinstance(value, list):
        return tuple(freeze(v) for v in value)
    if isinstance(value, tuple):
        return tuple(freeze(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, freeze(v)) for k, v in value.items()))
    return value


def structurally_equal(left: Any, right: Any) -> bool:
    """Structural equality as used by ``require`` examples.

    Booleans are distinguished from ints (unlike plain Python ``==``),
    because C#'s ``Equals`` would never conflate them.
    """
    left = freeze(left)
    right = freeze(right)
    if isinstance(left, bool) != isinstance(right, bool):
        return False
    if isinstance(left, tuple) and isinstance(right, tuple):
        return len(left) == len(right) and all(
            structurally_equal(a, b) for a, b in zip(left, right)
        )
    return type(left) is type(right) and left == right


def signature_key(values: Iterable[Any]) -> Tuple[Any, ...]:
    """A hashable fingerprint of an expression's behaviour on the examples.

    The i-th element is the (frozen) value the expression produced on the
    i-th example input, or :data:`ERROR`.
    """
    out = []
    for v in values:
        frozen = freeze(v)
        # bool/int disambiguation mirrors structurally_equal.
        if isinstance(frozen, bool):
            frozen = ("bool", frozen)
        out.append(frozen)
    return tuple(out)


def value_repr(value: Any) -> str:
    """Human-readable rendering of a value for messages and codegen."""
    if value is ERROR:
        return "<error>"
    if isinstance(value, str):
        return repr(value)
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, tuple):
        return "{" + ", ".join(value_repr(v) for v in value) + "}"
    if isinstance(value, list):
        return "{" + ", ".join(value_repr(v) for v in value) + "}"
    return repr(value)
