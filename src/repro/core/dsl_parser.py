"""The DSL definition language (§3.2, Fig. 6).

The paper's experts write DSLs as text: a grammar whose rules name .NET
functions, special all-caps rules for parameters/constants/strategies,
and ``rewrite`` declarations. This module parses the same shape against
a Python *component namespace* (any mapping from function names to
callables — e.g. a module's ``vars()``):

    dsl "walkthrough";
    start C;
    nonterminal C : char;
    nonterminal S : str;
    nonterminal N : int;
    C ::= CharAt(S, N) | ToUpper(C);
    S ::= Word(S, N) | _PARAM;
    N ::= _CONSTANT;

Rule forms:

* ``F(a, b)``        — a component call; ``F`` must be in the namespace,
                       argument types come from the nonterminals;
* ``lambda w: e``    — an inline lambda argument (``Loop(lambda w: e)``);
                       ``w``'s type is declared via ``lambdavar w : int;``
* ``a``              — a unit rule (bare nonterminal);
* ``w``              — a lambda-variable reference (after ``lambdavar``);
* ``_PARAM`` / ``_CONSTANT`` / ``_LASY_FN(f)`` / ``_RECURSE(f, j)``;
* ``__CONDITIONAL(b, e)`` / ``__FOREACH(e)`` / ``__FOR(e)`` — the
  strategy rules (double underscore, as in the paper).

``rewrite lhs ==> rhs;`` lines feed the §5.1 canonicalizer.
"""

from __future__ import annotations

import re
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from .dsl import Dsl, DslBuilder, DslError, LambdaSpec
from .rewrite import parse_rule
from .types import Type, parse_type


class DslParseError(ValueError):
    """A DSL definition could not be parsed."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


_STATEMENT_RE = re.compile(r"[^;]*;")
_COMMENT_RE = re.compile(r"//[^\n]*")


def _statements(source: str) -> List[Tuple[str, int]]:
    """Split into ';'-terminated statements with their line numbers."""
    stripped = _COMMENT_RE.sub("", source)
    out: List[Tuple[str, int]] = []
    line = 1
    pos = 0
    while pos < len(stripped):
        match = _STATEMENT_RE.match(stripped, pos)
        if match is None:
            rest = stripped[pos:].strip()
            if rest:
                raise DslParseError(
                    f"unterminated statement: {rest[:40]!r}", line
                )
            break
        text = match.group()[:-1]
        out.append((text.strip(), line))
        line += match.group().count("\n")
        pos = match.end()
    return out


def parse_dsl(
    source: str,
    namespace: Mapping[str, Callable[..., Any]],
    constant_provider: Optional[Callable] = None,
) -> Dsl:
    """Parse a textual DSL definition into a :class:`Dsl`.

    ``namespace`` supplies the component implementations;
    ``constant_provider`` (optional) supplies ``_CONSTANT`` values per
    nonterminal given the examples.
    """
    name = "dsl"
    start: Optional[str] = None
    nt_types: Dict[str, Type] = {}
    lambda_vars: Dict[str, Type] = {}
    rules: List[Tuple[str, str, int]] = []
    rewrites: List[Tuple[str, int]] = []

    for text, line in _statements(source):
        if not text:
            continue
        head, _, rest = text.partition(" ")
        if head == "dsl":
            name = rest.strip().strip('"')
        elif head == "start":
            start = rest.strip()
        elif head == "nonterminal":
            nt_name, _, ty_text = rest.partition(":")
            if not ty_text:
                raise DslParseError(
                    "nonterminal declarations need ': <type>'", line
                )
            nt_types[nt_name.strip()] = parse_type(ty_text.strip())
        elif head == "lambdavar":
            var_name, _, ty_text = rest.partition(":")
            if not ty_text:
                raise DslParseError(
                    "lambdavar declarations need ': <type>'", line
                )
            lambda_vars[var_name.strip()] = parse_type(ty_text.strip())
        elif head == "rewrite":
            rewrites.append((rest.strip(), line))
        elif "::=" in text:
            nt_name, _, rhs = text.partition("::=")
            rules.append((nt_name.strip(), rhs.strip(), line))
        else:
            raise DslParseError(f"unrecognized statement {text!r}", line)

    if start is None:
        raise DslParseError("missing 'start <nonterminal>;'")

    builder = DslBuilder(name, start=start)
    for nt_name, ty in nt_types.items():
        builder.nt(nt_name, ty)

    for nt_name, rhs, line in rules:
        if nt_name not in nt_types:
            raise DslParseError(f"undeclared nonterminal {nt_name!r}", line)
        for alternative in _split_alternatives(rhs):
            _add_rule(
                builder, nt_name, alternative.strip(), namespace,
                nt_types, lambda_vars, line,
            )

    function_names = builder.function_names()
    for rule_text, line in rewrites:
        try:
            builder.rewrite(parse_rule(rule_text, function_names))
        except ValueError as exc:
            raise DslParseError(str(exc), line) from exc

    if constant_provider is not None:
        builder.constants_from(constant_provider)
    return builder.build()


def _split_alternatives(rhs: str) -> List[str]:
    """Split on top-level '|' (not inside parentheses)."""
    out: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in rhs:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "|" and depth == 0:
            out.append("".join(current))
            current = []
        else:
            current.append(ch)
    out.append("".join(current))
    return out


_CALL_RE = re.compile(r"^([A-Za-z_][\w]*)\s*\((.*)\)$", re.DOTALL)


def _split_args(text: str) -> List[str]:
    out: List[str] = []
    depth = 0
    current: List[str] = []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(current).strip())
            current = []
        else:
            current.append(ch)
    last = "".join(current).strip()
    if last:
        out.append(last)
    return out


def _add_rule(
    builder: DslBuilder,
    nt_name: str,
    alternative: str,
    namespace: Mapping[str, Callable[..., Any]],
    nt_types: Dict[str, Type],
    lambda_vars: Dict[str, Type],
    line: int,
) -> None:
    if not alternative:
        raise DslParseError(f"empty alternative for {nt_name!r}", line)
    if alternative == "_PARAM":
        builder.param(nt_name)
        return
    if alternative == "_CONSTANT":
        builder.constant(nt_name)
        return
    match = _CALL_RE.match(alternative)
    if match is None:
        # A bare name: unit rule or lambda-variable reference.
        if alternative in nt_types:
            builder.unit(nt_name, alternative)
            return
        if alternative in lambda_vars:
            builder._lambda_vars.setdefault(
                alternative, lambda_vars[alternative]
            )
            builder.var(nt_name, alternative)
            return
        raise DslParseError(
            f"{nt_name!r}: {alternative!r} is neither a nonterminal, a "
            f"lambda variable, nor a call",
            line,
        )
    callee, args_text = match.group(1), match.group(2)
    args = _split_args(args_text)
    if callee == "__CONDITIONAL":
        if len(args) != 2:
            raise DslParseError("__CONDITIONAL takes (guard, branch)", line)
        builder.conditional(nt_name, guard_nt=args[0], branch_nt=args[1])
        return
    if callee == "__FOREACH":
        variants = ("forward", "reverse", "split")
        builder.foreach(nt_name, body_nt=args[0], variants=variants)
        return
    if callee == "__FOR":
        builder.for_loop(nt_name, body_nt=args[0])
        return
    if callee == "_LASY_FN":
        builder.lasy_fn(nt_name, args)
        return
    if callee == "_RECURSE":
        builder.recurse(nt_name, args)
        return

    impl = namespace.get(callee)
    if impl is None or not callable(impl):
        raise DslParseError(
            f"{nt_name!r}: no component named {callee!r} in the namespace",
            line,
        )
    specs: List[Any] = []
    for arg in args:
        if arg.startswith("lambda "):
            binder, _, body_nt = arg[len("lambda "):].partition(":")
            var_names = tuple(v.strip() for v in binder.split(","))
            body_nt = body_nt.strip()
            missing = [v for v in var_names if v not in lambda_vars]
            if missing:
                raise DslParseError(
                    f"lambda variable(s) {missing} lack a 'lambdavar' "
                    f"declaration",
                    line,
                )
            specs.append(
                LambdaSpec(
                    var_names,
                    tuple(lambda_vars[v] for v in var_names),
                    body_nt,
                )
            )
        else:
            if arg not in nt_types:
                raise DslParseError(
                    f"{callee}: unknown argument nonterminal {arg!r}", line
                )
            specs.append(arg)
    builder.fn(nt_name, callee, specs, impl)
