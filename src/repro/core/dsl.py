"""DSL definitions: the grammar, special rules, and expert hints (§3.2).

A DSL is primarily a context-free grammar over pure functions. Each
nonterminal carries a value type; each production describes one way to
build an expression for its nonterminal:

* ``call``     — apply a DSL-defined :class:`~repro.core.expr.Function`
                 to arguments drawn from other nonterminals (arguments may
                 be inline lambda abstractions, for higher-order
                 components such as ``Loop(λw: e)``);
* ``param``    — the ``_PARAM`` rule: any parameter of the function being
                 synthesized whose type matches the nonterminal;
* ``constant`` — the ``_CONSTANT`` rule: literals supplied by the DSL's
                 constant provider (which may inspect the examples);
* ``var``      — a reference to a lambda variable introduced by some
                 lambda argument in the grammar (e.g. the loop variable
                 ``w`` in the FlashFill DSL);
* ``lasy_fn``  — the ``_LASY_FN`` rule: a call to another LaSy function;
* ``recurse``  — the ``_RECURSE`` rule: a recursive self-call.

Beyond the grammar, a DSL records which nonterminals admit the
``__CONDITIONAL`` strategy (§5.2), which admit the ``__FOREACH``/``__FOR``
loop strategies (§5.3), the rewrite rules used for syntactic
canonicalization (§5.1), and a constant provider.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence, Tuple, Union

from .expr import Function
from .types import BOOL, Type


@dataclass(frozen=True)
class Signature:
    """The signature of a function being synthesized (from LaSy)."""

    name: str
    params: Tuple[Tuple[str, Type], ...]
    return_type: Type

    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(name for name, _ in self.params)

    @property
    def param_types(self) -> Tuple[Type, ...]:
        return tuple(ty for _, ty in self.params)

    def __str__(self) -> str:
        params = ", ".join(f"{ty} {name}" for name, ty in self.params)
        return f"{self.return_type} {self.name}({params})"


@dataclass(frozen=True)
class NtRef:
    """A grammar argument drawn from a nonterminal."""

    nt: str


@dataclass(frozen=True)
class LambdaSpec:
    """An inline lambda argument: ``λ vars . <body_nt>``.

    ``var_names``/``var_types`` introduce lambda variables usable (via
    ``var`` productions) inside expressions of ``body_nt``.
    ``require_var_use`` (default) only admits bodies mentioning at least
    one of the variables — a constant-bodied map/loop is (almost always)
    expressible without the combinator, so enumerating it only multiplies
    the search space.
    """

    var_names: Tuple[str, ...]
    var_types: Tuple[Type, ...]
    body_nt: str
    require_var_use: bool = True


ArgSpec = Union[NtRef, LambdaSpec]


@dataclass(frozen=True)
class Production:
    """One grammar rule ``nt ::= ...``."""

    nt: str
    kind: str  # 'call' | 'param' | 'constant' | 'var' | 'lasy_fn' | 'recurse'
    func: Optional[Function] = None
    args: Tuple[ArgSpec, ...] = ()
    var_name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind == "call" and self.func is None:
            raise ValueError("call production requires a function")
        if self.kind == "var" and not self.var_name:
            raise ValueError("var production requires a variable name")
        if self.kind == "unit" and len(self.args) != 1:
            raise ValueError("unit production requires exactly one argument")


@dataclass(frozen=True)
class ConditionalRule:
    """``nt ::= __CONDITIONAL(guard_nt, branch_nt)`` (§5.2)."""

    nt: str
    guard_nt: str
    branch_nt: str


@dataclass(frozen=True)
class LoopRule:
    """``nt ::= __FOREACH(body_nt)`` or ``__FOR(body_nt)`` (§5.3).

    ``variants`` selects strategy refinements: for FOREACH,
    ``('forward', 'reverse', 'split')``; FOR has a single variant.
    """

    nt: str
    kind: str  # 'foreach' | 'for'
    body_nt: str
    variants: Tuple[str, ...] = ("forward",)


ConstantProvider = Callable[..., Mapping[str, Sequence[Any]]]


class DslError(ValueError):
    """An ill-formed DSL definition."""


@dataclass
class Dsl:
    """A complete DSL definition, ready to drive DBS."""

    name: str
    start: str
    nonterminals: Dict[str, Type]
    productions: Tuple[Production, ...]
    conditionals: Tuple[ConditionalRule, ...] = ()
    loops: Tuple[LoopRule, ...] = ()
    rewrites: Tuple[Any, ...] = ()  # RewriteRule; typed loosely to avoid cycle
    constant_provider: Optional[ConstantProvider] = None
    lambda_vars: Dict[str, Type] = field(default_factory=dict)
    # Per-nonterminal semantic-fingerprint adapters: map an evaluated
    # component value to the *observable behaviour* that should drive the
    # §5.1 semantic dedup. The strings domain uses this to fingerprint a
    # position expression by where it resolves in the example strings
    # rather than by its own structure.
    signature_adapters: Dict[str, Any] = field(default_factory=dict)
    # Per-nonterminal admission filters: ``filter(values, examples)``
    # decides whether a closed expression with the given value vector is
    # worth pooling at all. An expert prune hint in the spirit of §5.4's
    # inverse strategies — the strings domain keeps only concatenation
    # pieces that occur inside some expected output.
    admission_filters: Dict[str, Any] = field(default_factory=dict)
    # Composition strategies (§5.4): goal-directed expression builders
    # run by DBS after each generation, e.g. the concatenation inverse.
    composition_strategies: Tuple[Any, ...] = ()

    def __post_init__(self) -> None:
        self._validate()
        self._productions_by_nt: Dict[str, List[Production]] = {}
        for prod in self.productions:
            self._productions_by_nt.setdefault(prod.nt, []).append(prod)

    def _validate(self) -> None:
        if self.start not in self.nonterminals:
            raise DslError(f"start nonterminal {self.start!r} is undefined")
        for prod in self.productions:
            if prod.nt not in self.nonterminals:
                raise DslError(f"production for unknown nonterminal {prod.nt!r}")
            for arg in prod.args:
                if isinstance(arg, NtRef):
                    if arg.nt not in self.nonterminals:
                        raise DslError(
                            f"{prod.nt}: unknown argument nonterminal {arg.nt!r}"
                        )
                elif isinstance(arg, LambdaSpec):
                    if arg.body_nt not in self.nonterminals:
                        raise DslError(
                            f"{prod.nt}: unknown lambda body {arg.body_nt!r}"
                        )
        for rule in self.conditionals:
            for nt in (rule.nt, rule.guard_nt, rule.branch_nt):
                if nt not in self.nonterminals:
                    raise DslError(f"conditional rule uses unknown {nt!r}")
            if self.nonterminals[rule.guard_nt] != BOOL:
                raise DslError(
                    f"conditional guard nonterminal {rule.guard_nt!r} "
                    f"must be bool, is {self.nonterminals[rule.guard_nt]}"
                )
        for rule in self.loops:
            for nt in (rule.nt, rule.body_nt):
                if nt not in self.nonterminals:
                    raise DslError(f"loop rule uses unknown {nt!r}")

    # -- queries -------------------------------------------------------

    def productions_for(self, nt: str) -> List[Production]:
        return self._productions_by_nt.get(nt, [])

    def expansion(self, nt: str) -> Tuple[str, ...]:
        """Nonterminals whose expressions may stand where ``nt`` is
        expected: ``nt`` itself, targets of unit productions, and the
        branch nonterminals of conditional rules (a conditional with a
        single branch is just that branch)."""
        cache = getattr(self, "_expansion_cache", None)
        if cache is None:
            cache = {}
            object.__setattr__(self, "_expansion_cache", cache)
        if nt in cache:
            return cache[nt]
        seen = [nt]
        frontier = [nt]
        while frontier:
            current = frontier.pop()
            for prod in self.productions_for(current):
                if prod.kind == "unit":
                    target = prod.args[0]
                    name = target.nt if isinstance(target, NtRef) else target
                    if name not in seen:
                        seen.append(name)
                        frontier.append(name)
            for rule in self.conditionals:
                if rule.nt == current and rule.branch_nt not in seen:
                    seen.append(rule.branch_nt)
                    frontier.append(rule.branch_nt)
        result = tuple(seen)
        cache[nt] = result
        return result

    def type_of(self, nt: str) -> Type:
        return self.nonterminals[nt]

    @property
    def num_rules(self) -> int:
        """Grammar rule count, the paper's measure of DSL size (§5.1)."""
        return len(self.productions) + len(self.conditionals) + len(self.loops)

    def conditional_nts(self) -> Dict[str, ConditionalRule]:
        return {rule.nt: rule for rule in self.conditionals}

    def functions(self) -> List[Function]:
        seen: Dict[str, Function] = {}
        for prod in self.productions:
            if prod.kind == "call" and prod.func is not None:
                seen.setdefault(prod.func.name, prod.func)
        return list(seen.values())

    def constants_for(self, examples: Sequence[Any]) -> Mapping[str, Sequence[Any]]:
        if self.constant_provider is None:
            return {}
        return self.constant_provider(examples)


class DslBuilder:
    """Fluent construction of :class:`Dsl` values.

    >>> from repro.core.types import STRING, INT
    >>> b = DslBuilder('demo', start='S')
    >>> b.nt('S', STRING).nt('N', INT)
    ... # doctest: +ELLIPSIS
    <repro.core.dsl.DslBuilder object at ...>
    """

    def __init__(self, name: str, start: str):
        self.name = name
        self.start = start
        self._nts: Dict[str, Type] = {}
        self._productions: List[Production] = []
        self._conditionals: List[ConditionalRule] = []
        self._loops: List[LoopRule] = []
        self._rewrites: List[Any] = []
        self._constant_provider: Optional[ConstantProvider] = None
        self._lambda_vars: Dict[str, Type] = {}
        self._signature_adapters: Dict[str, Any] = {}
        self._admission_filters: Dict[str, Any] = {}
        self._composition_strategies: List[Any] = []

    def nt(self, name: str, ty: Type) -> "DslBuilder":
        """Declare a nonterminal with its value type."""
        if name in self._nts and self._nts[name] != ty:
            raise DslError(f"nonterminal {name!r} redeclared with new type")
        self._nts[name] = ty
        return self

    def rule(
        self,
        nt: str,
        func: Function,
        args: Sequence[Union[str, ArgSpec]],
    ) -> "DslBuilder":
        """``nt ::= func(args...)``; string args are nonterminal names."""
        specs: List[ArgSpec] = []
        for arg in args:
            if isinstance(arg, str):
                specs.append(NtRef(arg))
            else:
                specs.append(arg)
                if isinstance(arg, LambdaSpec):
                    for vname, vty in zip(arg.var_names, arg.var_types):
                        existing = self._lambda_vars.get(vname)
                        if existing is not None and existing != vty:
                            raise DslError(
                                f"lambda variable {vname!r} declared with "
                                f"two types"
                            )
                        self._lambda_vars[vname] = vty
        self._productions.append(
            Production(nt, "call", func=func, args=tuple(specs))
        )
        return self

    def fn(
        self,
        nt: str,
        name: str,
        arg_nts: Sequence[Union[str, ArgSpec]],
        impl: Callable[..., Any],
        lazy: bool = False,
    ) -> "DslBuilder":
        """Register a Python implementation and add its grammar rule.

        Argument and return types are derived from the nonterminals, which
        keeps builder call sites compact.
        """
        param_types = []
        for arg in arg_nts:
            if isinstance(arg, str):
                param_types.append(self._require_nt(arg))
            elif isinstance(arg, NtRef):
                param_types.append(self._require_nt(arg.nt))
            elif isinstance(arg, LambdaSpec):
                from .types import fun_n

                param_types.append(
                    fun_n(arg.var_types, self._require_nt(arg.body_nt))
                )
        func = Function(
            name=name,
            param_types=tuple(param_types),
            return_type=self._require_nt(nt),
            fn=impl,
            lazy=lazy,
        )
        return self.rule(nt, func, arg_nts)

    def _require_nt(self, name: str) -> Type:
        if name not in self._nts:
            raise DslError(f"nonterminal {name!r} used before declaration")
        return self._nts[name]

    def unit(self, nt: str, target_nt: str) -> "DslBuilder":
        """``nt ::= target_nt`` — a unit (renaming) production."""
        self._productions.append(
            Production(nt, "unit", args=(NtRef(target_nt),))
        )
        return self

    def param(self, nt: str) -> "DslBuilder":
        """``nt ::= _PARAM`` — any parameter of the nonterminal's type."""
        self._productions.append(Production(nt, "param"))
        return self

    def constant(self, nt: str) -> "DslBuilder":
        """``nt ::= _CONSTANT`` — constants from the provider."""
        self._productions.append(Production(nt, "constant"))
        return self

    def var(self, nt: str, var_name: str) -> "DslBuilder":
        """``nt ::= var_name`` — a lambda variable reference."""
        self._productions.append(Production(nt, "var", var_name=var_name))
        return self

    def lasy_fn(self, nt: str, arg_nts: Sequence[str]) -> "DslBuilder":
        """``nt ::= _LASY_FN(arg_nts...)`` — call another LaSy function."""
        self._productions.append(
            Production(nt, "lasy_fn", args=tuple(NtRef(a) for a in arg_nts))
        )
        return self

    def recurse(self, nt: str, arg_nts: Sequence[str]) -> "DslBuilder":
        """``nt ::= _RECURSE(arg_nts...)`` — recursive self-call."""
        self._productions.append(
            Production(nt, "recurse", args=tuple(NtRef(a) for a in arg_nts))
        )
        return self

    def conditional(self, nt: str, guard_nt: str, branch_nt: str) -> "DslBuilder":
        """``nt ::= __CONDITIONAL(guard_nt, branch_nt)``."""
        self._conditionals.append(ConditionalRule(nt, guard_nt, branch_nt))
        return self

    def foreach(
        self, nt: str, body_nt: str, variants: Sequence[str] = ("forward",)
    ) -> "DslBuilder":
        """``nt ::= __FOREACH(body_nt)``."""
        self._loops.append(LoopRule(nt, "foreach", body_nt, tuple(variants)))
        return self

    def for_loop(self, nt: str, body_nt: str) -> "DslBuilder":
        """``nt ::= __FOR(body_nt)``."""
        self._loops.append(LoopRule(nt, "for", body_nt, ("forward",)))
        return self

    def rewrite(self, rule: Any) -> "DslBuilder":
        self._rewrites.append(rule)
        return self

    def constants_from(self, provider: ConstantProvider) -> "DslBuilder":
        self._constant_provider = provider
        return self

    def signature_adapter(self, nt: str, adapter: Any) -> "DslBuilder":
        """Fingerprint values of ``nt`` by ``adapter(value, example)``
        during semantic dedup instead of by the raw value."""
        self._signature_adapters[nt] = adapter
        return self

    def admission_filter(self, nt: str, predicate: Any) -> "DslBuilder":
        """Pool a closed expression of ``nt`` only when
        ``predicate(values, examples)`` holds for its value vector."""
        self._admission_filters[nt] = predicate
        return self

    def composition_strategy(self, strategy: Any) -> "DslBuilder":
        """Register a goal-directed composition strategy (§5.4)."""
        self._composition_strategies.append(strategy)
        return self

    def lambda_var_type(self, name: str) -> Type:
        return self._lambda_vars[name]

    def function_names(self) -> List[str]:
        """Names of the component functions registered so far."""
        out: List[str] = []
        for prod in self._productions:
            if prod.kind == "call" and prod.func is not None:
                if prod.func.name not in out:
                    out.append(prod.func.name)
        return out

    def build(self) -> Dsl:
        dsl = Dsl(
            name=self.name,
            start=self.start,
            nonterminals=dict(self._nts),
            productions=tuple(self._productions),
            conditionals=tuple(self._conditionals),
            loops=tuple(self._loops),
            rewrites=tuple(self._rewrites),
            constant_provider=self._constant_provider,
            lambda_vars=dict(self._lambda_vars),
            signature_adapters=dict(self._signature_adapters),
            admission_filters=dict(self._admission_filters),
            composition_strategies=tuple(self._composition_strategies),
        )
        from .rewrite import check_acyclic

        check_acyclic(dsl)
        return dsl


@dataclass(frozen=True)
class Example:
    """One ``require f(args...) == output`` example."""

    args: Tuple[Any, ...]
    output: Any

    def __str__(self) -> str:
        from .values import value_repr

        rendered = ", ".join(value_repr(a) for a in self.args)
        return f"({rendered}) == {value_repr(self.output)}"
