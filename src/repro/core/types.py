"""A small structural type system for DSL expressions.

The paper hosts LaSy in C#, so DSL components carry .NET type signatures.
We reproduce the part the synthesizer actually needs: named atomic types
(``str``, ``int``, ``bool``, domain types like ``xml`` and ``table``),
parameterized list types (``list<str>``), and function types for lambda
arguments to higher-order components (``fun<str, str>``).

Types are interned immutable values; identity is structural.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple


@dataclass(frozen=True)
class Type:
    """A structural type: a constructor name plus type arguments.

    ``Type('str')`` is the string type; ``Type('list', (Type('int'),))``
    is ``list<int>``; ``Type('fun', (a, b))`` is a one-argument function
    from ``a`` to ``b`` (functions of higher arity curry).
    """

    name: str
    args: Tuple["Type", ...] = field(default=())

    def __str__(self) -> str:
        if not self.args:
            return self.name
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.name}<{inner}>"

    __repr__ = __str__

    @property
    def is_function(self) -> bool:
        return self.name == "fun"

    @property
    def is_list(self) -> bool:
        return self.name == "list"

    def element_type(self) -> "Type":
        """Element type of a list type."""
        if not self.is_list:
            raise TypeError(f"{self} is not a list type")
        return self.args[0]


# Atomic types used across the built-in domains.
STRING = Type("str")
INT = Type("int")
BOOL = Type("bool")
CHAR = Type("char")
UNIT = Type("unit")
XML = Type("xml")
TABLE = Type("table")
ANY = Type("any")


def list_of(elem: Type) -> Type:
    """The type ``list<elem>``."""
    return Type("list", (elem,))


def fun(arg: Type, result: Type) -> Type:
    """The one-argument function type ``fun<arg, result>``."""
    return Type("fun", (arg, result))


def fun_n(args: Tuple[Type, ...], result: Type) -> Type:
    """Curried n-argument function type."""
    ty = result
    for arg in reversed(args):
        ty = fun(arg, ty)
    return ty


_ATOMS = {t.name: t for t in (STRING, INT, BOOL, CHAR, UNIT, XML, TABLE, ANY)}


class TypeParseError(ValueError):
    """Raised when a type string cannot be parsed."""


def parse_type(text: str) -> Type:
    """Parse a type from its textual form, e.g. ``list<str>``.

    >>> parse_type('list<str>')
    list<str>
    >>> parse_type('fun<int, list<int>>')
    fun<int, list<int>>
    """
    parsed, pos = _parse_type(text, 0)
    if text[pos:].strip():
        raise TypeParseError(f"trailing characters in type: {text!r}")
    return parsed


def _parse_type(text: str, pos: int) -> Tuple[Type, int]:
    while pos < len(text) and text[pos].isspace():
        pos += 1
    start = pos
    while pos < len(text) and (text[pos].isalnum() or text[pos] == "_"):
        pos += 1
    name = text[start:pos]
    if not name:
        raise TypeParseError(f"expected a type name at {pos} in {text!r}")
    while pos < len(text) and text[pos].isspace():
        pos += 1
    if pos < len(text) and text[pos] == "<":
        pos += 1
        args = []
        while True:
            arg, pos = _parse_type(text, pos)
            args.append(arg)
            while pos < len(text) and text[pos].isspace():
                pos += 1
            if pos >= len(text):
                raise TypeParseError(f"unterminated type arguments in {text!r}")
            if text[pos] == ",":
                pos += 1
                continue
            if text[pos] == ">":
                pos += 1
                break
            raise TypeParseError(f"unexpected {text[pos]!r} in {text!r}")
        return Type(name, tuple(args)), pos
    if name in _ATOMS:
        return _ATOMS[name], pos
    return Type(name), pos


def types_compatible(expected: Type, actual: Type) -> bool:
    """Whether a value of type ``actual`` may flow where ``expected`` is.

    ``any`` is compatible with everything (used by the type-only Pex4Fun
    DSL and the sketch-like baseline, which deliberately under-constrain).
    """
    if expected == actual:
        return True
    if expected.name == "any" or actual.name == "any":
        return True
    if expected.name == actual.name and len(expected.args) == len(actual.args):
        return all(
            types_compatible(e, a) for e, a in zip(expected.args, actual.args)
        )
    return False
