"""Angelic context pruning (§7, "Automated program repair").

The paper observes that angelic debugging (Chandra et al., ICSE'11)
"could be used as a preprocessing step in our algorithm to prune the
choices for modification points": a context is a plausible repair point
for a failing example only if *some* value at its hole makes the example
pass. We implement the executable approximation: probe each context's
hole with a set of diverse values (harvested from the examples plus
canned primitives) on every failing example. A context is pruned when,
for some failing example, every probe yields the *same wrong* result —
the output provably ignores the hole on that example, so no replacement
there can fix it. The more aggressive "no probe fixed it" test is
available behind ``aggressive=True`` (it can prune the one true repair
point when the magic value is outside the probe set, so it is off by
default).

This is an optional TDS feature (``TdsOptions.angelic_pruning``); the
A2 benchmark measures its effect.
"""

from __future__ import annotations

from typing import Any, Callable, Iterable, List, Mapping, Optional, Sequence

from .contexts import Context
from .dsl import Dsl, Example, Signature
from .evaluator import EvaluationError, run_program
from .expr import Const, Expr, free_vars
from .types import Type
from .values import ERROR, freeze, structurally_equal

# Canned probe values per type name; example-derived values are added.
_CANNED_PROBES = {
    "int": (0, 1, -1, 7),
    "str": ("", "a", "zq", " "),
    "bool": (False, True),
    "char": ("a", "z"),
}


def _harvest(examples: Sequence[Example], ty: Type, limit: int = 4) -> List[Any]:
    found: List[Any] = []

    def matches(value: Any) -> bool:
        if ty.name == "int":
            return isinstance(value, int) and not isinstance(value, bool)
        if ty.name in ("str", "char"):
            return isinstance(value, str)
        if ty.name == "bool":
            return isinstance(value, bool)
        if ty.is_list or ty.name in ("xml", "table"):
            return isinstance(value, tuple) or hasattr(value, "elements")
        return False

    def consider(value: Any, depth: int) -> None:
        if len(found) >= limit:
            return
        if matches(value) and value not in found:
            found.append(value)
        if depth > 0:
            if isinstance(value, tuple):
                for item in value[:3]:
                    consider(item, depth - 1)
            elif hasattr(value, "elements"):
                for item in value.elements()[:3]:
                    consider(item, depth - 1)

    for example in examples:
        for value in list(example.args) + [example.output]:
            consider(value, 2)
    return found


def probe_values(
    examples: Sequence[Example], hole_type: Type, limit: int = 6
) -> List[Any]:
    """Diverse values to try at a context hole."""
    values = _harvest(examples, hole_type)
    for canned in _CANNED_PROBES.get(hole_type.name, ()):
        if canned not in values:
            values.append(canned)
    if hole_type.is_list and () not in values:
        values.append(())
    return values[:limit]


def _outcome(
    context: Context,
    value: Any,
    signature: Signature,
    example: Example,
    lasy_fns: Mapping,
    fuel: int,
) -> Any:
    hole_filler: Expr = Const(freeze(value), context.hole_type, context.hole_nt)
    program = context.plug(hole_filler)
    try:
        return run_program(
            program,
            signature.param_names,
            example.args,
            lasy_fns=lasy_fns,
            fuel=fuel,
        )
    except EvaluationError:
        return ERROR


def angelic_prune(
    contexts: Sequence[Context],
    signature: Signature,
    failing_examples: Sequence[Example],
    examples: Sequence[Example],
    lasy_fns: Optional[Mapping] = None,
    fuel: int = 20_000,
    aggressive: bool = False,
) -> List[Context]:
    """Drop contexts that provably (or, with ``aggressive``, plausibly)
    cannot repair the failing examples. The trivial context and contexts
    whose root contains free variables or recursion interplay are always
    kept."""
    if not failing_examples:
        return list(contexts)
    lasy_fns = lasy_fns or {}
    kept: List[Context] = []
    for context in contexts:
        if context.is_trivial or free_vars(context.root):
            kept.append(context)
            continue
        values = probe_values(examples, context.hole_type)
        if len(values) < 2:
            kept.append(context)
            continue
        prunable = False
        for example in failing_examples:
            outcomes = [
                _outcome(context, v, signature, example, lasy_fns, fuel)
                for v in values
            ]
            fixed = any(
                o is not ERROR and structurally_equal(o, example.output)
                for o in outcomes
            )
            if fixed:
                continue
            constant = all(
                _same(o, outcomes[0]) for o in outcomes[1:]
            )
            if constant or aggressive:
                # The hole value does not influence this failing example
                # (or, aggressively, nothing we tried fixed it).
                prunable = True
                break
        if not prunable:
            kept.append(context)
    return kept


def _same(a: Any, b: Any) -> bool:
    if a is ERROR or b is ERROR:
        return a is b
    return structurally_equal(a, b)
