"""Loop synthesis strategies (§5.3).

A loop strategy hypothesizes a correspondence between structure in the
input/output examples and iterations of a loop, rewrites the examples
into *loop body* examples, synthesizes the body with a recursive call to
the synthesizer, and wraps the result in boilerplate:

* ``__FOREACH`` — a 1-to-1 correspondence between an input sequence and
  the output sequence; each element yields one body example with extra
  parameters ``i`` (index), ``current`` (element) and ``acc`` (outputs of
  previous iterations). Variants: ``forward``, ``reverse`` (iterate the
  source right-to-left), and ``split`` (the cross-domain variant the
  paper sketches: split an input *string* and the output string on a
  common delimiter and loop over the pieces).
* ``__FOR`` — a pattern *across* examples: example pairs whose designated
  integer input differs by one are adjacent loop iterations, giving body
  examples over ``i`` and ``acc`` (the previous iteration's return
  value); the smallest input seeds the accumulator.

Strategies never test the assembled program themselves; DBS does.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..obs.trace import get_tracer
from .dsl import Dsl, Example, LoopRule, Signature
from .expr import (
    Const,
    Expr,
    Foreach,
    ForLoop,
    Function,
    Lambda,
    Param,
    Var,
)
from .types import INT, STRING, Type, list_of
from .values import freeze

# The sub-synthesis callback: (signature, examples, start_nt) -> program
SubSynthesizer = Callable[[Signature, Sequence[Example], str], Optional[Expr]]


def make_body_synthesizer(
    dsl: Dsl,
    options,
    budget,
    lasy_fns,
    lasy_signatures,
    cancel=None,
) -> SubSynthesizer:
    """The standard :data:`SubSynthesizer`: a nested DBS call over a
    fresh trivial context at the body's start nonterminal, on a spawned
    slice of the parent budget, with loop strategies disabled (no nested
    loops). ``cancel`` is the concurrent-loops cooperative-cancellation
    event; checked between candidate sub-syntheses."""
    from dataclasses import replace

    def synthesize_body(
        body_sig: Signature, body_examples: Sequence[Example], start_nt: str
    ) -> Optional[Expr]:
        from .contexts import Context
        from .dbs import dbs  # deferred: loops is imported by dbs
        from .expr import Hole

        if cancel is not None and cancel.is_set():
            return None
        sub_context = Context(
            root=Hole(start_nt),
            path=(),
            hole_nt=start_nt,
            hole_type=dsl.type_of(start_nt),
        )
        sub_options = replace(
            options, enable_loops=False, concurrent_loops=False
        )
        result = dbs(
            contexts=[sub_context],
            examples=body_examples,
            seeds=[],
            dsl=dsl,
            signature=body_sig,
            max_branches=3,
            budget=budget.spawn(0.35),
            lasy_fns=lasy_fns,
            lasy_signatures=lasy_signatures,
            options=sub_options,
        )
        return result.program

    return synthesize_body

# Delimiters tried by the 'split' variant.
_SPLIT_DELIMITERS = ("\n", " ", ",", ", ", ";", "\t", "|", "-")


def _split_sep(text: str, sep: str) -> Tuple[str, ...]:
    return tuple(text.split(sep))


def _join_sep(sep: str, pieces: Any) -> str:
    return sep.join(pieces)


SPLIT_FN = Function("SplitSep", (STRING, STRING), list_of(STRING), _split_sep)
JOIN_FN = Function("JoinSep", (STRING, list_of(STRING)), STRING, _join_sep)


def _bind_loop_vars(body: Expr, var_types: Dict[str, Type]) -> Expr:
    """Rewrite body references to the strategy's extra parameters
    (``i``/``current``/``acc``) from :class:`Param` nodes — how the body
    synthesizer saw them — into :class:`Var` nodes bound by the loop's
    lambda."""
    if isinstance(body, Param) and body.name in var_types:
        return Var(body.name, var_types[body.name], body.nt)
    children = body.children()
    if not children:
        return body
    new_children = tuple(_bind_loop_vars(c, var_types) for c in children)
    if new_children == children:
        return body
    return body.with_children(new_children)


@dataclass
class LoopCandidate:
    """A fully assembled loop program plus provenance for diagnostics."""

    program: Expr
    rule: LoopRule
    variant: str
    param_name: str


def run_loop_strategies(
    dsl: Dsl,
    signature: Signature,
    examples: Sequence[Example],
    synthesize_body: SubSynthesizer,
) -> List[LoopCandidate]:
    """Run every loop rule of the DSL; returns assembled candidates."""
    candidates: List[LoopCandidate] = []
    if not examples:
        return candidates
    tracer = get_tracer()
    for rule in dsl.loops:
        with tracer.span(
            "dbs.loops.rule", kind=rule.kind, nt=rule.nt
        ) as span:
            before = len(candidates)
            if rule.kind == "foreach":
                candidates.extend(
                    _foreach_candidates(
                        dsl, signature, examples, rule, synthesize_body
                    )
                )
            elif rule.kind == "for":
                candidates.extend(
                    _for_candidates(
                        dsl, signature, examples, rule, synthesize_body
                    )
                )
            span.set(candidates=len(candidates) - before)
    return candidates


# ---------------------------------------------------------------------
# FOREACH


def _foreach_candidates(
    dsl: Dsl,
    signature: Signature,
    examples: Sequence[Example],
    rule: LoopRule,
    synthesize_body: SubSynthesizer,
) -> List[LoopCandidate]:
    out: List[LoopCandidate] = []
    loop_type = dsl.type_of(rule.nt)
    body_type = dsl.type_of(rule.body_nt)
    for variant in rule.variants:
        if variant in ("forward", "reverse"):
            if not loop_type.is_list:
                continue
            out.extend(
                _foreach_over_lists(
                    dsl,
                    signature,
                    examples,
                    rule,
                    synthesize_body,
                    reverse=(variant == "reverse"),
                )
            )
        elif variant == "split":
            if loop_type != STRING or body_type != STRING:
                continue
            out.extend(
                _foreach_over_split_strings(
                    dsl, signature, examples, rule, synthesize_body
                )
            )
    return out


def _foreach_over_lists(
    dsl: Dsl,
    signature: Signature,
    examples: Sequence[Example],
    rule: LoopRule,
    synthesize_body: SubSynthesizer,
    reverse: bool,
) -> List[LoopCandidate]:
    out: List[LoopCandidate] = []
    out_elem = dsl.type_of(rule.nt).element_type()
    if dsl.type_of(rule.body_nt) != out_elem:
        return out
    for pname, pty in signature.params:
        if not pty.is_list:
            continue
        decomposition = _decompose_foreach(
            signature, examples, pname, reverse=reverse
        )
        if decomposition is None:
            continue
        body_sig = Signature(
            name=f"{signature.name}__body",
            params=signature.params
            + (("i", INT), ("current", pty.element_type()), ("acc", list_of(out_elem))),
            return_type=out_elem,
        )
        body = synthesize_body(body_sig, decomposition, rule.body_nt)
        if body is None:
            continue
        body = _bind_loop_vars(
            body,
            {"i": INT, "current": pty.element_type(), "acc": list_of(out_elem)},
        )
        lam = Lambda(
            (
                Var("i", INT, "τ:int"),
                Var("current", pty.element_type(), f"τ:{pty.element_type()}"),
                Var("acc", list_of(out_elem), f"τ:{list_of(out_elem)}"),
            ),
            body,
            f"lambda(i,current,acc:{rule.body_nt})",
        )
        source = Param(pname, pty, "τ:" + str(pty))
        program = Foreach(source, lam, rule.nt, reverse=reverse)
        out.append(LoopCandidate(program, rule, "reverse" if reverse else "forward", pname))
    return out


def _decompose_foreach(
    signature: Signature,
    examples: Sequence[Example],
    pname: str,
    reverse: bool,
) -> Optional[List[Example]]:
    """Split whole-function examples into per-element body examples, or
    None if the 1-to-1 hypothesis fails on any example."""
    index = signature.param_names.index(pname)
    body_examples: List[Example] = []
    for example in examples:
        source = example.args[index]
        output = example.output
        if not isinstance(source, tuple) or not isinstance(output, tuple):
            return None
        if len(source) != len(output):
            return None
        items = list(source)
        outs = list(output)
        if reverse:
            items.reverse()
            outs.reverse()
        acc: List[Any] = []
        for i, (current, expected) in enumerate(zip(items, outs)):
            body_examples.append(
                Example(
                    args=example.args
                    + (i, freeze(current), tuple(acc)),
                    output=freeze(expected),
                )
            )
            acc.append(freeze(expected))
    return body_examples


def _foreach_over_split_strings(
    dsl: Dsl,
    signature: Signature,
    examples: Sequence[Example],
    rule: LoopRule,
    synthesize_body: SubSynthesizer,
) -> List[LoopCandidate]:
    """The 'split' variant: pick a delimiter splitting every input string
    and its output into equally many pieces, loop over the pieces."""
    out: List[LoopCandidate] = []
    for pname, pty in signature.params:
        if pty != STRING:
            continue
        index = signature.param_names.index(pname)
        for sep in _SPLIT_DELIMITERS:
            body_examples: List[Example] = []
            feasible = True
            interesting = False
            for example in examples:
                source = example.args[index]
                output = example.output
                if not isinstance(source, str) or not isinstance(output, str):
                    feasible = False
                    break
                pieces_in = source.split(sep)
                pieces_out = output.split(sep)
                if len(pieces_in) != len(pieces_out):
                    feasible = False
                    break
                if len(pieces_in) > 1:
                    interesting = True
                acc: List[str] = []
                for i, (current, expected) in enumerate(
                    zip(pieces_in, pieces_out)
                ):
                    body_examples.append(
                        Example(
                            args=example.args + (i, current, tuple(acc)),
                            output=expected,
                        )
                    )
                    acc.append(expected)
            if not feasible or not interesting:
                continue
            body_sig = Signature(
                name=f"{signature.name}__body",
                params=signature.params
                + (("i", INT), ("current", STRING), ("acc", list_of(STRING))),
                return_type=STRING,
            )
            body = synthesize_body(body_sig, body_examples, rule.body_nt)
            if body is None:
                continue
            body = _bind_loop_vars(
                body,
                {"i": INT, "current": STRING, "acc": list_of(STRING)},
            )
            lam = Lambda(
                (
                    Var("i", INT, "τ:int"),
                    Var("current", STRING, "τ:str"),
                    Var("acc", list_of(STRING), "τ:list<str>"),
                ),
                body,
                f"lambda(i,current,acc:{rule.body_nt})",
            )
            source = Param(pname, STRING, "τ:str")
            from .expr import Call

            split = Call(SPLIT_FN, (source, Const(sep, STRING, "τ:str")), "τ:list<str>")
            loop = Foreach(split, lam, "τ:list<str>")
            program = Call(JOIN_FN, (Const(sep, STRING, "τ:str"), loop), rule.nt)
            out.append(LoopCandidate(program, rule, "split", pname))
    return out


# ---------------------------------------------------------------------
# FOR


def _for_candidates(
    dsl: Dsl,
    signature: Signature,
    examples: Sequence[Example],
    rule: LoopRule,
    synthesize_body: SubSynthesizer,
) -> List[LoopCandidate]:
    out: List[LoopCandidate] = []
    ret_type = signature.return_type
    if dsl.type_of(rule.body_nt) != ret_type:
        return out
    for pname, pty in signature.params:
        if pty != INT:
            continue
        decomposition = _decompose_for(signature, examples, pname)
        if decomposition is None:
            continue
        body_examples, init_value, start = decomposition
        # The bound parameter is dropped from the body's view: in every
        # body example it would equal ``i`` (examples are built from the
        # final iteration), making the two indistinguishable and letting
        # the body overfit on the parameter.
        other_params = tuple(p for p in signature.params if p[0] != pname)
        body_sig = Signature(
            name=f"{signature.name}__body",
            params=other_params + (("i", INT), ("acc", ret_type)),
            return_type=ret_type,
        )
        body = synthesize_body(body_sig, body_examples, rule.body_nt)
        if body is None:
            continue
        body = _bind_loop_vars(body, {"i": INT, "acc": ret_type})
        lam = Lambda(
            (Var("i", INT, "τ:int"), Var("acc", ret_type, f"τ:{ret_type}")),
            body,
            f"lambda(i,acc:{rule.body_nt})",
        )
        program = ForLoop(
            bound=Param(pname, INT, "τ:int"),
            init=Const(init_value, ret_type, f"τ:{ret_type}"),
            body=lam,
            nt=rule.nt,
            start=start,
        )
        out.append(LoopCandidate(program, rule, "forward", pname))
    return out


def _decompose_for(
    signature: Signature,
    examples: Sequence[Example],
    pname: str,
) -> Optional[Tuple[List[Example], Any, int]]:
    """Pair examples whose ``pname`` inputs are consecutive (with all
    other arguments equal) into loop-body examples; the smallest input
    seeds the accumulator. Returns (body examples, init value, start)."""
    index = signature.param_names.index(pname)
    groups: Dict[Tuple[Any, ...], Dict[int, Any]] = {}
    for example in examples:
        n = example.args[index]
        if not isinstance(n, int) or isinstance(n, bool):
            return None
        rest = example.args[:index] + example.args[index + 1:]
        groups.setdefault(freeze(rest), {})[n] = example
    body_examples: List[Example] = []
    inits: List[Tuple[int, Any]] = []
    paired = False
    for mapping in groups.values():
        ns = sorted(mapping)
        base = ns[0]
        inits.append((base, mapping[base].output))
        for n in ns[1:]:
            prev = mapping.get(n - 1)
            if prev is None:
                continue  # gaps contribute no body example; pairs do
            current = mapping[n]
            other_args = (
                current.args[:index] + current.args[index + 1:]
            )
            body_examples.append(
                Example(
                    args=other_args + (n, freeze(prev.output)),
                    output=freeze(current.output),
                )
            )
            paired = True
    if not paired or not inits:
        return None
    base_values = {b for b, _ in inits}
    init_values = {freeze(v) for _, v in inits}
    if len(base_values) != 1 or len(init_values) != 1:
        return None  # strategy needs a single constant seed
    base = base_values.pop()
    return body_examples, inits[0][1], base + 1
