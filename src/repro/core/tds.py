"""Test-driven synthesis — Algorithm 1.

TDS consumes the examples *in order*, maintaining a program ``P_i`` that
satisfies the first ``i`` examples. For each new example it hands DBS:

* the contexts of ``P_i`` (one hole per removable subexpression, plus
  per-branch contexts, plus the trivial context ``•``) — unless the
  failing example provably never reaches a branch, in which case that
  branch's body contexts are pruned;
* the subexpressions of ``P_i`` as extra components (so "the effort to
  build it in previous iterations will not be wasted" — and, crucially,
  components of *earlier* programs that no longer appear are forgotten);
* a branch budget ``num_branch(P_i) + failuresInARow`` — new conditionals
  are allowed only after failures, to avoid overfitting a branch per
  example.

On DBS timeout the previous program is kept and the failure counter
rises; the next iteration retries with one more example and a bigger
branch budget. Synthesis fails overall if the final program does not
satisfy every example.

:class:`TdsSession` exposes the loop one example at a time — "in an
interactive setting the user could look at P_{i+1} or its output when
choosing S_{i+1}" (§4.1). The LaSy runner interleaves sessions for
multiple functions and the Pex4Fun game feeds counterexamples as they
are discovered; :func:`tds` is the batch wrapper.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Mapping, MutableMapping, Optional, Sequence

from ..obs.trace import get_tracer
from .budget import Budget, CancelToken, Deadline, default_budget
from .contexts import contexts_of, prune_contexts, subexpressions_of, trivial_context
from .dbs import DbsOptions, DbsResult, dbs
from .dsl import Dsl, Example, Signature
from .evaluator import EvaluationError, run_program
from .expr import Expr, count_branches
from .program import SynthesizedFunction
from .values import ERROR, structurally_equal


@dataclass
class TdsOptions:
    """TDS feature switches; §6.3 ablates contexts and subexpressions."""

    use_contexts: bool = True
    use_subexpressions: bool = True
    prune_unreached: bool = True
    # Angelic context pruning (§7 related work; see repro.core.angelic).
    angelic_pruning: bool = False
    final_retries: int = 1
    # Carry one component pool across the whole example sequence: each
    # iteration's DBS extends the previous pool by the newly appended
    # example (widening cached value vectors, re-running semantic dedup)
    # instead of rebuilding it from scratch. Off = pre-engine behavior.
    reuse_pool: bool = True
    # Hard wall-clock deadline (seconds) over the *whole* example
    # sequence. Armed when the first example arrives; once it expires,
    # every remaining DBS call truncates immediately with a
    # SynthesisTimeout and finalize() skips its retries. Composes with
    # DbsOptions.timeout_s (per DBS call); the tighter wall wins.
    timeout_s: Optional[float] = None
    # Example scheduler (engine.schedule): which queued example a batch
    # run admits next and under what per-iteration deadline. None
    # defers to REPRO_TDS_SCHEDULE, default "fifo" (caller order,
    # byte-identical to the historical behavior). Part of the session's
    # identity: a cached session is only reused by requests running the
    # same schedule.
    schedule: Optional[str] = None
    dbs: DbsOptions = field(default_factory=DbsOptions)


@dataclass
class TdsStep:
    """One iteration's record; Fig. 10 aggregates the DBS timings.

    ``action`` is ``'satisfied' | 'synthesized' | 'timeout'`` for the
    Algorithm-1 outcomes, plus the scheduling outcomes ``'queued'`` (a
    non-FIFO scheduler buffered the example for later admission) and
    ``'skipped'`` (the representative scheduler left a satisfied
    example out of the DBS constraint set; it is re-verified against
    the final program)."""

    example_index: int
    action: str
    dbs_time: float = 0.0
    expressions: int = 0
    programs_tested: int = 0
    branch_budget: int = 1
    # Why the DBS call truncated, when it did (SynthesisTimeout.reason).
    timeout_reason: Optional[str] = None


@dataclass
class TdsResult:
    program: Optional[Expr]
    success: bool
    steps: List[TdsStep]
    elapsed: float
    signature: Signature

    def function(
        self, lasy_fns: Optional[Mapping] = None
    ) -> SynthesizedFunction:
        if self.program is None:
            raise ValueError("synthesis failed; no program to wrap")
        return SynthesizedFunction(
            self.signature, self.program, lasy_fns or {}
        )

    @property
    def dbs_times(self) -> List[float]:
        return [
            s.dbs_time
            for s in self.steps
            if s.action not in ("satisfied", "queued", "skipped")
        ]


BudgetFactory = Callable[[], Budget]


class TdsSession:
    """Algorithm 1, driven one example at a time."""

    def __init__(
        self,
        signature: Signature,
        dsl: Dsl,
        budget_factory: Optional[BudgetFactory] = None,
        lasy_fns: Optional[MutableMapping] = None,
        lasy_signatures: Optional[Mapping[str, Signature]] = None,
        options: Optional[TdsOptions] = None,
        cancel: Optional[CancelToken] = None,
    ):
        self.signature = signature
        self.dsl = dsl
        self.budget_factory = budget_factory or default_budget
        # Deliberately *not* copied: the LaSy runner mutates this mapping
        # as other functions are (re)synthesized.
        self.lasy_fns = lasy_fns if lasy_fns is not None else {}
        self.lasy_signatures = dict(lasy_signatures or {})
        self.options = options or TdsOptions()
        # Cooperative cancellation: a driver cancels this token and the
        # session's current (and any future) DBS call truncates with a
        # SynthesisTimeout at its next cooperative check.
        self.cancel = cancel

        self.program: Optional[Expr] = None  # P_0 = ⊥
        self.failures_in_a_row = 0
        self.examples: List[Example] = []
        self.steps: List[TdsStep] = []
        # Example scheduling (engine.schedule). ``examples`` keeps every
        # fed example in *arrival* order — that is the session's public
        # identity (session_key, satisfies_all). The index lists below
        # track what the scheduler did with them: ``_admitted`` is the
        # DBS constraint set in admission order (== arrival order under
        # fifo), ``_pending`` the queued-not-yet-admitted indices,
        # ``_skipped`` what the representative scheduler left out. The
        # fingerprint-keyed observations (``_example_costs``,
        # ``_hard_fingerprints``) survive suspension so a cached
        # session's adaptive ordering remembers which example hurt.
        self._pending: List[int] = []
        self._admitted: List[int] = []
        self._skipped: List[int] = []
        self._deferred: List[int] = []
        self._hard_fingerprints: set = set()
        self._example_costs: dict = {}
        self._fps: dict = {}
        self._sched = None
        # Lifetime DBS seconds — the cache's rebuild-cost estimate (a
        # session that took 5s of search to build is worth keeping over
        # one that rebuilds in 50ms).
        self.total_dbs_seconds: float = 0.0
        self._started = time.monotonic()
        # The session-wide hard deadline (TdsOptions.timeout_s); armed
        # lazily by the first DBS call so transported sessions re-arm on
        # their own monotonic clock.
        self._deadline: Optional[Deadline] = None
        self._deadline_armed = False
        # The persistent synthesis engine (pool + enumerator) shared by
        # every DBS call of this session; built lazily on first use.
        self._engine: Optional["SynthesisSession"] = None

    # -- the TDS loop body -------------------------------------------------

    def add_example(self, example: Example) -> TdsStep:
        """Consume the next example (one iteration of Algorithm 1).

        Always admits immediately — "in an interactive setting the user
        could look at P_{i+1} ... when choosing S_{i+1}" needs the
        iteration to happen now. Batch drivers should prefer
        :meth:`feed`, which lets a non-FIFO scheduler queue the example
        and pick the admission order itself."""
        index = len(self.examples)
        self.examples.append(example)
        return self._admit(index)

    def feed(self, example: Example) -> TdsStep:
        """Hand the session the next example, letting the configured
        scheduler decide *when* to admit it. Under ``fifo`` this is
        exactly :meth:`add_example`; queueing schedulers return a
        ``'queued'`` step and run the iteration during :meth:`drain` /
        :meth:`finalize`."""
        if self._scheduler().immediate:
            return self.add_example(example)
        index = len(self.examples)
        self.examples.append(example)
        self._pending.append(index)
        return TdsStep(index, "queued")

    def drain(self) -> List[TdsStep]:
        """Admit every queued example in scheduler order."""
        scheduler = self._scheduler()
        steps: List[TdsStep] = []
        tracer = get_tracer()
        while self._pending:
            # The scheduling decision itself (ordering, skip probes)
            # runs under its own span so the trace report can attribute
            # its cost to the ``schedule`` phase.
            with tracer.span(
                "tds.schedule",
                scheduler=scheduler.name,
                pending=len(self._pending),
                function=self.signature.name,
            ) as span:
                index = scheduler.order(self, self._pending)[0]
                self._pending.remove(index)
                skip = (
                    not scheduler.admits_all
                    and self.program is not None
                    and self._satisfies(self.program, self.examples[index])
                )
                span.set(index=index, skipped=skip)
            if skip:
                from .engine.schedule import C_SKIPPED

                C_SKIPPED.value += 1
                self._skipped.append(index)
                step = TdsStep(index, "skipped")
                self.steps.append(step)
                steps.append(step)
                continue
            steps.append(self._admit(index))
        return steps

    def _admit(self, index: int) -> TdsStep:
        """One iteration of Algorithm 1 over the admitted prefix."""
        example = self.examples[index]
        scheduler = self._scheduler()
        self._admitted.append(index)
        with get_tracer().span(
            "tds.example", index=index, function=self.signature.name
        ) as span:
            if self.program is not None and self._satisfies(
                self.program, example
            ):
                step = TdsStep(index, "satisfied")
                self.failures_in_a_row = 0
                self.steps.append(step)
                span.set(action="satisfied")
                scheduler.observe(self, index, step)
                return step
            if self._truncated():
                # The whole-sequence wall already passed: don't touch
                # the engine, record the truncation and move on.
                reason = self._deadline.why_expired() or "deadline"
                self.failures_in_a_row += 1
                step = TdsStep(index, "timeout", timeout_reason=reason)
                self.steps.append(step)
                span.set(action="timeout", timeout_reason=reason)
                scheduler.observe(self, index, step)
                return step
            cap_s = scheduler.iteration_deadline(
                self, index, len(self._pending)
            )
            result = self._dbs_step(
                self._admitted_examples(), iteration_cap_s=cap_s
            )
            branch_budget = (
                count_branches(self.program) + self.failures_in_a_row
            )
            if result.program is not None:
                self.program = result.program
                self.failures_in_a_row = 0
                action = "synthesized"
            else:
                self.failures_in_a_row += 1
                action = "timeout"
            step = TdsStep(
                index,
                action,
                dbs_time=result.stats.elapsed,
                expressions=result.stats.expressions,
                programs_tested=result.stats.programs_tested,
                branch_budget=branch_budget,
                timeout_reason=(
                    result.timeout.reason if result.timeout else None
                ),
            )
            self.steps.append(step)
            self.total_dbs_seconds += step.dbs_time
            span.set(
                action=action,
                dbs_seconds=round(step.dbs_time, 6),
                expressions=step.expressions,
                branch_budget=branch_budget,
            )
            if step.timeout_reason is not None:
                span.set(timeout_reason=step.timeout_reason)
            scheduler.observe(self, index, step)
            return step

    def finalize(self) -> TdsResult:
        """Trailing-failure recovery and the final all-examples check.

        The main loop retries a failed example implicitly when later
        examples arrive; the last examples get the same second chance
        here (``final_retries`` extra DBS calls with the grown branch
        budget). Queued examples are drained first, and the scheduler's
        own wrap-up (deferred-timeout retries, representative
        skipped-example verification) runs before the generic retries."""
        if self._pending:
            self.drain()
        self._scheduler().wrapup(self)
        retries = self.options.final_retries
        while (
            retries > 0
            and self.failures_in_a_row > 0
            and not self._truncated()
            and not self.satisfies_all()
        ):
            retries -= 1
            self._retry_step(len(self.examples) - 1)
        return TdsResult(
            program=self.program,
            success=self.satisfies_all(),
            steps=self.steps,
            elapsed=time.monotonic() - self._started,
            signature=self.signature,
        )

    def _retry_step(self, index: int) -> TdsStep:
        """One uncapped retry DBS over the full admitted prefix."""
        with get_tracer().span(
            "tds.retry", index=index, function=self.signature.name
        ) as span:
            result = self._dbs_step(self._admitted_examples())
            if result.program is not None:
                self.program = result.program
                self.failures_in_a_row = 0
                action = "synthesized"
            else:
                self.failures_in_a_row += 1
                action = "timeout"
            span.set(
                action=action,
                dbs_seconds=round(result.stats.elapsed, 6),
            )
            step = TdsStep(
                index,
                action,
                dbs_time=result.stats.elapsed,
                expressions=result.stats.expressions,
                programs_tested=result.stats.programs_tested,
                timeout_reason=(
                    result.timeout.reason if result.timeout else None
                ),
            )
            self.steps.append(step)
            self.total_dbs_seconds += step.dbs_time
            return step

    # -- helpers -------------------------------------------------------------

    def _scheduler(self):
        """The configured ExampleScheduler, re-resolved when the name
        changes (a cache checkout can swap ``options``)."""
        from .engine.schedule import SCHEDULERS, resolve_schedule

        name = resolve_schedule(self.options.schedule)
        if self._sched is None or self._sched.name != name:
            self._sched = SCHEDULERS.create(name)
        return self._sched

    def _admitted_examples(self) -> List[Example]:
        """The DBS constraint set, in admission order — the example
        list every engine run sees, so the warm pool's columns follow
        admission order and prefix extension stays exact even when the
        scheduler deviated from arrival order."""
        return [self.examples[i] for i in self._admitted]

    def _example_fingerprint(self, index: int) -> str:
        """Content fingerprint of one arrival (memoized) — the key the
        adaptive scheduler's cost/hardness observations live under, so
        they survive suspension and match across requests."""
        fp = self._fps.get(index)
        if fp is None:
            from .engine.keys import example_fingerprints

            fp = example_fingerprints([self.examples[index]])[0]
            self._fps[index] = fp
        return fp

    @property
    def rebuild_cost_s(self) -> float:
        """Estimated cost (seconds) of rebuilding this session's warm
        state from cold — the lifetime sum of its DBS step times. The
        SessionCache evicts the cheapest-to-rebuild session first."""
        return self.total_dbs_seconds

    def satisfies_all(self) -> bool:
        if self.program is None:
            return not self.examples
        return all(self._satisfies(self.program, e) for e in self.examples)

    def current_function(self) -> Optional[SynthesizedFunction]:
        if self.program is None:
            return None
        return SynthesizedFunction(
            self.signature, self.program, self.lasy_fns
        )

    def _satisfies(self, program: Expr, example: Example) -> bool:
        try:
            value = run_program(
                program,
                self.signature.param_names,
                example.args,
                lasy_fns=self.lasy_fns,
                fuel=self.options.dbs.evaluation_fuel,
                max_depth=self.options.dbs.max_recursion_depth,
            )
        except EvaluationError:
            return False
        return value is not ERROR and structurally_equal(value, example.output)

    def _dbs_step(
        self,
        prefix: Sequence[Example],
        iteration_cap_s: Optional[float] = None,
    ) -> DbsResult:
        program = self.program
        options = self.options
        if program is None or not options.use_contexts:
            contexts = [trivial_context(self.dsl)]
        else:
            contexts = contexts_of(program, self.dsl)
            failing = [
                e for e in prefix if not self._satisfies(program, e)
            ]
            if options.prune_unreached:
                contexts = prune_contexts(
                    contexts, program, self.signature, failing
                )
            if options.angelic_pruning:
                from .angelic import angelic_prune

                contexts = angelic_prune(
                    contexts,
                    self.signature,
                    failing,
                    prefix,
                    lasy_fns=self.lasy_fns,
                )
        if program is None or not options.use_subexpressions:
            seeds: List[Expr] = []
        else:
            seeds = subexpressions_of(program)
        max_branches = count_branches(program) + self.failures_in_a_row
        budget = self.budget_factory()
        budget.add_deadline(self._session_deadline())
        if iteration_cap_s is not None:
            # The scheduler's per-iteration wall: composes with the
            # session deadline and the per-DBS budget, tighter wins.
            budget.add_deadline(Deadline.after(iteration_cap_s))
        return dbs(
            contexts=contexts,
            examples=prefix,
            seeds=seeds,
            dsl=self.dsl,
            signature=self.signature,
            max_branches=max_branches,
            budget=budget,
            lasy_fns=self.lasy_fns,
            lasy_signatures=self.lasy_signatures,
            options=options.dbs,
            previous_program=program,
            session=self._engine_session(),
        )

    def _session_deadline(self) -> Optional[Deadline]:
        """The whole-sequence hard wall (TdsOptions.timeout_s) plus the
        session's cancel token, armed by the first DBS call."""
        if not self._deadline_armed:
            self._deadline_armed = True
            seconds = self.options.timeout_s or None
            if seconds is not None or self.cancel is not None:
                self._deadline = Deadline.after(seconds, token=self.cancel)
        return self._deadline

    def _truncated(self) -> bool:
        """True once the session-wide deadline expired (or the session
        was cancelled) — further DBS calls would truncate immediately."""
        deadline = self._session_deadline()
        return deadline is not None and deadline.expired()

    def resume(
        self,
        budget_factory: Optional[BudgetFactory] = None,
        timeout_s: Optional[float] = None,
    ) -> TdsResult:
        """Continue a deadline-truncated session under a new budget.

        The partial component pool built before truncation is still in
        the session's engine, so the re-run DBS calls start warm (see
        docs/robustness.md). ``budget_factory`` replaces the per-DBS
        budget; ``timeout_s`` re-arms the whole-sequence wall (pass
        ``0`` to lift it). Returns the usual :meth:`finalize` result.
        """
        if budget_factory is not None:
            self.budget_factory = budget_factory
        if timeout_s is not None:
            self.options.timeout_s = timeout_s or None
            self._deadline = None
            self._deadline_armed = False
        if not self.satisfies_all():
            self.failures_in_a_row = max(1, self.failures_in_a_row)
        return self.finalize()

    def _engine_session(self) -> Optional["SynthesisSession"]:
        """The session's persistent engine (None when pool reuse is off).

        All iterations share it, so iteration ``i+1``'s DBS starts from
        iteration ``i``'s expression pool, extended by the new example."""
        if not self.options.reuse_pool:
            return None
        if self._engine is None:
            from .engine.session import SynthesisSession

            self._engine = SynthesisSession(
                self.dsl,
                self.signature,
                lasy_fns=self.lasy_fns,
                lasy_signatures=self.lasy_signatures,
            )
        return self._engine

    # -- cache / transport lifecycle --------------------------------------

    def session_key(self) -> "SessionKey":
        """This session's explicit identity (see ``engine.keys``): what
        a :class:`~.engine.cache.SessionCache` stores it under. Includes
        the fingerprint of every example consumed so far — the cache
        serves a later request warm exactly when that request's examples
        extend this prefix."""
        from .engine.keys import session_key_for

        return session_key_for(
            getattr(self.dsl, "name", type(self.dsl).__name__),
            self.signature,
            lasy_fns=self.lasy_fns,
            lasy_names=self.lasy_signatures,
            options=self.options,
            examples=self.examples,
        )

    def rebind_lasy(
        self,
        lasy_fns: MutableMapping,
        lasy_signatures: Optional[Mapping[str, Signature]] = None,
    ) -> None:
        """Attach the session (and its warm engine) to a new run's shared
        LaSy mapping. Each ``run_lasy`` builds a fresh ``lasy_fns`` dict,
        so a cached session must re-point every layer at it; the pool's
        identity snapshot of the old mapping is cleared so the next
        warm run re-checks cached vectors against the new definitions
        (content-equal functions leave the vectors valid, changed ones
        get refreshed by ``refresh_lasy``)."""
        self.lasy_fns = lasy_fns if lasy_fns is not None else {}
        if lasy_signatures is not None:
            self.lasy_signatures = dict(lasy_signatures)
        engine = self._engine
        if engine is not None:
            engine.lasy_fns = self.lasy_fns
            if lasy_signatures is not None:
                engine.lasy_signatures = dict(lasy_signatures)
            if engine.pool is not None:
                engine.pool.lasy_fns = self.lasy_fns
                if lasy_signatures is not None:
                    engine.pool.lasy_signatures = dict(lasy_signatures)
                engine.pool._lasy_versions = {}

    def suspend(self) -> None:
        """Detach per-request references so the session can sit in a
        cache between requests: the cancel token and deadline belong to
        the finished request, and the engine drops its run bindings
        (tracer, stats registry, budget) while keeping the warm pool."""
        self.cancel = None
        self._deadline = None
        self._deadline_armed = False
        self._sched = None
        if self._engine is not None:
            self._engine.suspend()

    def release_workers(self) -> None:
        """Reap shard-enumeration worker processes (folding their trace
        shards into the active trace) without suspending the session:
        the warm pool and enumerator stay live, and a later DBS call
        respawns workers on demand. For sessions that outlive their
        request but are not cache-managed (a CLI run's result keeps
        them for warm resumption)."""
        if self._engine is not None:
            self._engine.close_shard_coordinator()

    def reset_clock(
        self,
        cancel: Optional[CancelToken] = None,
        timeout_s: Optional[float] = None,
    ) -> None:
        """Start a new request on a warm session: re-arm the
        whole-sequence wall (``None`` keeps the configured one, ``0``
        lifts it) and swap the cancel token. The elapsed clock restarts
        so ``finalize().elapsed`` measures this request, not the cached
        session's lifetime."""
        if timeout_s is not None:
            self.options.timeout_s = timeout_s or None
        self.cancel = cancel
        self._deadline = None
        self._deadline_armed = False
        self._started = time.monotonic()

    # -- pickling (the parallel runner and the session cache's journal
    #    ship sessions) ---------------------------------------------------

    def __getstate__(self):
        # Deadlines (monotonic clock) and cancel tokens (locks) cannot
        # cross a process boundary: the transported session re-arms a
        # fresh timeout_s wall on first use. The warm engine (pool +
        # enumerator) travels — its own __getstate__ drops the per-run
        # bindings and identity caches — unless something in it resists
        # pickling (e.g. a DSL built over lambdas), in which case it is
        # dropped and the transported session degrades to a cold
        # rebuild instead of failing the whole dump.
        import pickle

        state = self.__dict__.copy()
        state["_deadline"] = None
        state["_deadline_armed"] = False
        state["cancel"] = None
        state["_sched"] = None  # recreated from options on first use
        # Budget factories are often closures (CLI flags, test lambdas);
        # a cache checkout installs the new request's factory anyway, so
        # an unpicklable one degrades to the default rather than failing
        # the dump.
        try:
            pickle.dumps(state.get("budget_factory"))
        except Exception:
            state["budget_factory"] = default_budget
        engine = state.get("_engine")
        if engine is not None:
            try:
                pickle.dumps(engine)
            except Exception:
                state["_engine"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        # Scheduling state was introduced after sessions started being
        # journaled: a blob from an older cache replays as a plain FIFO
        # session whose whole example list was admitted in order.
        self.__dict__.setdefault("_pending", [])
        self.__dict__.setdefault(
            "_admitted", list(range(len(self.examples)))
        )
        self.__dict__.setdefault("_skipped", [])
        self.__dict__.setdefault("_deferred", [])
        self.__dict__.setdefault("_hard_fingerprints", set())
        self.__dict__.setdefault("_example_costs", {})
        self.__dict__.setdefault("_fps", {})
        self.__dict__.setdefault("_sched", None)
        self.__dict__.setdefault("total_dbs_seconds", 0.0)
        # Re-establish the shared-mapping invariant: session, engine,
        # and pool must alias one lasy_fns dict (pickle preserves the
        # sharing within one dump; this guards hand-built states).
        engine = self._engine
        if engine is not None:
            engine.lasy_fns = self.lasy_fns
            if engine.pool is not None:
                engine.pool.lasy_fns = self.lasy_fns


def tds(
    signature: Signature,
    examples: Sequence[Example],
    dsl: Dsl,
    budget_factory: Optional[BudgetFactory] = None,
    lasy_fns: Optional[MutableMapping] = None,
    lasy_signatures: Optional[Mapping[str, Signature]] = None,
    options: Optional[TdsOptions] = None,
    *,
    session_cache=None,
    cancel: Optional[CancelToken] = None,
) -> TdsResult:
    """Algorithm 1 over a complete example sequence (batch wrapper around
    :class:`TdsSession`).

    With a ``session_cache`` (an ``engine.cache.SessionCache``), a warm
    session holding a prefix of ``examples`` under the same identity key
    is checked out and only the remaining examples are consumed; the
    session is released back afterwards."""
    shared = lasy_fns if lasy_fns is not None else {}
    session: Optional[TdsSession] = None
    matched = 0
    if session_cache is not None:
        from .engine.keys import session_key_for

        base_key = session_key_for(
            getattr(dsl, "name", type(dsl).__name__),
            signature,
            lasy_fns=shared,
            lasy_names=lasy_signatures or {},
            options=options if options is not None else TdsOptions(),
        )
        session, matched = session_cache.acquire(base_key, examples)
        if session is not None:
            session.rebind_lasy(shared, lasy_signatures)
            session.budget_factory = budget_factory or default_budget
            session.options = options if options is not None else TdsOptions()
            session.reset_clock(cancel=cancel)
            if not session.satisfies_all():
                session.failures_in_a_row = max(1, session.failures_in_a_row)
    if session is None:
        session = TdsSession(
            signature,
            dsl,
            budget_factory=budget_factory,
            lasy_fns=shared,
            lasy_signatures=lasy_signatures,
            options=options,
            cancel=cancel,
        )
    for example in list(examples)[matched:]:
        session.feed(example)
    result = session.finalize()
    if session_cache is not None:
        session_cache.release(session)
    return result
