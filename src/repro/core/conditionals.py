"""The conditional synthesis strategy (§5.2).

For every program ``p`` DBS tries, the set of examples it handles,
``T(p)``, is recorded; for every generated boolean guard ``g``, the set
``B(g)`` of examples on which it is true. A cascading conditional
``if g1: p1 elif g2: p2 ... else pq`` solves the task when every example
is routed (by the first true guard) to a branch that handles it. Branch
sets are explored in order of increasing size, so the fewest-branch
solution is found first.

Conditionals below the top level: a program is placed in a bucket for
every context ``f(•)`` obtained by removing a subexpression whose
position admits a conditional in the grammar; the same cascade search
runs per bucket over the removed subtrees, and the resulting ``If`` is
plugged back into the bucket's context.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..obs.trace import get_tracer
from .dsl import ConditionalRule, Dsl
from .expr import Expr, Hole, If, Path, replace_at

ExampleSet = FrozenSet[int]


def guard_nts(dsl: Dsl) -> frozenset:
    """Nonterminal tags whose expressions may serve as branch guards —
    the expansion of every conditional rule's guard nonterminal."""
    names = set()
    for rule in dsl.conditionals:
        names.update(dsl.expansion(rule.guard_nt))
    return frozenset(names)


@dataclass(frozen=True)
class ProgramRecord:
    """A tried program together with T(p)."""

    program: Expr
    passed: ExampleSet


@dataclass(frozen=True)
class GuardRecord:
    """A boolean guard together with B(g). ``errors`` holds examples on
    which the guard crashed; those examples may never be routed through
    this guard (a crashing guard crashes the whole conditional)."""

    guard: Expr
    true_set: ExampleSet
    errors: ExampleSet = frozenset()


# Caps keeping the cover search tractable; the paper relies on the same
# effect implicitly via its timeout.
_MAX_DISTINCT_PROGRAMS = 600
_MAX_DISTINCT_GUARDS = 400
_MAX_SEARCH_NODES = 4_000


@dataclass
class ConditionalStore:
    """Accumulates program and guard records during one DBS run."""

    n_examples: int
    programs: List[ProgramRecord] = field(default_factory=list)
    guards: List[GuardRecord] = field(default_factory=list)
    _program_sets: Dict[ExampleSet, Expr] = field(default_factory=dict)
    _guard_sets: Dict[Tuple[ExampleSet, ExampleSet], Expr] = field(
        default_factory=dict
    )

    def record_program(self, program: Expr, passed: ExampleSet) -> None:
        """Keep the smallest program per distinct T(p); empty T(p) is
        useless for covers and dropped."""
        if not passed:
            return
        existing = self._program_sets.get(passed)
        if existing is not None and existing.size <= program.size:
            return
        if existing is None and len(self._program_sets) >= _MAX_DISTINCT_PROGRAMS:
            return
        self._program_sets[passed] = program
        self.programs = [
            ProgramRecord(expr, s) for s, expr in self._program_sets.items()
        ]

    def record_guard(
        self, guard: Expr, true_set: ExampleSet, errors: ExampleSet = frozenset()
    ) -> None:
        """Keep the smallest guard per distinct (B(g), error-set).

        Degenerate guards (true everywhere or nowhere among non-erroring
        examples) cannot split anything and are dropped."""
        if errors == frozenset(range(self.n_examples)):
            return
        usable = frozenset(range(self.n_examples)) - errors
        if not true_set or true_set == usable:
            return
        key = (true_set, errors)
        existing = self._guard_sets.get(key)
        if existing is not None and existing.size <= guard.size:
            return
        if existing is None and len(self._guard_sets) >= _MAX_DISTINCT_GUARDS:
            return
        self._guard_sets[key] = guard
        self.guards = [
            GuardRecord(expr, s, errs)
            for (s, errs), expr in self._guard_sets.items()
        ]


class _SearchBudget:
    def __init__(self, limit: int):
        self.remaining = limit

    def spend(self) -> bool:
        self.remaining -= 1
        return self.remaining >= 0


def solve_cascade(
    store: ConditionalStore,
    all_examples: ExampleSet,
    max_branches: int,
    nt: str,
    budget=None,
) -> Optional[If]:
    """Find a cascading conditional with the fewest branches (≤
    ``max_branches``) routing every example to a handling branch."""
    if max_branches < 2:
        return None
    # Pre-sort programs by coverage (desc) then size (asc) so greedy-ish
    # exploration finds covers quickly.
    programs = sorted(
        store.programs, key=lambda r: (-len(r.passed), r.program.size)
    )
    union: set = set()
    for record in programs:
        union |= record.passed
    if not all_examples <= union:
        return None  # no Q can cover S
    for depth in range(2, max_branches + 1):
        nodes = _SearchBudget(_MAX_SEARCH_NODES)
        memo: Dict[Tuple[ExampleSet, int], bool] = {}
        result = _solve(
            all_examples, depth, programs, store.guards, memo, nodes, budget
        )
        if result is not None:
            guarded, orelse = result
            if not guarded:
                return None  # a single program covers S; DBS returns it directly
            return If(tuple(guarded), orelse, nt)
    return None


def _solve(
    remaining: ExampleSet,
    branches_left: int,
    programs: Sequence[ProgramRecord],
    guards: Sequence[GuardRecord],
    memo: Dict[Tuple[ExampleSet, int], bool],
    nodes: _SearchBudget,
    budget=None,
) -> Optional[Tuple[List[Tuple[Expr, Expr]], Expr]]:
    """Build (guarded branches, else body) handling ``remaining``."""
    if not nodes.spend():
        return None
    if budget is not None:
        budget.check()  # propagate BudgetExhausted to end the DBS run
    for record in programs:
        if remaining <= record.passed:
            return ([], record.program)
    if branches_left <= 1:
        return None
    key = (remaining, branches_left)
    if memo.get(key) is False:
        return None
    # Candidate splits: guard g sends remaining∩B(g) to a branch that
    # handles all of it; the rest cascades on. Guards that crash on any
    # remaining example are unusable here.
    candidates: List[Tuple[int, GuardRecord, ProgramRecord]] = []
    for guard in guards:
        if guard.errors & remaining:
            continue
        routed = remaining & guard.true_set
        if not routed or routed == remaining:
            continue
        for record in programs:
            if routed <= record.passed:
                candidates.append((len(routed), guard, record))
                break  # programs sorted: first hit is the best branch
    candidates.sort(key=lambda c: -c[0])
    for _, guard, record in candidates:
        routed = remaining & guard.true_set
        rest = remaining - routed
        sub = _solve(
            rest, branches_left - 1, programs, guards, memo, nodes, budget
        )
        if sub is not None:
            guarded, orelse = sub
            return ([(guard.guard, record.program)] + guarded, orelse)
    memo[key] = False
    return None


@dataclass(frozen=True)
class Bucket:
    """A group of programs sharing a context whose hole position admits a
    conditional; ``None`` context means top level."""

    rule: ConditionalRule
    context_root: Optional[Expr]  # program with a Hole, or None for top
    context_path: Path


def bucket_programs(
    store: ConditionalStore,
    dsl: Dsl,
    root_nt: Optional[str] = None,
    max_buckets: int = 200,
) -> Dict[Bucket, List[ProgramRecord]]:
    """Group recorded programs by conditional-position context (§5.2).

    ``root_nt`` is the nonterminal of the search's trivial context (the
    DSL start for a whole-function synthesis, the loop-body nonterminal
    for a §5.3 sub-synthesis)."""
    root_nt = root_nt or dsl.start
    branch_nts = {rule.branch_nt: rule for rule in dsl.conditionals}
    cond_start = [
        rule
        for rule in dsl.conditionals
        if rule.nt in dsl.expansion(root_nt)
        or rule.nt == root_nt
        or root_nt in dsl.expansion(rule.nt)
    ]
    buckets: Dict[Bucket, List[ProgramRecord]] = {}
    if cond_start:
        top = Bucket(cond_start[0], None, ())
        buckets[top] = list(store.programs)
    for record in store.programs:
        for path, node in record.program.walk_with_paths():
            if not path:
                continue  # root handled by the top-level bucket
            rule = branch_nts.get(node.nt)
            if rule is None:
                continue
            try:
                holed = replace_at(record.program, path, Hole(node.nt))
            except ValueError:
                continue  # position cannot hold a hole (loop lambda slots)
            bucket = Bucket(rule, holed, path)
            if bucket not in buckets and len(buckets) >= max_buckets:
                continue
            buckets.setdefault(bucket, []).append(record)
    return buckets


def solve_with_buckets(
    store: ConditionalStore,
    dsl: Dsl,
    all_examples: ExampleSet,
    max_branches: int,
    root_nt: Optional[str] = None,
    budget=None,
) -> Optional[Expr]:
    """Try the cascade search at the top level and inside every context
    bucket; returns a complete program or None."""
    with get_tracer().span(
        "dbs.conditionals",
        max_branches=max_branches,
        programs=len(store.programs),
        guards=len(store.guards),
    ) as span:
        result = _solve_with_buckets(
            store, dsl, all_examples, max_branches, root_nt, budget
        )
        span.set(solved=result is not None)
        return result


def _solve_with_buckets(
    store: ConditionalStore,
    dsl: Dsl,
    all_examples: ExampleSet,
    max_branches: int,
    root_nt: Optional[str] = None,
    budget=None,
) -> Optional[Expr]:
    buckets = bucket_programs(store, dsl, root_nt)
    # Top-level bucket first (path () sorts first), then small contexts.
    ordered = sorted(
        buckets.items(),
        key=lambda kv: (
            kv[0].context_root is not None,
            kv[0].context_root.size if kv[0].context_root else 0,
        ),
    )
    for bucket, records in ordered:
        if len(records) < 2:
            continue
        if bucket.context_root is None:
            sub_store = store
            target = all_examples
            result = solve_cascade(
                sub_store, target, max_branches, bucket.rule.nt, budget
            )
            if result is not None:
                return result
            continue
        # Inside a context: the "programs" are the removed subtrees; a
        # subtree handles the examples its full program handled.
        sub_store = ConditionalStore(store.n_examples)
        from .expr import get_at

        for record in records:
            subtree = get_at(record.program, bucket.context_path)
            sub_store.record_program(subtree, record.passed)
        for guard in store.guards:
            sub_store.record_guard(guard.guard, guard.true_set, guard.errors)
        result = solve_cascade(
            sub_store, all_examples, max_branches, bucket.rule.nt, budget
        )
        if result is not None:
            return replace_at(bucket.context_root, bucket.context_path, result)
    return None
