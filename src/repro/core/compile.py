"""Compilation of expression trees to Python closures.

The evaluator is the synthesizer's only oracle (§5.1): every candidate
is *run*, never analysed, so tree-walking interpretation dominates the
wall-clock of a DBS call. This module removes the interpretive overhead
— the per-node ``isinstance`` dispatch chain, the argument-list
comprehension, the method-call fuel accounting — by compiling each
:class:`~repro.core.expr.Expr` once into a tree of specialized Python
closures that takes the same :class:`~repro.core.evaluator.Env` and
produces bit-identical behaviour:

* **fuel** — one unit is spent on closure entry, exactly where the
  interpreter's ``evaluate`` spends it, so fuel exhaustion trips at the
  same node in the same order;
* **recursion depth** — ``Recurse`` goes through ``Env.recurse_env``,
  which enforces ``max_depth``;
* **errors** — the same exception surface (strict
  :class:`~repro.core.evaluator.EvaluationError` propagation, component
  exceptions wrapped with the component name, ``RecursionError``
  special-cased for eager calls);
* **values** — ``freeze`` + ``check_value_size`` applied at the same
  points (component calls; *not* LaSy calls, which only freeze).

Compiled closures are memoized **by expression identity**: the pool
hash-conses aggressively (entries are reused across generations,
contexts plug new roots over pooled children), so the per-node cache
turns compiling a plugged candidate into one closure allocation for the
root plus cache hits for every child. Identity — not equality — keys
the cache because two structurally equal ``Call`` nodes from *different
DSLs* can carry same-named components with different Python callables
(``Function.__eq__`` compares name and types only).

The interpreter (:func:`repro.core.evaluator.evaluate`) remains the
reference semantics: ``tests/test_compile_differential.py`` checks the
two agree on seeded-random expressions across all four domains, and
``REPRO_EVAL=interp`` (or :func:`set_eval_mode`) switches the hot paths
back to it.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Tuple

from .expr import (
    Call,
    Const,
    Expr,
    Foreach,
    ForLoop,
    Hole,
    If,
    Lambda,
    LasyCall,
    Param,
    Recurse,
    Var,
)
from .values import ERROR, freeze

# Imported late to avoid a cycle (evaluator imports this module lazily).
from .evaluator import (  # noqa: E402  (grouped for readability)
    Env,
    EvaluationError,
    _FOR_LIMIT,
    _FOREACH_LIMIT,
    _MAX_INT_BITS,
    _MAX_STR_LEN,
    check_value_size,
)

CompiledFn = Callable[[Env], Any]

# ---------------------------------------------------------------------
# Memoization.
#
# Keyed by id(expr) with the expression itself stored alongside the
# closure: the strong reference pins the id (no reuse-after-free
# aliasing), and the ``is`` check on lookup makes the cache purely
# identity-based. Bounded: past _CACHE_LIMIT entries the whole cache is
# dropped — recompilation is cheap (one closure per node) and the hot
# expressions repopulate immediately.

_CACHE_LIMIT = 200_000
_cache: Dict[int, Tuple[Expr, CompiledFn]] = {}


def cache_size() -> int:
    """Number of compiled nodes currently memoized (for tests/benches)."""
    return len(_cache)


def clear_cache() -> None:
    """Drop all memoized closures (tests and long-lived processes)."""
    _cache.clear()


def compile_expr(expr: Expr) -> CompiledFn:
    """The compiled form of ``expr``: a closure over ``Env``.

    Safe to call repeatedly; per-node results are memoized by identity.
    """
    entry = _cache.get(id(expr))
    if entry is not None and entry[0] is expr:
        return entry[1]
    if len(_cache) >= _CACHE_LIMIT:
        _cache.clear()
    fn = _compile(expr)
    _cache[id(expr)] = (expr, fn)
    return fn


# ---------------------------------------------------------------------
# Per-node compilers. Every closure begins with the inlined equivalent
# of ``env.fuel.spend()`` — the attribute dance is written out because
# this line runs once per node per evaluation and the method call is
# measurable at that frequency.


def _compile(expr: Expr) -> CompiledFn:
    kind = type(expr)
    if kind is Const:
        return _compile_const(expr)
    if kind is Param:
        return _compile_param(expr)
    if kind is Var:
        return _compile_var(expr)
    if kind is Call:
        return _compile_call(expr)
    if kind is If:
        return _compile_if(expr)
    if kind is Lambda:
        return _compile_lambda(expr)
    if kind is Recurse:
        return _compile_recurse(expr)
    if kind is LasyCall:
        return _compile_lasy_call(expr)
    if kind is Foreach:
        return _compile_foreach(expr)
    if kind is ForLoop:
        return _compile_for(expr)
    if kind is Hole:
        return _compile_hole(expr)

    def run_unknown(env: Env, _name=type(expr).__name__) -> Any:
        fuel = env.fuel
        fuel.remaining -= 1
        if fuel.remaining < 0:
            raise EvaluationError("fuel exhausted")
        raise EvaluationError(f"unknown expression kind {_name}")

    return run_unknown


def _compile_const(expr: Const) -> CompiledFn:
    value = expr.value

    def run(env: Env) -> Any:
        fuel = env.fuel
        fuel.remaining -= 1
        if fuel.remaining < 0:
            raise EvaluationError("fuel exhausted")
        return value

    return run


def _compile_param(expr: Param) -> CompiledFn:
    name = expr.name

    def run(env: Env) -> Any:
        fuel = env.fuel
        fuel.remaining -= 1
        if fuel.remaining < 0:
            raise EvaluationError("fuel exhausted")
        try:
            return env.params[name]
        except KeyError as exc:
            raise EvaluationError(f"unbound parameter {name}") from exc

    return run


def _compile_var(expr: Var) -> CompiledFn:
    name = expr.name

    def run(env: Env) -> Any:
        fuel = env.fuel
        fuel.remaining -= 1
        if fuel.remaining < 0:
            raise EvaluationError("fuel exhausted")
        try:
            return env.vars[name]
        except KeyError as exc:
            raise EvaluationError(f"unbound variable {name}") from exc

    return run


def _compile_call(expr: Call) -> CompiledFn:
    func = expr.func
    fn = func.fn
    fname = func.name
    arg_fns = tuple(compile_expr(a) for a in expr.args)

    if func.lazy:

        def run_lazy(env: Env) -> Any:
            fuel = env.fuel
            fuel.remaining -= 1
            if fuel.remaining < 0:
                raise EvaluationError("fuel exhausted")
            thunks = [lambda a=a: a(env) for a in arg_fns]
            try:
                return check_value_size(freeze(fn(*thunks)))
            except EvaluationError:
                raise
            except Exception as exc:
                raise EvaluationError(f"{fname}: {exc}") from exc

        return run_lazy

    # Eager calls: arity-specialized so the common 1- and 2-argument
    # components skip the tuple build and the *args unpacking cost.
    # Each variant inlines the scalar fast path of
    # ``check_value_size(freeze(value))``: for exact int/str results
    # freeze is the identity and the size check is one comparison, so
    # the two function calls per node collapse to an attribute test
    # (bool has class bool, not int, and still takes the generic path).
    if len(arg_fns) == 0:

        def run0(env: Env) -> Any:
            fuel = env.fuel
            fuel.remaining -= 1
            if fuel.remaining < 0:
                raise EvaluationError("fuel exhausted")
            try:
                value = fn()
                cls = value.__class__
                if cls is int:
                    if value.bit_length() > _MAX_INT_BITS:
                        raise EvaluationError("integer value too large")
                    return value
                if cls is str:
                    if len(value) > _MAX_STR_LEN:
                        raise EvaluationError("string value too large")
                    return value
                return check_value_size(freeze(value))
            except EvaluationError:
                raise
            except RecursionError as exc:
                raise EvaluationError(f"{fname}: recursion") from exc
            except Exception as exc:
                raise EvaluationError(f"{fname}: {exc}") from exc

        return run0

    if len(arg_fns) == 1:
        a0 = arg_fns[0]

        def run1(env: Env) -> Any:
            fuel = env.fuel
            fuel.remaining -= 1
            if fuel.remaining < 0:
                raise EvaluationError("fuel exhausted")
            v0 = a0(env)
            try:
                value = fn(v0)
                cls = value.__class__
                if cls is int:
                    if value.bit_length() > _MAX_INT_BITS:
                        raise EvaluationError("integer value too large")
                    return value
                if cls is str:
                    if len(value) > _MAX_STR_LEN:
                        raise EvaluationError("string value too large")
                    return value
                return check_value_size(freeze(value))
            except EvaluationError:
                raise
            except RecursionError as exc:
                raise EvaluationError(f"{fname}: recursion") from exc
            except Exception as exc:
                raise EvaluationError(f"{fname}: {exc}") from exc

        return run1

    if len(arg_fns) == 2:
        a0, a1 = arg_fns

        def run2(env: Env) -> Any:
            fuel = env.fuel
            fuel.remaining -= 1
            if fuel.remaining < 0:
                raise EvaluationError("fuel exhausted")
            v0 = a0(env)
            v1 = a1(env)
            try:
                value = fn(v0, v1)
                cls = value.__class__
                if cls is int:
                    if value.bit_length() > _MAX_INT_BITS:
                        raise EvaluationError("integer value too large")
                    return value
                if cls is str:
                    if len(value) > _MAX_STR_LEN:
                        raise EvaluationError("string value too large")
                    return value
                return check_value_size(freeze(value))
            except EvaluationError:
                raise
            except RecursionError as exc:
                raise EvaluationError(f"{fname}: recursion") from exc
            except Exception as exc:
                raise EvaluationError(f"{fname}: {exc}") from exc

        return run2

    if len(arg_fns) == 3:
        a0, a1, a2 = arg_fns

        def run3(env: Env) -> Any:
            fuel = env.fuel
            fuel.remaining -= 1
            if fuel.remaining < 0:
                raise EvaluationError("fuel exhausted")
            v0 = a0(env)
            v1 = a1(env)
            v2 = a2(env)
            try:
                value = fn(v0, v1, v2)
                cls = value.__class__
                if cls is int:
                    if value.bit_length() > _MAX_INT_BITS:
                        raise EvaluationError("integer value too large")
                    return value
                if cls is str:
                    if len(value) > _MAX_STR_LEN:
                        raise EvaluationError("string value too large")
                    return value
                return check_value_size(freeze(value))
            except EvaluationError:
                raise
            except RecursionError as exc:
                raise EvaluationError(f"{fname}: recursion") from exc
            except Exception as exc:
                raise EvaluationError(f"{fname}: {exc}") from exc

        return run3

    def run_n(env: Env) -> Any:
        fuel = env.fuel
        fuel.remaining -= 1
        if fuel.remaining < 0:
            raise EvaluationError("fuel exhausted")
        args = [a(env) for a in arg_fns]
        try:
            value = fn(*args)
            cls = value.__class__
            if cls is int:
                if value.bit_length() > _MAX_INT_BITS:
                    raise EvaluationError("integer value too large")
                return value
            if cls is str:
                if len(value) > _MAX_STR_LEN:
                    raise EvaluationError("string value too large")
                return value
            return check_value_size(freeze(value))
        except EvaluationError:
            raise
        except RecursionError as exc:
            raise EvaluationError(f"{fname}: recursion") from exc
        except Exception as exc:
            raise EvaluationError(f"{fname}: {exc}") from exc

    return run_n


def _compile_if(expr: If) -> CompiledFn:
    branches = tuple(
        (compile_expr(guard), compile_expr(body))
        for guard, body in expr.branches
    )
    orelse = compile_expr(expr.orelse)

    def run(env: Env) -> Any:
        fuel = env.fuel
        fuel.remaining -= 1
        if fuel.remaining < 0:
            raise EvaluationError("fuel exhausted")
        for guard, body in branches:
            test = guard(env)
            if not isinstance(test, bool):
                raise EvaluationError("conditional guard is not boolean")
            if test:
                return body(env)
        return orelse(env)

    return run


def _make_closure(
    names: Tuple[str, ...], body: CompiledFn, env: Env
) -> Callable[..., Any]:
    """The compiled counterpart of ``evaluator._close_over``."""
    n = len(names)

    def closure(*values: Any) -> Any:
        if len(values) != n:
            raise EvaluationError(
                f"lambda expects {n} args, got {len(values)}"
            )
        return body(env.with_vars(dict(zip(names, values))))

    return closure


def _compile_lambda(expr: Lambda) -> CompiledFn:
    names = tuple(p.name for p in expr.params)
    body = compile_expr(expr.body)

    def run(env: Env) -> Any:
        fuel = env.fuel
        fuel.remaining -= 1
        if fuel.remaining < 0:
            raise EvaluationError("fuel exhausted")
        return _make_closure(names, body, env)

    return run


def _compile_recurse(expr: Recurse) -> CompiledFn:
    arg_fns = tuple(compile_expr(a) for a in expr.args)
    n_args = len(arg_fns)

    def run(env: Env) -> Any:
        fuel = env.fuel
        fuel.remaining -= 1
        if fuel.remaining < 0:
            raise EvaluationError("fuel exhausted")
        if n_args != len(env.recursion_params):
            raise EvaluationError("recursive call arity mismatch")
        args = [a(env) for a in arg_fns]
        params = dict(zip(env.recursion_params, args))
        if all(
            freeze(params[name]) == freeze(env.params.get(name))
            for name in env.recursion_params
        ):
            raise EvaluationError("recursive call with unchanged arguments")
        if env.recursion_oracle is not None:
            return env.recursion_oracle(tuple(freeze(a) for a in args))
        if env.recursion_program is None:
            raise EvaluationError("recursive call outside a recursive binding")
        return compile_expr(env.recursion_program)(env.recurse_env(params))

    return run


def _compile_lasy_call(expr: LasyCall) -> CompiledFn:
    func_name = expr.func_name
    arg_fns = tuple(compile_expr(a) for a in expr.args)

    def run(env: Env) -> Any:
        fuel = env.fuel
        fuel.remaining -= 1
        if fuel.remaining < 0:
            raise EvaluationError("fuel exhausted")
        fn = env.lasy_fns.get(func_name)
        if fn is None:
            raise EvaluationError(f"unknown LaSy function {func_name}")
        args = [a(env) for a in arg_fns]
        try:
            return freeze(fn(*args))
        except EvaluationError:
            raise
        except Exception as exc:
            raise EvaluationError(f"{func_name}: {exc}") from exc

    return run


def _compile_foreach(expr: Foreach) -> CompiledFn:
    source = compile_expr(expr.source)
    body = compile_expr(expr.body.body)
    names = tuple(p.name for p in expr.body.params)
    reverse = expr.reverse

    def run(env: Env) -> Any:
        fuel = env.fuel
        fuel.remaining -= 1
        if fuel.remaining < 0:
            raise EvaluationError("fuel exhausted")
        src = source(env)
        if not isinstance(src, (tuple, list, str)):
            raise EvaluationError("foreach source is not a sequence")
        items = list(src)
        if reverse:
            items.reverse()
        if len(items) > _FOREACH_LIMIT:
            raise EvaluationError("foreach source too large")
        closure = _make_closure(names, body, env)
        acc: list = []
        for i, current in enumerate(items):
            acc.append(closure(i, current, tuple(acc)))
        return tuple(acc)

    return run


def _compile_for(expr: ForLoop) -> CompiledFn:
    bound_fn = compile_expr(expr.bound)
    init_fn = compile_expr(expr.init)
    body = compile_expr(expr.body.body)
    names = tuple(p.name for p in expr.body.params)
    start = expr.start

    def run(env: Env) -> Any:
        fuel = env.fuel
        fuel.remaining -= 1
        if fuel.remaining < 0:
            raise EvaluationError("fuel exhausted")
        bound = bound_fn(env)
        if not isinstance(bound, int) or isinstance(bound, bool):
            raise EvaluationError("for-loop bound is not an integer")
        if bound - start + 1 > _FOR_LIMIT:
            raise EvaluationError("for-loop bound too large")
        acc = init_fn(env)
        closure = _make_closure(names, body, env)
        for i in range(start, bound + 1):
            acc = closure(i, acc)
        return acc

    return run


def _compile_hole(expr: Hole) -> CompiledFn:
    def run(env: Env) -> Any:
        fuel = env.fuel
        fuel.remaining -= 1
        if fuel.remaining < 0:
            raise EvaluationError("fuel exhausted")
        raise EvaluationError("cannot evaluate a context hole")

    return run


# ---------------------------------------------------------------------
# Batched value-vector application (the enumerator's batched mode).
#
# One closure per *component*, applied column-wise over the cached child
# value vectors — no Expr, no Env, no fuel, exactly the semantics of the
# enumerator's per-candidate fast path (``Enumerator._apply_values``):
# an ERROR argument makes an ERROR column, results pass through
# ``check_value_size(freeze(...))``, and any exception — including
# EvaluationError — is observed as ERROR rather than raised. The int/str
# fast path of the size check is inlined as in the eager-call compilers
# above (oversized scalars become ERROR here, not an exception, because
# the reference path catches the EvaluationError the check raises).
#
# Memoized by component identity, mirroring the expression cache:
# same-named components from different DSL instances may wrap different
# Python callables, so the ``Function`` object (pinned by the strong
# reference) keys the cache, not its name.

BatchFn = Callable[..., Tuple[Any, ...]]

_batch_cache: Dict[int, Tuple[Any, BatchFn]] = {}
_lasy_batch_cache: Dict[int, Tuple[Any, BatchFn]] = {}


def clear_batch_cache() -> None:
    """Drop memoized batch appliers (tests and long-lived processes)."""
    _batch_cache.clear()
    _lasy_batch_cache.clear()


def compile_batch(func) -> Optional[BatchFn]:
    """Column-wise applier for an eager component, or None for lazy
    components (their arguments must be thunks evaluated under an Env,
    which a value vector cannot provide — the enumerator falls back to
    the classic path for those productions)."""
    if func.lazy:
        return None
    entry = _batch_cache.get(id(func))
    if entry is not None and entry[0] is func:
        return entry[1]
    if len(_batch_cache) >= _CACHE_LIMIT:
        _batch_cache.clear()
    run = _compile_batch(func.fn, len(func.param_types))
    _batch_cache[id(func)] = (func, run)
    return run


def compile_lasy_batch(fn) -> BatchFn:
    """Column-wise applier for a bound LaSy callee (the enumerator's
    ``_apply_lasy_values`` semantics). Keyed by callable identity: the
    LaSy runner rebinds functions between runs, and a rebound callee
    must get a fresh closure."""
    entry = _lasy_batch_cache.get(id(fn))
    if entry is not None and entry[0] is fn:
        return entry[1]
    if len(_lasy_batch_cache) >= _CACHE_LIMIT:
        _lasy_batch_cache.clear()
    run = _compile_batch(fn, -1)
    _lasy_batch_cache[id(fn)] = (fn, run)
    return run


def _compile_batch(fn, arity: int) -> BatchFn:
    if arity == 1:

        def run1(v0) -> Tuple[Any, ...]:
            out = []
            append = out.append
            for a0 in v0:
                if a0 is ERROR:
                    append(ERROR)
                    continue
                try:
                    value = fn(a0)
                    cls = value.__class__
                    if cls is int:
                        append(
                            ERROR
                            if value.bit_length() > _MAX_INT_BITS
                            else value
                        )
                    elif cls is str:
                        append(
                            ERROR if len(value) > _MAX_STR_LEN else value
                        )
                    else:
                        append(check_value_size(freeze(value)))
                except Exception:
                    append(ERROR)
            return tuple(out)

        return run1

    if arity == 2:

        def run2(v0, v1) -> Tuple[Any, ...]:
            out = []
            append = out.append
            for a0, a1 in zip(v0, v1):
                if a0 is ERROR or a1 is ERROR:
                    append(ERROR)
                    continue
                try:
                    value = fn(a0, a1)
                    cls = value.__class__
                    if cls is int:
                        append(
                            ERROR
                            if value.bit_length() > _MAX_INT_BITS
                            else value
                        )
                    elif cls is str:
                        append(
                            ERROR if len(value) > _MAX_STR_LEN else value
                        )
                    else:
                        append(check_value_size(freeze(value)))
                except Exception:
                    append(ERROR)
            return tuple(out)

        return run2

    def run_n(*vectors) -> Tuple[Any, ...]:
        out = []
        append = out.append
        for args in zip(*vectors):
            if any(a is ERROR for a in args):
                append(ERROR)
                continue
            try:
                append(check_value_size(freeze(fn(*args))))
            except Exception:
                append(ERROR)
        return tuple(out)

    return run_n
