"""Component-based expression generation (§5.1).

The pool maintains, per grammar nonterminal, the set of semantically
distinct expressions generated so far. Each ``advance()`` runs one
iteration of Algorithm 2's "generate new expressions" step: every
production is instantiated with every valid combination of existing
expressions *in which at least one argument is from the newest
generation*, so all smaller expressions are produced before larger ones
and no combination is rebuilt.

Two deduplication layers (the paper's "Optimizations"):

* syntactic — expressions are canonicalized by the DSL's rewrite rules
  and constant folding, and duplicates discarded;
* semantic — an expression is fingerprinted by the vector of values it
  takes on the example inputs; only the first expression per fingerprint
  is kept. Expressions containing recursive self-calls are exempt (their
  value depends on the whole program). Expressions with free lambda
  variables — exempted outright by the paper — are fingerprinted under a
  few sampled variable bindings instead, a heuristic equivalence that
  keeps the pool tractable on a slow host evaluator (see DESIGN.md).

Performance: every closed, non-recursive pool entry caches its *value
vector* (its result per example). New expressions are then evaluated in
O(1) component applications — one call per example on the cached child
values — rather than by re-interpreting the whole tree. Errors are
values (:data:`~repro.core.values.ERROR`) and propagate strictly, which
matches the evaluator's eager semantics.

When ``use_dsl`` is off (the "no DSL" ablation of §6.3, and the
sketch-like baseline) the grammar is ignored and argument slots accept
any expression of a compatible *type*, exactly the weaker search the
paper compares against.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from ..obs.metrics import Registry
from ..obs.trace import get_tracer
from .budget import Budget
from .dsl import Dsl, Example, LambdaSpec, NtRef, Production, Signature
from .evaluator import (
    Env,
    EvaluationError,
    Fuel,
    check_value_size,
    expression_runner,
)
from .expr import (
    Call,
    Const,
    Expr,
    Lambda,
    LasyCall,
    Param,
    Recurse,
    Var,
    free_vars,
    is_recursive,
)
from .rewrite import Rewriter
from .types import Type, types_compatible
from .values import ERROR, freeze, signature_key

# Fuel for one component evaluation during signature computation.
_SIGNATURE_FUEL = 30_000

# Expressions larger than this are never pooled; a safety valve against
# pathological growth (the paper's programs top out ~20 lines).
_MAX_EXPR_SIZE = 60


def _production_label(prod: Production) -> str:
    """Stable human-readable production tag for spans and reports."""
    if prod.kind == "lasy_fn":
        return f"{prod.nt}<-_LASY_FN"
    if prod.kind == "recurse":
        return f"{prod.nt}<-_RECURSE"
    name = prod.func.name if prod.func is not None else prod.kind
    return f"{prod.nt}<-{name}"


def lambda_nt(spec: LambdaSpec) -> str:
    """The synthetic nonterminal tag for inline lambda arguments."""
    vars_part = ",".join(spec.var_names)
    return f"lambda({vars_part}:{spec.body_nt})"


@dataclass
class PoolEntry:
    expr: Expr
    generation: int
    # Cached result per example for closed, non-recursive expressions;
    # None when the expression's value depends on context (free lambda
    # variables, recursion, lambdas).
    values: Optional[Tuple[Any, ...]] = None


@dataclass
class PoolOptions:
    """Feature switches, used by the §6.3 ablation experiments."""

    use_dsl: bool = True
    semantic_dedup: bool = True
    signature_fuel: int = _SIGNATURE_FUEL
    max_expr_size: int = _MAX_EXPR_SIZE
    # Expressions with free lambda variables evade both the value-vector
    # fast path and the admission filters, so their corner of the pool is
    # additionally bounded: a size cap and a per-nonterminal count cap
    # (generation order means the small, useful bodies arrive first).
    max_var_expr_size: int = 16
    max_var_exprs_per_nt: int = 1200


class ComponentPool:
    """The evolving set of candidate expressions for one DBS run."""

    def __init__(
        self,
        dsl: Dsl,
        signature: Signature,
        examples: Sequence[Example],
        seeds: Iterable[Expr] = (),
        lasy_fns: Optional[Mapping[str, Any]] = None,
        lasy_signatures: Optional[Mapping[str, Signature]] = None,
        options: Optional[PoolOptions] = None,
        budget: Optional[Budget] = None,
        metrics: Optional[Registry] = None,
    ):
        self.dsl = dsl
        self.signature = signature
        self.examples = list(examples)
        self.options = options or PoolOptions()
        self.budget = budget or Budget()
        self.lasy_fns = dict(lasy_fns or {})
        self.lasy_signatures = dict(lasy_signatures or {})
        self.rewriter = Rewriter(dsl)
        self.generation = 0
        self.exhausted = False

        # Pool metrics (see docs/observability.md). Scalar totals are
        # always live (plain attribute bumps); labeled per-nonterminal /
        # per-size breakdowns only when the registry runs detailed.
        self.metrics = metrics if metrics is not None else Registry()
        self._detailed = self.metrics.detailed
        self._c_offered = self.metrics.counter("dbs.pool.offered")
        self._c_added = self.metrics.counter("dbs.pool.added")
        self._c_syntactic = self.metrics.counter("dbs.pool.dedup.syntactic")
        self._c_semantic = self.metrics.counter("dbs.pool.dedup.semantic")
        self._c_rejected = self.metrics.counter("dbs.pool.rejected")
        self._c_rewrites = self.metrics.counter("dbs.rewrite.canonicalized")
        self._c_vector_evals = self.metrics.counter("dbs.eval.vector_evals")
        self._c_applies = self.metrics.counter("dbs.eval.component_applies")

        self._entries: Dict[str, List[PoolEntry]] = {}
        self._by_type: Dict[Type, List[PoolEntry]] = {}
        self._seen_syntactic: set = set()
        self._seen_semantic: Dict[str, set] = {}
        self._var_counts: Dict[str, int] = {}
        self._constants = dict(dsl.constants_for(self.examples))
        self._lambda_specs = self._collect_lambda_specs()

        self._seed_atoms(seeds)

    # -- queries ---------------------------------------------------------

    def expressions(self, nt: str) -> List[Expr]:
        """All pooled expressions usable where ``nt`` is expected,
        following unit productions and single-branch conditionals."""
        if nt in self.dsl.nonterminals:
            names = self.dsl.expansion(nt)
        else:
            names = (nt,)
        out: List[Expr] = []
        for name in names:
            out.extend(entry.expr for entry in self._entries.get(name, []))
        return out

    def expressions_of_type(self, ty: Type) -> List[Expr]:
        out: List[Expr] = []
        for pool_ty, entries in self._by_type.items():
            if types_compatible(ty, pool_ty):
                out.extend(entry.expr for entry in entries)
        return out

    def compatible_with_hole(self, hole_nt: str, hole_type: Type) -> List[Expr]:
        """Expressions that may fill a context hole.

        With the DSL on, the hole's nonterminal must match (§5.1: the
        grammar, not just types, decides what to build); with the DSL off,
        any type-compatible expression qualifies.
        """
        if self.options.use_dsl:
            return self.expressions(hole_nt)
        return self.expressions_of_type(hole_type)

    def total(self) -> int:
        return sum(len(v) for v in self._entries.values())

    def all_expressions(self) -> List[Expr]:
        """Every pooled expression, across all nonterminals."""
        out: List[Expr] = []
        for entries in self._entries.values():
            out.extend(entry.expr for entry in entries)
        return out

    # -- construction ------------------------------------------------------

    def _collect_lambda_specs(self) -> List[LambdaSpec]:
        specs: List[LambdaSpec] = []
        for prod in self.dsl.productions:
            for arg in prod.args:
                if isinstance(arg, LambdaSpec) and arg not in specs:
                    specs.append(arg)
        return specs

    def _seed_atoms(self, seeds: Iterable[Expr]) -> None:
        if self.options.use_dsl:
            for prod in self.dsl.productions:
                if prod.kind == "param":
                    self._add_params(prod.nt)
                elif prod.kind == "constant":
                    self._add_constants(prod.nt)
                elif prod.kind == "var":
                    self._add_var(prod.nt, prod.var_name or "")
                elif prod.kind == "call" and prod.func and not prod.args:
                    self._offer(Call(prod.func, (), prod.nt))
        else:
            self._seed_atoms_untyped()
        for seed in seeds:
            self._offer(seed)

    def _seed_atoms_untyped(self) -> None:
        """Type-only atoms for the no-DSL mode: every param, every
        constant, every lambda variable, tagged with pseudo-nonterminals."""
        for name, ty in self.signature.params:
            self._offer(Param(name, ty, self._type_nt(ty)))
        for values in self._constants.values():
            for value in values:
                ty = _value_type(value, self.dsl)
                self._offer(Const(value, ty, self._type_nt(ty)))
        for vname, vty in self.dsl.lambda_vars.items():
            self._offer(Var(vname, vty, self._type_nt(vty)))
        for prod in self.dsl.productions:
            if prod.kind == "call" and prod.func and not prod.args:
                func = prod.func
                self._offer(Call(func, (), self._type_nt(func.return_type)))

    @staticmethod
    def _type_nt(ty: Type) -> str:
        return f"τ:{ty}"

    def _add_params(self, nt: str) -> None:
        nt_type = self.dsl.type_of(nt)
        for name, ty in self.signature.params:
            if types_compatible(nt_type, ty):
                self._offer(Param(name, ty, nt))

    def _add_constants(self, nt: str) -> None:
        nt_type = self.dsl.type_of(nt)
        for value in self._constants.get(nt, ()):
            self._offer(Const(value, nt_type, nt))

    def _add_var(self, nt: str, var_name: str) -> None:
        vty = self.dsl.lambda_vars.get(var_name)
        if vty is None:
            return
        self._offer(Var(var_name, vty, nt))

    # -- generation --------------------------------------------------------

    def advance(self) -> List[Expr]:
        """Run one generation of expression composition; returns the new
        (deduplicated) expressions added this generation.

        On budget exhaustion the partial generation is returned (and
        ``exhausted`` set) so DBS can still test what was built before
        reporting TIMEOUT."""
        added: List[Expr] = []
        for batch in self.advance_batches():
            added.extend(batch)
        return added

    def advance_batches(self) -> Iterable[List[Expr]]:
        """Like :func:`advance` but yields per-production batches, so the
        caller can test candidates as soon as their production finishes
        rather than after the whole (possibly enormous) generation."""
        from .budget import BudgetExhausted

        self.generation += 1
        if self.budget.exhausted():
            self.exhausted = True
            return
        self.exhausted = False
        tracer = get_tracer()
        try:
            if self.options.use_dsl:
                # Cheapest productions first: a huge production must not
                # starve the small ones (and the solution is more often
                # within reach of a small production's fresh combos).
                ordered = sorted(
                    (
                        prod
                        for prod in self.dsl.productions
                        if (
                            prod.kind == "lasy_fn"
                            or (prod.kind in ("call", "recurse") and prod.args)
                        )
                    ),
                    key=self._production_cost,
                )
                for prod in ordered:
                    if tracer.enabled:
                        batch = self._expand_traced(prod, tracer)
                    else:
                        batch = self._expand(prod)
                    if batch:
                        yield batch
            else:
                batch = self._expand_untyped()
                if batch:
                    yield batch
        except BudgetExhausted:
            self.exhausted = True

    def _expand(self, prod: Production) -> List[Expr]:
        if prod.kind == "lasy_fn":
            return self._expand_lasy(prod)
        return self._expand_production(prod)

    def _expand_traced(self, prod: Production, tracer) -> List[Expr]:
        """One production under a ``dbs.enumerate`` span. The ``offered``
        count is attached even when the budget dies mid-expansion, so the
        report's expression attribution stays complete."""
        with tracer.span(
            "dbs.enumerate",
            generation=self.generation,
            production=_production_label(prod),
        ) as span:
            before = self.budget.expressions
            batch: List[Expr] = []
            try:
                batch = self._expand(prod)
            finally:
                span.set(
                    offered=self.budget.expressions - before,
                    added=len(batch),
                )
            return batch

    def _production_cost(self, prod: Production) -> int:
        """Estimated combination count for this production this
        generation (product of slot pool sizes)."""
        cost = 1
        for arg in prod.args:
            if isinstance(arg, NtRef):
                size = sum(
                    len(self._entries.get(name, ()))
                    for name in self.dsl.expansion(arg.nt)
                )
            elif isinstance(arg, LambdaSpec):
                size = len(self._entries.get(arg.body_nt, ()))
            else:
                size = 1
            cost *= max(size, 1)
            if cost > 10**12:
                break
        return cost

    def _expand_production(self, prod: Production) -> List[Expr]:
        slot_candidates = [self._arg_candidates(arg) for arg in prod.args]
        if any(not c for c in slot_candidates):
            return []
        added: List[Expr] = []
        fast_path = (
            prod.kind == "call"
            and prod.func is not None
            and not prod.func.lazy
            and not any(isinstance(a, LambdaSpec) for a in prod.args)
        )
        for combo in self._fresh_combinations(slot_candidates):
            if prod.kind == "call":
                assert prod.func is not None
                expr: Optional[Expr] = Call(
                    prod.func, tuple(e.expr for e in combo), prod.nt
                )
                values = (
                    self._apply_values(prod.func, combo) if fast_path else None
                )
            else:  # recurse
                expr = self._build_recurse(prod, combo)
                values = None
            if expr is None:
                continue
            result = self._offer(expr, values)
            if result is not None:
                added.append(result)
        return added

    def _apply_values(
        self, func, combo: Sequence[PoolEntry]
    ) -> Optional[Tuple[Any, ...]]:
        """Value vector of ``func`` applied to cached child vectors, or
        None when some child has no cached vector."""
        child_vectors = []
        for entry in combo:
            if entry.values is None:
                return None
            child_vectors.append(entry.values)
        out: List[Any] = []
        self._c_applies.value += len(self.examples)
        for i in range(len(self.examples)):
            args = [vec[i] for vec in child_vectors]
            if any(a is ERROR for a in args):
                out.append(ERROR)
                continue
            try:
                out.append(check_value_size(freeze(func.fn(*args))))
            except Exception:
                out.append(ERROR)
        return tuple(out)

    def _build_recurse(
        self, prod: Production, combo: Sequence[PoolEntry]
    ) -> Optional[Expr]:
        expected = self.signature.param_types
        arg_types = tuple(
            self.dsl.type_of(a.nt) for a in prod.args if isinstance(a, NtRef)
        )
        if len(arg_types) != len(expected) or not all(
            types_compatible(e, a) for e, a in zip(expected, arg_types)
        ):
            return None
        return Recurse(tuple(e.expr for e in combo), prod.nt)

    def _expand_untyped(self) -> List[Expr]:
        added: List[Expr] = []
        for func in self.dsl.functions():
            slots: List[List[PoolEntry]] = []
            feasible = True
            has_lambda = False
            for pty in func.param_types:
                if pty.is_function:
                    has_lambda = True
                    candidates = self._lambda_candidates(pty)
                else:
                    candidates = [
                        entry
                        for t, entries in self._by_type.items()
                        if types_compatible(pty, t)
                        for entry in entries
                    ]
                if not candidates:
                    feasible = False
                    break
                slots.append(candidates)
            if not feasible:
                continue
            fast_path = not func.lazy and not has_lambda
            for combo in self._fresh_combinations(slots):
                nt = self._type_nt(func.return_type)
                expr = Call(func, tuple(e.expr for e in combo), nt)
                values = self._apply_values(func, combo) if fast_path else None
                result = self._offer(expr, values)
                if result is not None:
                    added.append(result)
        return added

    def _lambda_candidates(self, fun_type: Type) -> List[PoolEntry]:
        """In no-DSL mode, wrap pooled bodies in lambdas matching a
        function-typed parameter, using the grammar's lambda variables."""
        out: List[PoolEntry] = []
        for spec in self._lambda_specs:
            body_ty = self.dsl.type_of(spec.body_nt)
            from .types import fun_n

            if fun_n(spec.var_types, body_ty) != fun_type:
                continue
            params = tuple(
                Var(n, t, self._type_nt(t))
                for n, t in zip(spec.var_names, spec.var_types)
            )
            for entry in self._by_type.get(body_ty, []):
                lam = Lambda(params, entry.expr, lambda_nt(spec))
                out.append(PoolEntry(lam, entry.generation))
        return out

    def _arg_candidates(self, arg: Any) -> List[PoolEntry]:
        if isinstance(arg, NtRef):
            out: List[PoolEntry] = []
            for name in self.dsl.expansion(arg.nt):
                out.extend(self._entries.get(name, []))
            return out
        if isinstance(arg, LambdaSpec):
            params = tuple(
                Var(n, t, self._type_nt(t))
                for n, t in zip(arg.var_names, arg.var_types)
            )
            nt = lambda_nt(arg)
            names = set(arg.var_names)
            out = []
            for body_nt in self.dsl.expansion(arg.body_nt):
                for entry in self._entries.get(body_nt, []):
                    if arg.require_var_use and not (
                        free_vars(entry.expr) & names
                    ):
                        continue
                    out.append(
                        PoolEntry(
                            Lambda(params, entry.expr, nt), entry.generation
                        )
                    )
            return out
        raise TypeError(f"unknown arg spec {arg!r}")

    def _fresh_combinations(
        self, slots: List[List[PoolEntry]]
    ) -> Iterable[Tuple[PoolEntry, ...]]:
        """All slot combinations containing at least one expression from
        the newest complete generation (``self.generation - 1``), without
        duplicates: slot ``j`` carries the newest element, earlier slots
        are strictly older, later slots are anything."""
        newest = self.generation - 1
        for j in range(len(slots)):
            older = [
                [e for e in slot if e.generation < newest]
                for slot in slots[:j]
            ]
            fresh = [e for e in slots[j] if e.generation == newest]
            anything = [
                [e for e in slot if e.generation <= newest]
                for slot in slots[j + 1:]
            ]
            if not fresh or any(not s for s in older) or any(
                not s for s in anything
            ):
                continue
            yield from itertools.product(*older, fresh, *anything)

    def _expand_lasy(self, prod: Production) -> List[Expr]:
        nt_type = self.dsl.type_of(prod.nt)
        arg_nts = [a.nt for a in prod.args if isinstance(a, NtRef)]
        added: List[Expr] = []
        for name, sig in self.lasy_signatures.items():
            if name == self.signature.name:
                continue  # self-calls are _RECURSE, not _LASY_FN
            if not types_compatible(nt_type, sig.return_type):
                continue
            if len(sig.params) != len(arg_nts):
                continue
            if not all(
                types_compatible(pty, self.dsl.type_of(a_nt))
                for (_, pty), a_nt in zip(sig.params, arg_nts)
            ):
                continue
            fn = self.lasy_fns.get(name)
            slots = [self._arg_candidates(NtRef(a_nt)) for a_nt in arg_nts]
            if any(not s for s in slots):
                continue
            for combo in self._fresh_combinations(slots):
                expr = LasyCall(name, tuple(e.expr for e in combo), prod.nt)
                values = None
                if fn is not None and all(
                    e.values is not None for e in combo
                ):
                    values = self._apply_lasy_values(fn, combo)
                result = self._offer(expr, values)
                if result is not None:
                    added.append(result)
        return added

    def _apply_lasy_values(
        self, fn, combo: Sequence[PoolEntry]
    ) -> Tuple[Any, ...]:
        out: List[Any] = []
        self._c_applies.value += len(self.examples)
        for i in range(len(self.examples)):
            args = [e.values[i] for e in combo]  # type: ignore[index]
            if any(a is ERROR for a in args):
                out.append(ERROR)
                continue
            try:
                out.append(check_value_size(freeze(fn(*args))))
            except Exception:
                out.append(ERROR)
        return tuple(out)

    def offer_external(self, expr: Expr) -> Optional[Expr]:
        """Admit an externally-built expression (composition-strategy
        candidates) so later generations can compose over it."""
        try:
            return self._offer(expr)
        except Exception:
            return None

    # -- dedup / admission ---------------------------------------------------

    def _offer(
        self, expr: Expr, values: Optional[Tuple[Any, ...]] = None
    ) -> Optional[Expr]:
        """Canonicalize, deduplicate, and admit an expression. Returns the
        admitted (canonical) expression, or None if it was a duplicate."""
        self.budget.charge_expression()
        self._c_offered.value += 1
        if expr.size > self.options.max_expr_size:
            self._c_rejected.value += 1
            if self._detailed:
                self._c_rejected.label(reason="size", nt=expr.nt)
            return None
        if not _recursion_shape_ok(expr):
            self._c_rejected.value += 1
            if self._detailed:
                self._c_rejected.label(reason="recursion_shape", nt=expr.nt)
            return None
        expr_vars = free_vars(expr)
        if expr_vars:
            if expr.size > self.options.max_var_expr_size:
                self._c_rejected.value += 1
                if self._detailed:
                    self._c_rejected.label(reason="var_size", nt=expr.nt)
                return None
            if (
                self._var_counts.get(expr.nt, 0)
                >= self.options.max_var_exprs_per_nt
            ):
                self._c_rejected.value += 1
                if self._detailed:
                    self._c_rejected.label(reason="var_cap", nt=expr.nt)
                return None
        # Children come from the pool and are already canonical, so only
        # the root needs rewriting; rewrites are semantics-preserving, so
        # any computed value vector remains valid.
        canonical = self.rewriter.canonicalize_root(expr)
        if canonical is not expr:
            self._c_rewrites.value += 1
            if self._detailed:
                self._c_rewrites.label(nt=expr.nt)
            expr = canonical
        key = (expr.nt, expr)
        if key in self._seen_syntactic:
            self._c_syntactic.value += 1
            if self._detailed:
                self._c_syntactic.label(nt=expr.nt)
            return None
        self._seen_syntactic.add(key)
        if values is None and self._closed_evaluable(expr):
            values = self._evaluate_vector(expr)
        if values is not None:
            predicate = self.dsl.admission_filters.get(expr.nt)
            if predicate is not None and not predicate(values, self.examples):
                self._c_rejected.value += 1
                if self._detailed:
                    self._c_rejected.label(reason="filter", nt=expr.nt)
                return None
        if self.options.semantic_dedup:
            sig = self._semantic_signature(expr, values)
            if sig is not None:
                seen = self._seen_semantic.setdefault(expr.nt, set())
                if sig in seen:
                    self._c_semantic.value += 1
                    if self._detailed:
                        self._c_semantic.label(nt=expr.nt)
                    return None
                seen.add(sig)
        entry = PoolEntry(expr, self.generation, values)
        if expr_vars:
            self._var_counts[expr.nt] = self._var_counts.get(expr.nt, 0) + 1
        self._c_added.value += 1
        if self._detailed:
            self._c_added.label(nt=expr.nt, size=expr.size)
        self._entries.setdefault(expr.nt, []).append(entry)
        if not isinstance(expr, Lambda):
            ty = self._expr_type(expr)
            if ty is not None:
                self._by_type.setdefault(ty, []).append(entry)
        return expr

    def _closed_evaluable(self, expr: Expr) -> bool:
        return (
            bool(self.examples)
            and not isinstance(expr, Lambda)
            and not is_recursive(expr)
            and not free_vars(expr)
        )

    def _evaluate_vector(self, expr: Expr) -> Optional[Tuple[Any, ...]]:
        """Full-evaluation fallback for seeds and lambda-bearing calls.

        The expression is compiled once and the closure run per example
        (see repro.core.compile); on the interpreter mode this degrades
        to plain ``evaluate`` calls."""
        names = self.signature.param_names
        out: List[Any] = []
        self._c_vector_evals.value += len(self.examples)
        runner = expression_runner(expr)
        for example in self.examples:
            env = Env(
                params=dict(zip(names, example.args)),
                lasy_fns=self.lasy_fns,
                fuel=Fuel(self.options.signature_fuel),
            )
            try:
                value = runner(env)
            except EvaluationError:
                value = ERROR
            if callable(value):
                return None
            out.append(value)
        return tuple(out)

    def _expr_type(self, expr: Expr) -> Optional[Type]:
        if isinstance(expr, (Param, Const, Var)):
            return expr.type
        if isinstance(expr, Call):
            return expr.func.return_type
        if isinstance(expr, Recurse):
            return self.signature.return_type
        if isinstance(expr, LasyCall):
            sig = self.lasy_signatures.get(expr.func_name)
            return sig.return_type if sig else None
        if expr.nt in self.dsl.nonterminals:
            return self.dsl.type_of(expr.nt)
        return None

    # -- semantic fingerprints -------------------------------------------

    # Sample bindings used to fingerprint expressions with free lambda
    # variables (see module docstring).
    _VAR_SAMPLES = {
        "int": (0, 1, 2),
        "str": ("", "b a", "xy"),
        "bool": (False, True),
        "char": ("a", " "),
    }

    def _var_sample_values(self, ty: Type) -> Tuple[Any, ...]:
        """Sample bindings for a lambda variable: canned primitives plus
        values of the right shape harvested from the examples (e.g. the
        child elements of an XML input for a node-typed loop variable).
        Returns () when no credible sample exists — the caller must then
        skip semantic dedup rather than collapse everything."""
        harvested = self._harvest_samples(ty)
        canned = self._VAR_SAMPLES.get(ty.name, ())
        if ty.is_list and not harvested:
            return ((),)
        out = list(harvested) + [s for s in canned if s not in harvested]
        return tuple(out[:3])

    def _harvest_samples(self, ty: Type) -> List[Any]:
        cache = getattr(self, "_sample_cache", None)
        if cache is None:
            cache = {}
            self._sample_cache = cache
        if ty in cache:
            return cache[ty]
        found: List[Any] = []

        def consider(value: Any, depth: int) -> None:
            if len(found) >= 3:
                return
            if _matches_type(value, ty) and value not in found:
                found.append(value)
            if depth <= 0:
                return
            if isinstance(value, tuple):
                for item in value[:4]:
                    consider(item, depth - 1)
            elif hasattr(value, "elements"):
                for item in value.elements()[:4]:
                    consider(item, depth - 1)

        for example in self.examples:
            for value in list(example.args) + [example.output]:
                consider(value, 2)
        cache[ty] = found
        return found

    def _sample_bindings(self, names_types) -> List[Dict[str, Any]]:
        combos: List[Dict[str, Any]] = [{}]
        for name, ty in names_types:
            samples = self._var_sample_values(ty)
            combos = [
                {**combo, name: sample}
                for combo in combos
                for sample in samples
            ]
            if len(combos) > 27:
                combos = combos[:27]
        return combos

    def _free_var_types(self, expr: Expr) -> Optional[List[Tuple[str, Type]]]:
        names = sorted(free_vars(expr))
        out: List[Tuple[str, Type]] = []
        for name in names:
            ty = self.dsl.lambda_vars.get(name)
            if ty is None:
                return None
            out.append((name, ty))
        return out

    def _semantic_signature(
        self, expr: Expr, values: Optional[Tuple[Any, ...]]
    ) -> Optional[Tuple]:
        """The fingerprint driving semantic dedup, or None when exempt."""
        if is_recursive(expr):
            return None
        if not self.examples:
            return None
        adapter = self.dsl.signature_adapters.get(expr.nt)
        if values is not None:
            out = []
            for value, example in zip(values, self.examples):
                if adapter is not None and value is not ERROR:
                    try:
                        value = adapter(value, example)
                    except Exception:
                        value = ERROR
                out.append(value)
            try:
                return signature_key(out)
            except TypeError:
                return None
        return self._sampled_signature(expr, adapter)

    def _sampled_signature(self, expr: Expr, adapter) -> Optional[Tuple]:
        """Fingerprint for expressions with free lambda variables (or
        lambdas): evaluate under sampled bindings."""
        target = expr
        binder_vars: List[Tuple[str, Type]] = []
        if isinstance(expr, Lambda):
            target = expr.body
            binder_vars = [(p.name, p.type) for p in expr.params]
            if adapter is None:
                adapter = self.dsl.signature_adapters.get(target.nt)
        var_types = self._free_var_types(target)
        if var_types is None:
            return None
        if any(not self._var_sample_values(ty) for _, ty in var_types):
            return None  # no credible samples: skip dedup, keep the expr
        bindings = self._sample_bindings(var_types)
        values = []
        names = self.signature.param_names
        runner = expression_runner(target)
        for example in self.examples:
            for binding in bindings:
                env = Env(
                    params=dict(zip(names, example.args)),
                    vars=dict(binding),
                    lasy_fns=self.lasy_fns,
                    fuel=Fuel(self.options.signature_fuel),
                )
                try:
                    value = runner(env)
                    if adapter is not None:
                        value = adapter(value, example)
                except EvaluationError:
                    value = ERROR
                except Exception:
                    value = ERROR
                if callable(value):
                    return None
                values.append(value)
        if binder_vars:
            values.append(("λ", tuple(str(t) for _, t in binder_vars)))
        # Two expressions over *different* variables are never the same
        # component even when the sampled bindings coincide (a two-lambda
        # production needs bodies for each of its variables).
        values.append(("vars", tuple(name for name, _ in var_types)))
        try:
            return signature_key(values)
        except TypeError:
            return None


def _value_type(value: Any, dsl: Dsl) -> Type:
    """Best-effort runtime type of a constant (for the no-DSL mode)."""
    from .types import BOOL, INT, STRING, Type as _Type, list_of

    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, str):
        return STRING
    if isinstance(value, tuple):
        if value and isinstance(value[0], str):
            return list_of(STRING)
        if value and isinstance(value[0], int):
            return list_of(INT)
        return list_of(_Type("any"))
    type_name = type(value).__name__.lower()
    for ty in dsl.nonterminals.values():
        if ty.name == type_name:
            return ty
    return _Type("any")


def _recursion_shape_ok(expr: Expr) -> bool:
    """Structural sanity for recursive expressions: at most two self-calls,
    no nested self-calls, and every self-call must mention a parameter or
    variable (a constant-argument self-call either diverges or is a
    constant). These exemptions keep the un-deduplicated recursive corner
    of the pool from exploding."""
    recurse_nodes = [n for n in expr.walk() if isinstance(n, Recurse)]
    if not recurse_nodes:
        return True
    if len(recurse_nodes) > 2:
        return False
    for node in recurse_nodes:
        inner = [
            d
            for arg in node.args
            for d in arg.walk()
            if isinstance(d, Recurse)
        ]
        if inner:
            return False
        mentions_input = any(
            isinstance(d, (Param, Var))
            for arg in node.args
            for d in arg.walk()
        )
        if not mentions_input:
            return False
    return True


def _matches_type(value: Any, ty: Type) -> bool:
    """Shallow runtime type check used when harvesting var samples."""
    if ty.name == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if ty.name in ("str", "char"):
        return isinstance(value, str)
    if ty.name == "bool":
        return isinstance(value, bool)
    if ty.is_list:
        return isinstance(value, tuple) and all(
            _matches_type(v, ty.element_type()) for v in value[:3]
        )
    if ty.name == "xml":
        return hasattr(value, "elements") and hasattr(value, "tag")
    if ty.name == "table":
        return isinstance(value, tuple)
    return False
