"""Component-based expression generation (§5.1) — compatibility facade.

The implementation moved into the layered engine package:

* :mod:`repro.core.engine.pool` — :class:`~repro.core.engine.pool.PoolStore`,
  the signature-indexed, hash-consed storage layer (dedup, value-vector
  caching, admission filters, and cross-run ``extend_examples``);
* :mod:`repro.core.engine.enumerator` —
  :class:`~repro.core.engine.enumerator.Enumerator`, the grammar-driven
  generation logic (Algorithm 2's "generate new expressions" step).

:class:`ComponentPool` is the historical single-object view over both:
one constructor that builds a store, attaches an enumerator, and seeds
the atoms — exactly the old behavior. Existing callers (tests,
baselines, composition strategies) keep working unchanged; new code
should use the engine layers directly, which is what DBS itself does via
:class:`~repro.core.engine.session.SynthesisSession`.
"""

from __future__ import annotations

from typing import Any, Iterable, Mapping, Optional, Sequence

from ..obs.metrics import Registry
from .budget import Budget
from .dsl import Dsl, Example, Signature
from .engine.enumerator import Enumerator, _production_label, lambda_nt
from .engine.pool import (
    PoolEntry,
    PoolOptions,
    PoolStore,
    _matches_type,
    _recursion_shape_ok,
    _value_type,
)
from .expr import Expr

__all__ = [
    "ComponentPool",
    "PoolEntry",
    "PoolOptions",
    "lambda_nt",
]


class ComponentPool:
    """The evolving set of candidate expressions for one DBS run.

    A thin facade binding a :class:`PoolStore` and an
    :class:`Enumerator` together under the pre-engine interface; all
    storage attributes and queries delegate to the store.
    """

    def __init__(
        self,
        dsl: Dsl,
        signature: Signature,
        examples: Sequence[Example],
        seeds: Iterable[Expr] = (),
        lasy_fns: Optional[Mapping[str, Any]] = None,
        lasy_signatures: Optional[Mapping[str, Signature]] = None,
        options: Optional[PoolOptions] = None,
        budget: Optional[Budget] = None,
        metrics: Optional[Registry] = None,
    ):
        # The old pool copied lasy_fns; keep that (the live-mapping
        # behavior belongs to SynthesisSession, which owns refresh).
        store = PoolStore(
            dsl,
            signature,
            examples,
            lasy_fns=dict(lasy_fns or {}),
            lasy_signatures=lasy_signatures,
            options=options,
            budget=budget,
            metrics=metrics,
        )
        self.__dict__["store"] = store
        self.__dict__["enumerator"] = Enumerator(store)
        self.enumerator.seed(seeds)

    # Everything not defined here lives on the store — including the
    # public queries (expressions, total, all_expressions, iter_entries,
    # compatible_with_hole, offer, offer_external, ...) and the private
    # state some tests poke at (_entries, _seen_syntactic, ...).
    def __getattr__(self, name: str):
        store = self.__dict__.get("store")
        if store is None:  # mid-unpickle; nothing to delegate to yet
            raise AttributeError(name)
        return getattr(store, name)

    def __setattr__(self, name: str, value) -> None:
        if name in ("store", "enumerator"):
            self.__dict__[name] = value
        else:
            setattr(self.__dict__["store"], name, value)

    # -- generation (the enumerator's half of the old interface) --------

    def advance(self):
        """Generate the next expression generation (Algorithm 2 §5.1);
        returns the newly admitted expressions."""
        return self.enumerator.advance()

    def advance_batches(self):
        """Like :meth:`advance`, yielding per-production batches of newly
        admitted expressions as they are produced."""
        return self.enumerator.advance_batches()

    # Pre-engine spelling used by a few tests and baselines.
    def _offer(self, expr: Expr, values=None) -> Optional[Expr]:
        return self.store.offer(expr, values=values)
