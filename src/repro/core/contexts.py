"""Contexts and subexpressions from the previous program (§4.2).

A context is the previous program with exactly one subexpression removed
(replaced by a hole); "each context represents a hypothesis about which
part of the program is correct and correspondingly that the expression
removed is overspecialized". Contexts are extracted from the whole
program *and from each branch body* of a top-level conditional, so new
conditional structures can be rebuilt out of parts of existing branches.

Contexts whose hole sits inside a conditional branch not executed by any
failing example are pruned: "modifications elsewhere could not possibly
affect whether such examples are handled correctly."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from .dsl import Dsl, Example, Signature
from .evaluator import Env, EvaluationError, Fuel, evaluate
from .expr import Expr, Hole, If, Lambda, Path, Var, get_at, replace_at
from .types import Type


@dataclass(frozen=True)
class Context:
    """A program with one hole. ``root`` contains exactly one
    :class:`Hole` node, at ``path``."""

    root: Expr
    path: Path
    hole_nt: str
    hole_type: Type

    def plug(self, expr: Expr) -> Expr:
        """Fill the hole with ``expr``."""
        return replace_at(self.root, self.path, expr)

    @property
    def is_trivial(self) -> bool:
        """Whether this is the • context (the hole is the whole program)."""
        return not self.path

    def __str__(self) -> str:
        return str(self.root)


def trivial_context(dsl: Dsl) -> Context:
    """The context ``•`` — replace the entire program."""
    start = dsl.start
    return Context(
        root=Hole(start), path=(), hole_nt=start, hole_type=dsl.type_of(start)
    )


def hole_type(dsl: Dsl, node: Expr) -> Type:
    """The type a hole replacing ``node`` would have — the nonterminal's
    declared type, or the type a pseudo-nonterminal tag encodes."""
    if node.nt in dsl.nonterminals:
        return dsl.type_of(node.nt)
    # Pseudo-nonterminals (no-DSL mode) encode the type after 'τ:'.
    from .types import parse_type

    if node.nt.startswith("τ:"):
        return parse_type(node.nt[2:])
    return Type("any")


# Backward-compatible alias (pre-engine callers).
_hole_type = hole_type


def _removable(node: Expr, parent: Optional[Expr]) -> bool:
    """Whether a subexpression is a sensible removal point.

    Lambda parameter declarations are not expressions; the bound-variable
    occurrences inside the body are (they are ``var`` components). The
    lambda slot of a loop node cannot hold a hole (the node requires a
    lambda there), so the removal point moves into the lambda's body.
    """
    from .expr import Foreach, ForLoop

    if isinstance(node, Hole):
        return False
    if isinstance(node, Lambda) and isinstance(parent, (Foreach, ForLoop)):
        return False
    return True


def contexts_of(program: Expr, dsl: Dsl) -> List[Context]:
    """All single-hole contexts of ``program`` (Algorithm 1, lines 9-15):
    the trivial context, one context per subexpression of the program, and
    one per subexpression of each top-level branch body."""
    contexts: List[Context] = [trivial_context(dsl)]
    seen: Set[Tuple[Expr, Path]] = set()
    roots: List[Expr] = [program]
    if isinstance(program, If):
        roots.extend(program.bodies())
    for root in roots:
        for path, node in root.walk_with_paths():
            parent = get_at(root, path[:-1]) if path else None
            if not _removable(node, parent):
                continue
            holed = replace_at(root, path, Hole(node.nt))
            key = (holed, path)
            if key in seen:
                continue
            seen.add(key)
            contexts.append(
                Context(
                    root=holed,
                    path=path,
                    hole_nt=node.nt,
                    hole_type=_hole_type(dsl, node),
                )
            )
    return contexts


def subexpressions_of(program: Expr) -> List[Expr]:
    """All distinct subexpressions of the previous program, to be added to
    the component set (Algorithm 1, line 12)."""
    seen: Set[Expr] = set()
    out: List[Expr] = []
    for node in program.walk():
        if isinstance(node, Hole):
            continue
        if node in seen:
            continue
        seen.add(node)
        out.append(node)
    return out


def branch_taken(
    program: Expr,
    signature: Signature,
    example: Example,
    fuel: int = 30_000,
) -> Optional[int]:
    """Which top-level branch an example executes (0-based; the else
    branch is the last index). None when the program has no top-level
    conditional or a guard crashes."""
    if not isinstance(program, If):
        return None
    env = Env(
        params=dict(zip(signature.param_names, example.args)),
        recursion_program=program,
        recursion_params=signature.param_names,
        fuel=Fuel(fuel),
    )
    for index, (guard, _) in enumerate(program.branches):
        try:
            test = evaluate(guard, env)
        except EvaluationError:
            return None
        if test is True:
            return index
    return len(program.branches)


def prune_contexts(
    contexts: Sequence[Context],
    program: Expr,
    signature: Signature,
    failing_examples: Iterable[Example],
) -> List[Context]:
    """Drop contexts whose hole lies in a branch body no failing example
    reaches. Guard positions and the trivial context are always kept
    (changing a guard can reroute examples)."""
    if not isinstance(program, If):
        return list(contexts)
    taken: Set[int] = set()
    any_failures = False
    for example in failing_examples:
        any_failures = True
        which = branch_taken(program, signature, example)
        if which is None:
            return list(contexts)  # cannot attribute: keep everything
        taken.add(which)
    if not any_failures:
        return list(contexts)
    # Child layout of If: [g0, b0, g1, b1, ..., else]; body k sits at
    # child index 2k+1, the else body at the last index.
    n_branches = len(program.branches)
    kept: List[Context] = []
    for ctx in contexts:
        if ctx.is_trivial or ctx.root != _holed_matches(program, ctx):
            kept.append(ctx)
            continue
        first = ctx.path[0]
        if first == 2 * n_branches:  # else body subtree
            body_index = n_branches
        elif first % 2 == 1:  # a guarded body subtree
            body_index = first // 2
        else:  # a guard subtree: keep
            kept.append(ctx)
            continue
        if body_index in taken:
            kept.append(ctx)
    return kept


def _holed_matches(program: Expr, ctx: Context) -> Expr:
    """The holed version of ``program`` at the context's path, used to
    distinguish whole-program contexts from per-branch contexts (which
    have a different root and are never pruned by branch reachability)."""
    try:
        node = get_at(program, ctx.path)
    except (IndexError, ValueError):
        return ctx.root  # treat as matching; conservative
    return replace_at(program, ctx.path, Hole(node.nt))
