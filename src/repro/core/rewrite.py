"""Syntactic canonicalization: rewrite rules and constant folding (§5.1).

"All expressions constructed are rewritten into canonical forms according
to the rewrite rules in the DSL and duplicates are discarded." The paper
requires the rule set to be acyclic once commutativity-style cycles are
broken. We enforce termination *constructively*:

* a rule whose right-hand side is structurally smaller for every binding
  is ``shrinking`` and always applied;
* any other rule (including commutativity swaps such as
  ``&&(p0, p1) ==> &&(p1, p0)``) is ``guarded``: it is applied only when
  the rewritten expression is strictly smaller under a total order
  (size, then print string), which both breaks the commutativity cycle
  and guarantees the whole system terminates;
* a rule that can only grow its input is rejected when the DSL is built.

Constant folding evaluates calls whose arguments are all literals, so
``2*5`` and ``5+5`` canonicalize to the same component ``10``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple, Union

from .dsl import Dsl, DslError
from .evaluator import Env, EvaluationError, evaluate
from .expr import Call, Const, Expr, Function, Lambda


# ---------------------------------------------------------------------
# Patterns


@dataclass(frozen=True)
class PVar:
    """A pattern variable; matches any subexpression, consistently."""

    name: str


@dataclass(frozen=True)
class PConst:
    """Matches a literal constant with this exact value."""

    value: Any


@dataclass(frozen=True)
class PCall:
    """Matches a call to the named function with matching arguments."""

    func_name: str
    args: Tuple["Pattern", ...]


Pattern = Union[PVar, PConst, PCall]


def match(pattern: Pattern, expr: Expr) -> Optional[Dict[str, Expr]]:
    """Match ``expr`` against ``pattern``; same variable must bind equal."""
    bindings: Dict[str, Expr] = {}
    if _match_into(pattern, expr, bindings):
        return bindings
    return None


def _match_into(pattern: Pattern, expr: Expr, bindings: Dict[str, Expr]) -> bool:
    if isinstance(pattern, PVar):
        bound = bindings.get(pattern.name)
        if bound is None:
            bindings[pattern.name] = expr
            return True
        return bound == expr
    if isinstance(pattern, PConst):
        return isinstance(expr, Const) and expr.value == pattern.value
    if isinstance(pattern, PCall):
        if not isinstance(expr, Call) or expr.func.name != pattern.func_name:
            return False
        if len(expr.args) != len(pattern.args):
            return False
        return all(
            _match_into(p, a, bindings)
            for p, a in zip(pattern.args, expr.args)
        )
    raise TypeError(f"not a pattern: {pattern!r}")


# ---------------------------------------------------------------------
# Rules


@dataclass(frozen=True)
class RewriteRule:
    """``lhs ==> rhs``. Functions needed to build the RHS are resolved
    from the rule's own LHS match or the DSL's registry at apply time."""

    lhs: Pattern
    rhs: Pattern

    def __str__(self) -> str:
        return f"rewrite {_pattern_str(self.lhs)} ==> {_pattern_str(self.rhs)}"


def _pattern_str(pattern: Pattern) -> str:
    if isinstance(pattern, PVar):
        return pattern.name
    if isinstance(pattern, PConst):
        return repr(pattern.value)
    return (
        f"{pattern.func_name}("
        + ", ".join(_pattern_str(a) for a in pattern.args)
        + ")"
    )


def _structural_nodes(pattern: Pattern) -> int:
    if isinstance(pattern, PCall):
        return 1 + sum(_structural_nodes(a) for a in pattern.args)
    if isinstance(pattern, PConst):
        return 1
    return 0


def _var_counts(pattern: Pattern) -> Dict[str, int]:
    counts: Dict[str, int] = {}
    stack: List[Pattern] = [pattern]
    while stack:
        node = stack.pop()
        if isinstance(node, PVar):
            counts[node.name] = counts.get(node.name, 0) + 1
        elif isinstance(node, PCall):
            stack.extend(node.args)
    return counts


def classify_rule(rule: RewriteRule) -> str:
    """``shrinking`` (always applicable) or ``guarded`` (order-decreasing).

    Raises :class:`DslError` for rules that can only grow expressions,
    which would make the rewrite system cyclic.
    """
    lhs_vars = _var_counts(rule.lhs)
    rhs_vars = _var_counts(rule.rhs)
    for name, count in rhs_vars.items():
        if name not in lhs_vars:
            raise DslError(f"{rule}: unbound variable {name!r} on the right")
    lhs_nodes = _structural_nodes(rule.lhs)
    rhs_nodes = _structural_nodes(rule.rhs)
    vars_shrink = all(
        rhs_vars.get(name, 0) <= count for name, count in lhs_vars.items()
    )
    if vars_shrink and rhs_nodes < lhs_nodes:
        return "shrinking"
    vars_grow = all(
        rhs_vars.get(name, 0) >= count for name, count in lhs_vars.items()
    )
    if rhs_nodes > lhs_nodes and vars_grow:
        raise DslError(f"{rule}: right side can only grow expressions")
    return "guarded"


def order_key(expr: Expr) -> Tuple[int, str]:
    """The total order used to break commutativity cycles."""
    return (expr.size, str(expr))


class RewriteCycleError(RuntimeError):
    """Canonicalization failed to reach a fixpoint within the pass cap."""


_MAX_PASSES = 50

# canonicalize_root memo bound; cleared wholesale on overflow (entries
# are cheap to recompute, eviction bookkeeping is not).
_ROOT_CACHE_LIMIT = 100_000


class Rewriter:
    """Applies a DSL's rewrite rules and constant folding to fixpoint."""

    def __init__(self, dsl: Dsl):
        self.dsl = dsl
        self.rules: List[Tuple[RewriteRule, str]] = [
            (rule, classify_rule(rule)) for rule in dsl.rewrites
        ]
        # Rule application scans every rule per candidate; most rules
        # are rooted at a specific function and can only ever match a
        # Call to that function, so precompute the root name (None for
        # PVar/PConst-rooted rules, which must always be tried). The
        # declaration-order scan below is preserved — non-matching
        # roots are skipped, which match() would have rejected anyway.
        self._indexed_rules: List[Tuple[RewriteRule, str, Optional[str]]] = [
            (
                rule,
                kind,
                rule.lhs.func_name if isinstance(rule.lhs, PCall) else None,
            )
            for rule, kind in self.rules
        ]
        self._functions: Dict[str, Function] = {
            fn.name: fn for fn in dsl.functions()
        }
        self._nt_of_function: Dict[str, str] = {}
        for prod in dsl.productions:
            if prod.kind == "call" and prod.func is not None:
                self._nt_of_function.setdefault(prod.func.name, prod.nt)
        # canonicalize_root memo. Keying on the Expr itself is safe:
        # hash-consed nodes cache their hash, and the cache lives on a
        # per-DSL Rewriter, so same-named functions from another DSL
        # can never alias in here.
        self._root_cache: Dict[Expr, Expr] = {}

    # -- public --------------------------------------------------------

    def canonicalize(self, expr: Expr) -> Expr:
        """The canonical form of ``expr``; raises on runaway systems."""
        current = expr
        for _ in range(_MAX_PASSES):
            rewritten = self._rewrite_pass(current)
            if rewritten == current:
                return current
            current = rewritten
        raise RewriteCycleError(
            f"rewrite rules of DSL {self.dsl.name!r} did not converge "
            f"on {expr}"
        )

    def canonicalize_root(self, expr: Expr) -> Expr:
        """Root-only canonicalization for pool admission.

        Pool children are already canonical, so rule application and
        constant folding at the root suffice; the root may need several
        rounds when one rewrite exposes another redex. A root rewrite
        that replaces the node by a (still canonical) child is covered by
        the loop. This is the hot path of §5.1's syntactic dedup, so
        results are memoized: composition re-offers structurally
        identical candidates every generation, and the hash-consed node
        hash makes the lookup O(1).
        """
        cached = self._root_cache.get(expr)
        if cached is not None:
            return cached
        current = expr
        for _ in range(_MAX_PASSES):
            rewritten = self._fold_constants(self._apply_rules(current))
            if rewritten == current:
                if len(self._root_cache) >= _ROOT_CACHE_LIMIT:
                    self._root_cache.clear()
                self._root_cache[expr] = current
                return current
            current = rewritten
        raise RewriteCycleError(
            f"rewrite rules of DSL {self.dsl.name!r} did not converge "
            f"on {expr}"
        )

    # -- internals -----------------------------------------------------

    def _rewrite_pass(self, expr: Expr) -> Expr:
        children = expr.children()
        if children:
            new_children = tuple(self._rewrite_pass(c) for c in children)
            if new_children != children:
                expr = expr.with_children(new_children)
        expr = self._apply_rules(expr)
        expr = self._fold_constants(expr)
        return expr

    def _apply_rules(self, expr: Expr) -> Expr:
        changed = True
        guard = 0
        while changed:
            changed = False
            guard += 1
            if guard > _MAX_PASSES:
                raise RewriteCycleError(
                    f"rule application loop on {expr} in {self.dsl.name!r}"
                )
            root_name = expr.func.name if type(expr) is Call else None
            for rule, kind, lhs_root in self._indexed_rules:
                if lhs_root is not None and lhs_root != root_name:
                    continue
                bindings = match(rule.lhs, expr)
                if bindings is None:
                    continue
                candidate = self._instantiate(rule.rhs, bindings, expr)
                if candidate == expr:
                    continue
                if kind == "guarded" and order_key(candidate) >= order_key(expr):
                    continue
                expr = candidate
                root_name = expr.func.name if type(expr) is Call else None
                changed = True
        return expr

    def _instantiate(
        self, pattern: Pattern, bindings: Dict[str, Expr], original: Expr
    ) -> Expr:
        if isinstance(pattern, PVar):
            return bindings[pattern.name]
        if isinstance(pattern, PConst):
            nt = original.nt
            ty = self.dsl.type_of(nt) if nt in self.dsl.nonterminals else None
            if ty is None:
                raise DslError(f"cannot type constant {pattern.value!r}")
            return Const(pattern.value, ty, nt)
        func = self._functions.get(pattern.func_name)
        if func is None:
            raise DslError(
                f"rewrite rule references unknown function "
                f"{pattern.func_name!r}"
            )
        nt = self._nt_of_function.get(pattern.func_name, original.nt)
        args = tuple(
            self._instantiate(a, bindings, original) for a in pattern.args
        )
        return Call(func, args, nt)

    def _fold_constants(self, expr: Expr) -> Expr:
        if not isinstance(expr, Call) or expr.func.lazy:
            return expr
        if not all(isinstance(a, Const) for a in expr.args):
            return expr
        try:
            env = Env(params={})
            value = evaluate(expr, env)
        except EvaluationError:
            return expr
        if not _foldable_value(value):
            return expr
        return Const(value, expr.func.return_type, expr.nt)


def _foldable_value(value: Any) -> bool:
    """Only fold to hashable plain data (never closures)."""
    if callable(value):
        return False
    try:
        hash(value)
    except TypeError:
        return False
    return True


def check_acyclic(dsl: Dsl) -> None:
    """Validate a DSL's rewrite system at build time (used by DslBuilder)."""
    for rule in dsl.rewrites:
        classify_rule(rule)


# ---------------------------------------------------------------------
# Textual rule parsing (used by the DSL definition language)


class RuleParseError(ValueError):
    """A textual rewrite rule could not be parsed."""


def parse_rule(text: str, function_names: Iterable[str]) -> RewriteRule:
    """Parse ``lhs ==> rhs`` where identifiers not naming functions are
    pattern variables and bare integers/strings are literal constants.

    >>> rule = parse_rule('Trim(Trim(f0)) ==> f0', ['Trim'])
    >>> classify_rule(rule)
    'shrinking'
    """
    if "==>" not in text:
        raise RuleParseError(f"missing '==>' in rule: {text!r}")
    lhs_text, rhs_text = text.split("==>", 1)
    names = set(function_names)
    lhs = _parse_pattern(lhs_text.strip(), names)
    rhs = _parse_pattern(rhs_text.strip(), names)
    return RewriteRule(lhs, rhs)


def _parse_pattern(text: str, function_names: set) -> Pattern:
    pattern, pos = _parse_pattern_at(text, 0, function_names)
    if text[pos:].strip():
        raise RuleParseError(f"trailing characters in pattern {text!r}")
    return pattern


def _parse_pattern_at(
    text: str, pos: int, function_names: set
) -> Tuple[Pattern, int]:
    while pos < len(text) and text[pos].isspace():
        pos += 1
    if pos >= len(text):
        raise RuleParseError(f"unexpected end of pattern in {text!r}")
    ch = text[pos]
    if ch == '"':
        end = text.index('"', pos + 1)
        return PConst(text[pos + 1:end]), end + 1
    if ch.isdigit() or (ch == "-" and text[pos + 1: pos + 2].isdigit()):
        start = pos
        pos += 1
        while pos < len(text) and text[pos].isdigit():
            pos += 1
        return PConst(int(text[start:pos])), pos
    start = pos
    while pos < len(text) and (text[pos].isalnum() or text[pos] in "_&|!*+<>=-"):
        pos += 1
    name = text[start:pos].strip()
    if not name:
        raise RuleParseError(f"expected identifier at {pos} in {text!r}")
    while pos < len(text) and text[pos].isspace():
        pos += 1
    if pos < len(text) and text[pos] == "(":
        pos += 1
        args: List[Pattern] = []
        while True:
            arg, pos = _parse_pattern_at(text, pos, function_names)
            args.append(arg)
            while pos < len(text) and text[pos].isspace():
                pos += 1
            if pos >= len(text):
                raise RuleParseError(f"unterminated call in {text!r}")
            if text[pos] == ",":
                pos += 1
                continue
            if text[pos] == ")":
                pos += 1
                break
            raise RuleParseError(f"unexpected {text[pos]!r} in {text!r}")
        return PCall(name, tuple(args)), pos
    if name in function_names:
        return PCall(name, ()), pos
    return PVar(name), pos
