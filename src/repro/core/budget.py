"""Search budgets.

The paper bounds each DBS invocation with a wall-clock timeout (3 minutes
on their 2009-era Xeon, §6.4). For determinism in tests we additionally
bound the number of generated expressions and tested programs; whichever
limit trips first ends the search with TIMEOUT.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Optional


class BudgetExhausted(Exception):
    """Raised internally when a search budget runs out."""


@dataclass
class Budget:
    """A mutable budget shared by one DBS invocation."""

    max_seconds: Optional[float] = None
    max_expressions: Optional[int] = None
    max_programs: Optional[int] = None
    expressions: int = 0
    programs: int = 0
    _start: float = field(default_factory=time.monotonic)

    def restart_clock(self) -> None:
        self._start = time.monotonic()

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def charge_expression(self, count: int = 1) -> None:
        self.expressions += count
        self.check()

    def charge_program(self, count: int = 1) -> None:
        self.programs += count
        self.check()

    def check(self) -> None:
        if (
            self.max_expressions is not None
            and self.expressions > self.max_expressions
        ):
            raise BudgetExhausted("expression budget exhausted")
        if self.max_programs is not None and self.programs > self.max_programs:
            raise BudgetExhausted("program budget exhausted")
        if self.max_seconds is not None and self.elapsed > self.max_seconds:
            raise BudgetExhausted("time budget exhausted")

    def exhausted(self) -> bool:
        try:
            self.check()
        except BudgetExhausted:
            return True
        return False

    def spawn(self, fraction: float = 0.25) -> "Budget":
        """A smaller budget for a sub-synthesis (loop bodies, §5.3)."""
        return Budget(
            max_seconds=(
                None
                if self.max_seconds is None
                else max(0.05, (self.max_seconds - self.elapsed) * fraction)
            ),
            max_expressions=(
                None
                if self.max_expressions is None
                else max(50, int(self.max_expressions * fraction))
            ),
            max_programs=(
                None
                if self.max_programs is None
                else max(50, int(self.max_programs * fraction))
            ),
        )


def default_budget() -> Budget:
    """The default per-DBS budget used by the test suites."""
    return Budget(max_seconds=20.0, max_expressions=60_000, max_programs=400_000)
