"""Search budgets, deadlines, and cooperative cancellation.

The paper bounds each DBS invocation with a wall-clock timeout (3 minutes
on their 2009-era Xeon, §6.4). For determinism in tests we additionally
bound the number of generated expressions and tested programs; whichever
limit trips first ends the search with TIMEOUT.

Two layers of wall-clock control coexist:

* ``Budget.max_seconds`` — the paper's *soft* timeout. When it trips the
  search stops generating but is still allowed a bounded grace sweep
  (testing the partial last generation, one final composition pass), so
  a solution already built is not lost to the cutoff.
* :class:`Deadline` — a *hard* wall. ``DbsOptions.timeout_s`` /
  ``TdsOptions.timeout_s`` arm one, and every loop in the engine —
  enumeration, candidate testing, strategy plugins, conditional cover
  search, loop-body sub-syntheses (which inherit the deadline through
  :meth:`Budget.spawn`) — checks it cooperatively. Past the wall there
  is no grace: the run truncates with a structured
  :class:`~repro.core.dbs.SynthesisTimeout` within one cooperative check
  interval (one primitive evaluation, or a small constant batch of
  guard evaluations).

A :class:`CancelToken` rides on the deadline so an outside actor (a
suite driver, the enumeration thread racing the loop strategies, a
test harness) can truncate a run the same way the clock does. Checks
are cooperative — nothing is preempted mid-evaluation — which keeps
the partial component pool consistent for warm reuse after truncation.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field
from typing import Optional, Tuple


class BudgetExhausted(Exception):
    """Raised internally when a search budget runs out."""


class DeadlineExceeded(BudgetExhausted):
    """The hard wall-clock deadline passed (no grace sweep)."""


class Cancelled(BudgetExhausted):
    """A :class:`CancelToken` on the run's deadline was cancelled."""


class CancelToken:
    """Cooperative cancellation: set once (with a reason), checked often.

    Thread-safe; the ``set``/``is_set`` aliases keep it a drop-in for the
    ``threading.Event`` the concurrent loop-strategy thread historically
    used.
    """

    __slots__ = ("_event", "reason")

    def __init__(self) -> None:
        self._event = threading.Event()
        self.reason: str = "cancelled"

    def cancel(self, reason: str = "cancelled") -> None:
        self.reason = reason
        self._event.set()

    # threading.Event compatibility
    def set(self) -> None:
        self.cancel()

    def is_set(self) -> bool:
        return self._event.is_set()

    @property
    def cancelled(self) -> bool:
        return self._event.is_set()

    def check(self) -> None:
        if self._event.is_set():
            raise Cancelled(self.reason)


class Deadline:
    """A hard wall-clock expiry plus any number of cancel tokens.

    Immutable; combine two with :meth:`earliest`. ``expires_at`` is on
    the ``time.monotonic`` clock, so deadlines must not cross process
    boundaries (transport the *remaining seconds* and re-arm instead).
    """

    __slots__ = ("expires_at", "tokens")

    def __init__(
        self,
        expires_at: Optional[float] = None,
        tokens: Tuple[CancelToken, ...] = (),
    ) -> None:
        self.expires_at = expires_at
        self.tokens = tokens

    @classmethod
    def after(
        cls, seconds: Optional[float], token: Optional[CancelToken] = None
    ) -> "Deadline":
        """A deadline ``seconds`` from now (None = cancellation only)."""
        expires = None if seconds is None else time.monotonic() + seconds
        return cls(expires, (token,) if token is not None else ())

    @classmethod
    def earliest(
        cls, a: Optional["Deadline"], b: Optional["Deadline"]
    ) -> Optional["Deadline"]:
        """The tighter of two optional deadlines (tokens from both)."""
        if a is None:
            return b
        if b is None:
            return a
        expiries = [e for e in (a.expires_at, b.expires_at) if e is not None]
        return cls(min(expiries) if expiries else None, a.tokens + b.tokens)

    def remaining(self) -> Optional[float]:
        if self.expires_at is None:
            return None
        return self.expires_at - time.monotonic()

    def why_expired(self) -> Optional[str]:
        """The truncation reason, or None while the deadline holds."""
        for token in self.tokens:
            if token.is_set():
                return token.reason
        if self.expires_at is not None and time.monotonic() > self.expires_at:
            return "deadline"
        return None

    def expired(self) -> bool:
        return self.why_expired() is not None

    def check(self) -> None:
        for token in self.tokens:
            if token.is_set():
                raise Cancelled(token.reason)
        if self.expires_at is not None and time.monotonic() > self.expires_at:
            raise DeadlineExceeded("hard deadline exceeded")


@dataclass
class Budget:
    """A mutable budget shared by one DBS invocation.

    ``deadline`` is the hard wall (see module docstring); it is checked
    by every :meth:`check` and separately — with no grace — via
    :meth:`check_deadline`. ``exhausted_reason`` records which limit
    tripped first (``"deadline"``, ``"cancelled: ..."``, ``"time"``,
    ``"expressions"``, ``"programs"``), for the structured timeout
    result and the obs registry.
    """

    max_seconds: Optional[float] = None
    max_expressions: Optional[int] = None
    max_programs: Optional[int] = None
    deadline: Optional[Deadline] = None
    expressions: int = 0
    programs: int = 0
    exhausted_reason: Optional[str] = None
    _start: float = field(default_factory=time.monotonic)

    def restart_clock(self) -> None:
        self._start = time.monotonic()

    @property
    def elapsed(self) -> float:
        return time.monotonic() - self._start

    def add_deadline(self, deadline: Optional[Deadline]) -> None:
        """Tighten this budget's hard wall (keeps the tighter expiry and
        the union of cancel tokens)."""
        self.deadline = Deadline.earliest(self.deadline, deadline)

    def _trip(self, reason: str, exc_type=BudgetExhausted) -> None:
        if self.exhausted_reason is None:
            self.exhausted_reason = reason
        raise exc_type(f"{reason} budget exhausted")

    def charge_expression(self, count: int = 1) -> None:
        self.expressions += count
        self.check()

    def charge_program(self, count: int = 1) -> None:
        self.programs += count
        self.check()

    def check_deadline(self) -> None:
        """Enforce only the hard wall (deadline + cancellation). Grace
        sweeps that deliberately outlive the soft budget call this."""
        if self.deadline is not None:
            why = self.deadline.why_expired()
            if why is not None:
                if self.exhausted_reason is None:
                    self.exhausted_reason = why
                raise (
                    DeadlineExceeded("hard deadline exceeded")
                    if why == "deadline"
                    else Cancelled(why)
                )

    def hard_expired(self) -> bool:
        """True once the hard wall has passed (never from soft limits)."""
        return self.deadline is not None and self.deadline.expired()

    def time_remaining(self) -> Optional[float]:
        """Seconds until the first wall-clock limit — the tighter of the
        hard deadline and the soft ``max_seconds`` — or None when the
        budget is unbounded in time. Progress heartbeats report this."""
        remaining: Optional[float] = None
        if self.deadline is not None:
            remaining = self.deadline.remaining()
        if self.max_seconds is not None:
            soft = self.max_seconds - self.elapsed
            remaining = soft if remaining is None else min(remaining, soft)
        return remaining

    def check(self) -> None:
        self.check_deadline()
        if (
            self.max_expressions is not None
            and self.expressions > self.max_expressions
        ):
            self._trip("expressions")
        if self.max_programs is not None and self.programs > self.max_programs:
            self._trip("programs")
        if self.max_seconds is not None and self.elapsed > self.max_seconds:
            self._trip("time")

    def exhausted(self) -> bool:
        try:
            self.check()
        except BudgetExhausted:
            return True
        return False

    def spawn(self, fraction: float = 0.25) -> "Budget":
        """A smaller budget for a sub-synthesis (loop bodies, §5.3).

        The hard deadline is *shared*, not scaled: a sub-synthesis can
        never outlive the run that spawned it.
        """
        return Budget(
            max_seconds=(
                None
                if self.max_seconds is None
                else max(0.05, (self.max_seconds - self.elapsed) * fraction)
            ),
            max_expressions=(
                None
                if self.max_expressions is None
                else max(50, int(self.max_expressions * fraction))
            ),
            max_programs=(
                None
                if self.max_programs is None
                else max(50, int(self.max_programs * fraction))
            ),
            deadline=self.deadline,
        )


def default_budget() -> Budget:
    """The default per-DBS budget used by the test suites."""
    return Budget(max_seconds=20.0, max_expressions=60_000, max_programs=400_000)
