"""Synthesized functions as callable artifacts.

TDS produces an expression; wrapping it with its signature gives a plain
Python callable usable from other LaSy functions (``_LASY_FN``), from the
Pex4Fun game loop, and from user code. ``lookup`` declarations (§2.2)
become :class:`LookupFunction` — they "just store the list of
input/output examples and look up any inputs in that list".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from .dsl import Example, Signature
from .evaluator import EvaluationError, run_program
from .expr import Expr
from .values import freeze, structurally_equal


@dataclass
class SynthesizedFunction:
    """A function with a synthesized body."""

    signature: Signature
    body: Expr
    lasy_fns: Mapping[str, Callable[..., Any]] = field(default_factory=dict)
    fuel: int = 200_000
    max_depth: int = 60

    def __call__(self, *args: Any) -> Any:
        if len(args) != len(self.signature.params):
            raise TypeError(
                f"{self.signature.name} expects "
                f"{len(self.signature.params)} arguments, got {len(args)}"
            )
        return run_program(
            self.body,
            self.signature.param_names,
            args,
            lasy_fns=self.lasy_fns,
            fuel=self.fuel,
            max_depth=self.max_depth,
        )

    def satisfies(self, example: Example) -> bool:
        try:
            value = self(*example.args)
        except EvaluationError:
            return False
        return structurally_equal(value, example.output)

    def satisfies_all(self, examples: Sequence[Example]) -> bool:
        return all(self.satisfies(e) for e in examples)

    def __str__(self) -> str:
        return f"{self.signature} => {self.body}"


@dataclass
class LookupFunction:
    """A ``lookup`` declaration: a stored example table (§2.2)."""

    signature: Signature
    table: Dict[Tuple[Any, ...], Any] = field(default_factory=dict)

    def add(self, example: Example) -> None:
        self.table[freeze(example.args)] = freeze(example.output)

    def __call__(self, *args: Any) -> Any:
        key = freeze(tuple(args))
        if key not in self.table:
            raise EvaluationError(
                f"lookup {self.signature.name} has no entry for {key!r}"
            )
        return self.table[key]

    def satisfies(self, example: Example) -> bool:
        key = freeze(example.args)
        return key in self.table and structurally_equal(
            self.table[key], example.output
        )

    def satisfies_all(self, examples: Sequence[Example]) -> bool:
        return all(self.satisfies(e) for e in examples)

    @property
    def body(self) -> Optional[Expr]:
        return None

    def __str__(self) -> str:
        return f"{self.signature} => lookup[{len(self.table)} entries]"
