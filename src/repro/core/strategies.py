"""Composition strategies: goal-directed construction of expressions.

§5.4 observes that the conditional and loop strategies are instances of
one concept — strategies that use the example *outputs* to direct the
search — and that "a DSL designer could include other strategies like
inverses of DSL-defined functions". This module provides the most
important such inverse for string-like domains: a **concatenation
strategy** that, instead of enumerating every ``Concatenate(f, e)``
combination bottom-up, runs a dynamic program over the expected outputs
and assembles only chains of pooled pieces that actually cover them —
FlashFill's trace-expression decomposition, driven by the DBS pool.

A strategy is a callable ``(pool, examples, signature, dsl) ->
[candidate expressions]``; DBS runs every registered strategy after each
generation and feeds the candidates through the normal context-plugging
and T(p) bookkeeping.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from .dsl import Dsl, Example, Signature
from .expr import Call, Expr, Function

CompositionStrategy = Callable[..., List[Expr]]

# Search caps for one strategy invocation.
_MAX_CHAINS = 24
_MAX_PIECES = 8
_MAX_STATES = 50_000


def make_concat_strategy(
    concat_name: str = "Concatenate",
    piece_nt: str = "f",
    out_nt: str = "e",
) -> CompositionStrategy:
    """Build the concatenation inverse-strategy for a DSL whose ``out_nt``
    has a binary, right-nested concatenation rule named ``concat_name``
    over pieces from ``piece_nt``."""
    return ConcatStrategy(concat_name, piece_nt, out_nt)


class ConcatStrategy:
    """The concatenation inverse-strategy as a picklable callable — a
    DSL that carries it can travel with a cached session (the session
    cache's journal pickles whole sessions, DSL included), which a
    closure cannot."""

    def __init__(
        self,
        concat_name: str = "Concatenate",
        piece_nt: str = "f",
        out_nt: str = "e",
    ):
        self.concat_name = concat_name
        self.piece_nt = piece_nt
        self.out_nt = out_nt

    def __call__(
        self,
        pool: Any,
        examples: Sequence[Example],
        signature: Signature,
        dsl: Dsl,
    ) -> List[Expr]:
        del signature
        concat_name = self.concat_name
        piece_nt = self.piece_nt
        out_nt = self.out_nt
        outputs = [e.output for e in examples]
        if not outputs or not all(isinstance(o, str) for o in outputs):
            return []
        concat_fn = _find_function(dsl, out_nt, concat_name)
        if concat_fn is None:
            return []
        pieces = _string_pieces(pool, dsl, piece_nt, len(examples))
        if not pieces:
            return []
        chains: List[List[Expr]] = []
        total = frozenset(range(len(examples)))
        # Full cover: one chain matching every output.
        chains.extend(
            _cover(outputs, _valid_on(pieces, range(len(examples))), limit=_MAX_CHAINS)
        )
        # Subset covers feed the conditional strategy (§5.2). The useful
        # subsets are exactly the true-sets of recorded guards (and their
        # complements): a chain covering such a subset is a branch the
        # cascade can route to. DBS publishes them on the pool.
        if len(examples) > 1:
            subsets: List[frozenset] = []
            for true_set in getattr(pool, "guard_sets", ()):
                for candidate in (
                    frozenset(true_set),
                    frozenset(range(len(examples))) - frozenset(true_set),
                ):
                    if (
                        1 < len(candidate) < len(examples)
                        and candidate not in subsets
                    ):
                        subsets.append(candidate)
            subsets.sort(key=len, reverse=True)
            for subset in subsets[:10]:
                indices = sorted(subset)
                projected = _valid_on(pieces, indices)
                chains.extend(
                    _cover([outputs[k] for k in indices], projected, limit=4)
                )
            # Per-example covers: branch candidates for one example each.
            for index, output in enumerate(outputs):
                single = _valid_on(pieces, [index])
                chains.extend(
                    _cover([output], single, limit=4)
                )
        out: List[Expr] = []
        seen: set = set()
        for chain in chains:
            expr = _build_chain(chain, concat_fn, out_nt)
            if expr is not None and expr not in seen:
                seen.add(expr)
                out.append(expr)
        return out


def _valid_on(pieces, indices) -> List[Tuple[Expr, Tuple[str, ...]]]:
    """Project piece value vectors onto ``indices``, keeping only pieces
    that are error-free there."""
    from .values import ERROR

    indices = list(indices)
    out: List[Tuple[Expr, Tuple[str, ...]]] = []
    for expr, values in pieces:
        projected = tuple(values[k] for k in indices)
        if any(v is ERROR for v in projected):
            continue
        out.append((expr, projected))
    return out


def _find_function(dsl: Dsl, nt: str, name: str) -> Optional[Function]:
    for prod in dsl.productions_for(nt):
        if prod.kind == "call" and prod.func and prod.func.name == name:
            return prod.func
    return None


def _string_pieces(
    pool: Any, dsl: Dsl, piece_nt: str, n_examples: int
) -> List[Tuple[Expr, Tuple[str, ...]]]:
    """Pooled candidate pieces: expressions of the piece nonterminal with
    all-string cached value vectors.

    Recursive expressions carry no cached values (their meaning depends
    on the whole program), but under the angelic example-table oracle
    they still have one observable answer per example — computing it
    here lets a chain end in a recursive tail (word wrap's
    ``line + "\n" + Recurse(rest, length)``). DBS re-verifies every
    assembled candidate with true self-recursion."""
    from .evaluator import EvaluationError, run_program
    from .expr import is_recursive
    from .values import ERROR, freeze

    names = (
        dsl.expansion(piece_nt)
        if piece_nt in dsl.nonterminals
        else (piece_nt,)
    )
    examples = pool.examples
    table = {freeze(e.args): freeze(e.output) for e in examples}
    previous = getattr(pool, "previous_program", None)

    def oracle(args):
        if args in table:
            return table[args]
        if previous is not None:
            return run_program(
                previous, pool.signature.param_names, args, fuel=20_000
            )
        raise EvaluationError("angelic recursion: input not in table")

    out: List[Tuple[Expr, Tuple[str, ...]]] = []
    angelic_budget = 400
    for name in names:
        for entry in pool.iter_entries(name):
            values = entry.values
            if values is None:
                if not is_recursive(entry.expr) or angelic_budget <= 0:
                    continue
                angelic_budget -= 1
                computed = []
                for example in examples:
                    try:
                        value = run_program(
                            entry.expr,
                            pool.signature.param_names,
                            example.args,
                            fuel=20_000,
                            recursion_oracle=oracle,
                        )
                    except EvaluationError:
                        value = ERROR
                    computed.append(value)
                values = tuple(computed)
            if len(values) != n_examples:
                continue
            if all(v is ERROR or not isinstance(v, str) for v in values):
                continue
            if any(
                v is not ERROR and not isinstance(v, str) for v in values
            ):
                continue
            # Pieces may error on *some* examples: a branch body is
            # allowed (indeed expected) to crash on examples other
            # branches handle. Covers filter per projected subset.
            out.append((entry.expr, tuple(values)))
    return out


def _cover(
    outputs: Sequence[str],
    pieces: Sequence[Tuple[Expr, Tuple[str, ...]]],
    limit: int,
) -> List[List[Expr]]:
    """All (up to ``limit``) chains of pieces whose per-example values
    concatenate exactly to every output. Depth-first with memoized dead
    states; chains with fewer pieces are preferred (DFS tries longer
    pieces first)."""
    n = len(outputs)
    start = tuple([0] * n)
    goal = tuple(len(o) for o in outputs)
    # Index pieces by first character per example to cut the scan.
    dead: set = set()
    results: List[List[Expr]] = []
    budget = [_MAX_STATES]

    def transitions(state: Tuple[int, ...]):
        for expr, values in pieces:
            next_state = []
            progress = 0
            ok = True
            for k in range(n):
                piece = values[k]
                pos = state[k]
                if not outputs[k].startswith(piece, pos):
                    ok = False
                    break
                next_state.append(pos + len(piece))
                progress += len(piece)
            if ok and progress > 0:
                yield expr, tuple(next_state), progress

    def dfs(state: Tuple[int, ...], chain: List[Expr]) -> bool:
        if len(results) >= limit:
            return True
        budget[0] -= 1
        if budget[0] < 0:
            return True
        if state == goal:
            results.append(list(chain))
            return len(results) >= limit
        if len(chain) >= _MAX_PIECES or state in dead:
            return False
        # Prefer big bites: fewer pieces, more generalizable programs.
        moves = sorted(transitions(state), key=lambda m: -m[2])
        found_any = False
        for expr, next_state, _ in moves:
            chain.append(expr)
            stop = dfs(next_state, chain)
            chain.pop()
            found_any = found_any or next_state == goal or results
            if stop:
                return True
        if not results:
            dead.add(state)
        return False

    dfs(start, [])
    return results


def _build_chain(
    chain: Sequence[Expr], concat_fn: Function, out_nt: str
) -> Optional[Expr]:
    """Right-nested ``Concatenate(p1, Concatenate(p2, ...))``."""
    if not chain:
        return None
    expr = chain[-1]
    for piece in reversed(chain[:-1]):
        expr = Call(concat_fn, (piece, expr), out_nt)
    return expr
