"""The expression IR shared by TDS, DBS and the domain DSLs.

Programs synthesized by the paper are expressions over *components*
(pure functions registered by a DSL, §3.2) plus a handful of special
forms the synthesizer reasons about directly:

* :class:`Param` — a reference to a parameter of the function being
  synthesized (the DSL's ``_PARAM`` rule);
* :class:`Const` — a literal constant (``_CONSTANT``);
* :class:`Var` / :class:`Lambda` — lambda abstraction, used for
  higher-order components such as ``Loop`` and ``SplitAndMerge``;
* :class:`Call` — application of a DSL-defined function to arguments;
* :class:`If` — the cascading conditional learned by the ``__CONDITIONAL``
  strategy (§5.2);
* :class:`Recurse` — a recursive call to the function being synthesized
  (``_RECURSE``);
* :class:`LasyCall` — a call to another, already-synthesized LaSy
  function (``_LASY_FN``);
* :class:`Foreach` / :class:`ForLoop` — loop nodes produced by the
  ``__FOREACH`` / ``__FOR`` strategies (§5.3).

Every expression is tagged with the grammar nonterminal that produced it
(``nt``); per §5.1, "all components are expressions marked with which
non-terminal in the grammar defined them". Expressions are immutable and
hashable; ``size`` (node count) is cached at construction since it drives
the smaller-programs bias of the search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Tuple

from .types import Type

Path = Tuple[int, ...]


@dataclass(frozen=True)
class Function:
    """Metadata for a DSL-defined component function.

    ``fn`` must be pure (§3.2: "the semantics of the DSL must be
    functional"). ``lazy`` marks special functions (e.g. short-circuit
    boolean operators) whose arguments the evaluator supplies as thunks.
    """

    name: str
    param_types: Tuple[Type, ...]
    return_type: Type
    fn: Callable[..., Any]
    lazy: bool = False

    @property
    def arity(self) -> int:
        return len(self.param_types)

    def __str__(self) -> str:
        params = ", ".join(str(t) for t in self.param_types)
        return f"{self.return_type} {self.name}({params})"

    def __hash__(self) -> int:
        return hash((self.name, self.param_types, self.return_type))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Function):
            return NotImplemented
        return (
            self.name == other.name
            and self.param_types == other.param_types
            and self.return_type == other.return_type
        )


class Expr:
    """Base class for expressions. Subclasses are frozen dataclasses.

    Hashes are computed once at construction (children contribute their
    cached hashes, so hashing is O(1) per node); equality short-circuits
    on the cached hash before any deep comparison. The syntactic dedup of
    §5.1 hashes millions of expressions, so this matters.

    ``free_var_set`` (free lambda-variable names) and ``has_recurse``
    are likewise fixed once the node exists, so they too are computed at
    construction from the children's cached values — the pool's dedup
    and admission checks consult them per candidate.
    """

    nt: str
    size: int
    _hash: int
    free_var_set: frozenset
    has_recurse: bool

    def _identity(self) -> tuple:
        raise NotImplementedError

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if type(self) is not type(other):
            return NotImplemented if not isinstance(other, Expr) else False
        if self._hash != other._hash:  # type: ignore[attr-defined]
            return False
        return self._identity() == other._identity()  # type: ignore[union-attr]

    def children(self) -> Tuple["Expr", ...]:
        return ()

    def with_children(self, children: Tuple["Expr", ...]) -> "Expr":
        if children:
            raise ValueError(f"{type(self).__name__} takes no children")
        return self

    # -- traversal ---------------------------------------------------

    def walk(self) -> Iterator["Expr"]:
        """Yield this expression and all descendants, preorder."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children()))

    def walk_with_paths(self, prefix: Path = ()) -> Iterator[Tuple[Path, "Expr"]]:
        """Yield ``(path, node)`` pairs, preorder."""
        yield prefix, self
        for i, child in enumerate(self.children()):
            yield from child.walk_with_paths(prefix + (i,))

    def contains(self, predicate: Callable[["Expr"], bool]) -> bool:
        return any(predicate(node) for node in self.walk())

    def __str__(self) -> str:  # pragma: no cover - overridden everywhere
        return repr(self)


_NO_FREE_VARS: frozenset = frozenset()


def _finish(node: Expr, size: int) -> None:
    object.__setattr__(node, "size", size)
    identity = node._identity()
    object.__setattr__(
        node, "_hash", hash((type(node).__name__,) + identity)
    )
    # Children are already finished (construction is bottom-up), so the
    # traversal caches are O(1) per node.
    kind = type(node)
    if kind is Var:
        free: frozenset = frozenset((node.name,))
        recurses = False
    elif kind is Lambda:
        free = node.body.free_var_set
        if free:
            free = free.difference(p.name for p in node.params)
        recurses = node.body.has_recurse
    else:
        free = _NO_FREE_VARS
        recurses = kind is Recurse
        for child in node.children():
            child_free = child.free_var_set
            if child_free:
                free = free | child_free
            if child.has_recurse:
                recurses = True
    object.__setattr__(node, "free_var_set", free)
    object.__setattr__(node, "has_recurse", recurses)


@dataclass(frozen=True, eq=False)
class Hole(Expr):
    """The single hole of a context (§4.2); never evaluated."""

    nt: str
    size: int = field(init=False, compare=False)

    def __post_init__(self) -> None:
        _finish(self, 1)

    def __str__(self) -> str:
        return "•"  # the paper's bullet


@dataclass(frozen=True, eq=False)
class Param(Expr):
    """Reference to a parameter of the function being synthesized."""

    name: str
    type: Type
    nt: str
    size: int = field(init=False, compare=False)

    def __post_init__(self) -> None:
        _finish(self, 1)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Const(Expr):
    """A literal constant embedded in the program."""

    value: Any
    type: Type
    nt: str
    size: int = field(init=False, compare=False)

    def __post_init__(self) -> None:
        _finish(self, 1)

    def __str__(self) -> str:
        from .values import value_repr

        return value_repr(self.value)


@dataclass(frozen=True, eq=False)
class Var(Expr):
    """A lambda-bound variable."""

    name: str
    type: Type
    nt: str
    size: int = field(init=False, compare=False)

    def __post_init__(self) -> None:
        _finish(self, 1)

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, eq=False)
class Call(Expr):
    """Application of a DSL-defined function to argument expressions."""

    func: Function
    args: Tuple[Expr, ...]
    nt: str
    size: int = field(init=False, compare=False)

    def __post_init__(self) -> None:
        if len(self.args) != self.func.arity:
            raise ValueError(
                f"{self.func.name} expects {self.func.arity} args, "
                f"got {len(self.args)}"
            )
        _finish(self, 1 + sum(a.size for a in self.args))

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def with_children(self, children: Tuple[Expr, ...]) -> "Call":
        return Call(self.func, tuple(children), self.nt)

    def __str__(self) -> str:
        return f"{self.func.name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True, eq=False)
class Lambda(Expr):
    """Lambda abstraction ``λ params . body``."""

    params: Tuple[Var, ...]
    body: Expr
    nt: str
    size: int = field(init=False, compare=False)

    def __post_init__(self) -> None:
        _finish(self, 1 + self.body.size)

    def children(self) -> Tuple[Expr, ...]:
        return (self.body,)

    def with_children(self, children: Tuple[Expr, ...]) -> "Lambda":
        (body,) = children
        return Lambda(self.params, body, self.nt)

    def __str__(self) -> str:
        names = ", ".join(p.name for p in self.params)
        return f"λ{names}: {self.body}"


@dataclass(frozen=True, eq=False)
class If(Expr):
    """A cascading conditional: ``if g1 then b1 elif g2 then b2 ... else e``.

    ``branches`` holds (guard, body) pairs in evaluation order;
    ``orelse`` is the final else body.
    """

    branches: Tuple[Tuple[Expr, Expr], ...]
    orelse: Expr
    nt: str
    size: int = field(init=False, compare=False)

    def __post_init__(self) -> None:
        if not self.branches:
            raise ValueError("If requires at least one guarded branch")
        total = 1 + self.orelse.size
        for guard, body in self.branches:
            total += guard.size + body.size
        _finish(self, total)

    @property
    def num_branches(self) -> int:
        """Number of bodies, counting the else branch."""
        return len(self.branches) + 1

    def children(self) -> Tuple[Expr, ...]:
        flat: list[Expr] = []
        for guard, body in self.branches:
            flat.append(guard)
            flat.append(body)
        flat.append(self.orelse)
        return tuple(flat)

    def with_children(self, children: Tuple[Expr, ...]) -> "If":
        children = tuple(children)
        if len(children) != 2 * len(self.branches) + 1:
            raise ValueError("wrong number of children for If")
        pairs = tuple(
            (children[2 * i], children[2 * i + 1])
            for i in range(len(self.branches))
        )
        return If(pairs, children[-1], self.nt)

    def bodies(self) -> Tuple[Expr, ...]:
        return tuple(b for _, b in self.branches) + (self.orelse,)

    def __str__(self) -> str:
        parts = [f"if {g} then {b}" for g, b in self.branches]
        return " else ".join(parts) + f" else {self.orelse}"


@dataclass(frozen=True, eq=False)
class Recurse(Expr):
    """Recursive call to the function being synthesized (``_RECURSE``)."""

    args: Tuple[Expr, ...]
    nt: str
    size: int = field(init=False, compare=False)

    def __post_init__(self) -> None:
        _finish(self, 1 + sum(a.size for a in self.args))

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def with_children(self, children: Tuple[Expr, ...]) -> "Recurse":
        return Recurse(tuple(children), self.nt)

    def __str__(self) -> str:
        return f"recurse({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True, eq=False)
class LasyCall(Expr):
    """Call to another LaSy function by name (``_LASY_FN``)."""

    func_name: str
    args: Tuple[Expr, ...]
    nt: str
    size: int = field(init=False, compare=False)

    def __post_init__(self) -> None:
        _finish(self, 1 + sum(a.size for a in self.args))

    def children(self) -> Tuple[Expr, ...]:
        return self.args

    def with_children(self, children: Tuple[Expr, ...]) -> "LasyCall":
        return LasyCall(self.func_name, tuple(children), self.nt)

    def __str__(self) -> str:
        return f"{self.func_name}({', '.join(str(a) for a in self.args)})"


@dataclass(frozen=True, eq=False)
class Foreach(Expr):
    """A foreach loop produced by the ``__FOREACH`` strategy (§5.3).

    Evaluates ``source`` to a list, then runs ``body`` (a lambda over
    ``(i, current, acc)``) per element, accumulating outputs into a list.
    ``reverse`` iterates the source right-to-left (the "going in reverse
    order" strategy variant), still producing outputs aligned with the
    iteration order.
    """

    source: Expr
    body: Lambda
    nt: str
    reverse: bool = False
    size: int = field(init=False, compare=False)

    def __post_init__(self) -> None:
        _finish(self, 1 + self.source.size + self.body.size)

    def children(self) -> Tuple[Expr, ...]:
        return (self.source, self.body)

    def with_children(self, children: Tuple[Expr, ...]) -> "Foreach":
        source, body = children
        if not isinstance(body, Lambda):
            raise ValueError("Foreach body must be a Lambda")
        return Foreach(source, body, self.nt, self.reverse)

    def __str__(self) -> str:
        kw = "foreach_rev" if self.reverse else "foreach"
        return f"{kw}({self.source}, {self.body})"


@dataclass(frozen=True, eq=False)
class ForLoop(Expr):
    """A counted accumulator loop produced by the ``__FOR`` strategy.

    Semantics: ``acc = init; for i in start..bound(input): acc = body(i,
    acc); return acc`` where ``bound`` is an expression over the function
    parameters.
    """

    bound: Expr
    init: Expr
    body: Lambda
    nt: str
    start: int = 1
    size: int = field(init=False, compare=False)

    def __post_init__(self) -> None:
        _finish(self, 1 + self.bound.size + self.init.size + self.body.size)

    def children(self) -> Tuple[Expr, ...]:
        return (self.bound, self.init, self.body)

    def with_children(self, children: Tuple[Expr, ...]) -> "ForLoop":
        bound, init, body = children
        if not isinstance(body, Lambda):
            raise ValueError("ForLoop body must be a Lambda")
        return ForLoop(bound, init, body, self.nt, self.start)

    def __str__(self) -> str:
        return (
            f"for(i={self.start}..{self.bound}, acc={self.init}, {self.body})"
        )


# ---------------------------------------------------------------------
# Path utilities


def get_at(root: Expr, path: Path) -> Expr:
    """The subexpression of ``root`` at ``path``."""
    node = root
    for index in path:
        node = node.children()[index]
    return node


def replace_at(root: Expr, path: Path, replacement: Expr) -> Expr:
    """A copy of ``root`` with the node at ``path`` replaced."""
    if not path:
        return replacement
    index, rest = path[0], path[1:]
    children = list(root.children())
    children[index] = replace_at(children[index], rest, replacement)
    return root.with_children(tuple(children))


def subexpressions(root: Expr) -> Iterator[Tuple[Path, Expr]]:
    """All (path, subexpression) pairs of ``root`` including the root."""
    yield from root.walk_with_paths()


def count_branches(program: Optional[Expr]) -> int:
    """``num_branch`` from Algorithm 1: bodies of the top-level conditional.

    A program with no conditional has one branch; the empty program has
    one as well (so the first DBS call gets ``m = 1``).
    """
    if program is None:
        return 1
    if isinstance(program, If):
        return program.num_branches
    return 1


def top_level_bodies(program: Expr) -> Tuple[Expr, ...]:
    """The branch bodies of the top-level conditional, or the program."""
    if isinstance(program, If):
        return program.bodies()
    return (program,)


def is_recursive(expr: Expr) -> bool:
    """Whether ``expr`` contains a recursive self-call."""
    return expr.has_recurse


def contains_free_vars(expr: Expr) -> bool:
    """Whether ``expr`` contains lambda variables not bound within it."""
    return bool(expr.free_var_set)


def free_vars(expr: Expr) -> frozenset:
    """Names of lambda variables free in ``expr``."""
    return expr.free_var_set


# Cached-hash identity tuples (see Expr.__eq__/__hash__).
def _const_key(value):
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value

def _identity_hole(self):
    return (self.nt,)
Hole._identity = _identity_hole

def _identity_param(self):
    return (self.name, self.type, self.nt)
Param._identity = _identity_param

def _identity_const(self):
    return (_const_key(self.value), self.type, self.nt)
Const._identity = _identity_const

def _identity_var(self):
    return (self.name, self.type, self.nt)
Var._identity = _identity_var

def _identity_call(self):
    return (self.func, self.args, self.nt)
Call._identity = _identity_call

def _identity_lambda(self):
    return (self.params, self.body, self.nt)
Lambda._identity = _identity_lambda

def _identity_if(self):
    return (self.branches, self.orelse, self.nt)
If._identity = _identity_if

def _identity_recurse(self):
    return (self.args, self.nt)
Recurse._identity = _identity_recurse

def _identity_lasycall(self):
    return (self.func_name, self.args, self.nt)
LasyCall._identity = _identity_lasycall

def _identity_foreach(self):
    return (self.source, self.body, self.nt, self.reverse)
Foreach._identity = _identity_foreach

def _identity_forloop(self):
    return (self.bound, self.init, self.body, self.nt, self.start)
ForLoop._identity = _identity_forloop

