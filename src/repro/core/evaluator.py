"""Fuel-bounded evaluation of expressions on example inputs.

The evaluator is the synthesizer's only oracle: candidate programs are
never analysed, only run (§5.1: expressions "are used to fill in contexts
producing larger programs which are then tested"). Because candidates may
contain unbounded recursion (``_RECURSE``) or runaway loops, every
evaluation carries a *fuel* budget and a recursion-depth limit; exhausting
either raises :class:`EvaluationError`, which the search observes as the
distinguished :data:`~repro.core.values.ERROR` value.

Two execution engines share these semantics: the tree-walking
interpreter in this module (:func:`evaluate`, the reference), and the
closure compiler in :mod:`repro.core.compile` (the default hot path —
see :func:`expression_runner` / :func:`set_eval_mode`, and
docs/performance.md for the strategy and measured speedups).
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from ..obs.metrics import Registry
from .expr import (
    Call,
    Const,
    Expr,
    Foreach,
    ForLoop,
    Hole,
    If,
    Lambda,
    LasyCall,
    Param,
    Recurse,
    Var,
)
from .values import ERROR, freeze

# Process-global evaluator metrics. The evaluator is called from every
# layer (candidate testing, dedup sampling, strategies), so it keeps one
# registry; attribution to a single DBS run reads deltas around the run
# (see core/dbs.py). Hot paths bump ``.value`` directly.
METRICS = Registry()
_RUNS = METRICS.counter("eval.run_program")
_ERRORS = METRICS.counter("eval.run_program_errors")


class EvaluationError(Exception):
    """A candidate program crashed, diverged, or exhausted its budget."""


# ---------------------------------------------------------------------
# Evaluation mode: "compiled" (default) runs expressions through
# repro.core.compile's closure trees; "interp" forces the tree-walking
# interpreter below, which remains the reference semantics (the
# differential test asserts the two agree). Selected at import time by
# the REPRO_EVAL environment variable, switchable at runtime for
# benchmarks and differential tests.

_EVAL_MODE = "interp" if os.environ.get("REPRO_EVAL") == "interp" else "compiled"
_compile_expr: Optional[Callable] = None


def set_eval_mode(mode: str) -> str:
    """Select ``"compiled"`` or ``"interp"``; returns the previous mode."""
    global _EVAL_MODE
    if mode not in ("compiled", "interp"):
        raise ValueError(f"unknown eval mode {mode!r}")
    previous = _EVAL_MODE
    _EVAL_MODE = mode
    return previous


def get_eval_mode() -> str:
    return _EVAL_MODE


def expression_runner(expr: "Expr") -> Callable[["Env"], Any]:
    """A callable evaluating ``expr`` in an :class:`Env` under the
    current mode. In compiled mode this is the memoized closure tree —
    the caller pays compilation once and runs it per example/binding."""
    global _compile_expr
    if _EVAL_MODE == "compiled":
        if _compile_expr is None:
            from .compile import compile_expr as _ce

            _compile_expr = _ce
        return _compile_expr(expr)
    return lambda env: evaluate(expr, env)


DEFAULT_FUEL = 200_000
DEFAULT_MAX_DEPTH = 40


@dataclass
class Fuel:
    """A mutable step budget shared across one evaluation."""

    remaining: int = DEFAULT_FUEL

    def spend(self, amount: int = 1) -> None:
        self.remaining -= amount
        if self.remaining < 0:
            raise EvaluationError("fuel exhausted")


@dataclass
class Env:
    """Everything an expression needs to evaluate.

    ``params`` binds the synthesized function's parameters; ``vars`` binds
    lambda variables; ``recursion`` supplies the program being synthesized
    so ``Recurse`` nodes can call it; ``lasy_fns`` maps names of other
    LaSy functions to plain Python callables.
    """

    params: Mapping[str, Any]
    vars: Dict[str, Any] = field(default_factory=dict)
    lasy_fns: Mapping[str, Callable[..., Any]] = field(default_factory=dict)
    recursion_program: Optional[Expr] = None
    recursion_params: Tuple[str, ...] = ()
    recursion_oracle: Optional[Callable[[Tuple[Any, ...]], Any]] = None
    depth: int = 0
    max_depth: int = DEFAULT_MAX_DEPTH
    fuel: Fuel = field(default_factory=Fuel)

    def with_vars(self, bindings: Mapping[str, Any]) -> "Env":
        merged = dict(self.vars)
        merged.update(bindings)
        return Env(
            params=self.params,
            vars=merged,
            lasy_fns=self.lasy_fns,
            recursion_program=self.recursion_program,
            recursion_params=self.recursion_params,
            recursion_oracle=self.recursion_oracle,
            depth=self.depth,
            max_depth=self.max_depth,
            fuel=self.fuel,
        )

    def recurse_env(self, params: Mapping[str, Any]) -> "Env":
        if self.depth + 1 > self.max_depth:
            raise EvaluationError("recursion depth exceeded")
        return Env(
            params=params,
            vars={},
            lasy_fns=self.lasy_fns,
            recursion_program=self.recursion_program,
            recursion_params=self.recursion_params,
            recursion_oracle=self.recursion_oracle,
            depth=self.depth + 1,
            max_depth=self.max_depth,
            fuel=self.fuel,
        )


def evaluate(expr: Expr, env: Env) -> Any:
    """Evaluate ``expr`` in ``env``; raises :class:`EvaluationError`."""
    env.fuel.spend()
    if isinstance(expr, Const):
        return expr.value
    if isinstance(expr, Param):
        try:
            return env.params[expr.name]
        except KeyError as exc:
            raise EvaluationError(f"unbound parameter {expr.name}") from exc
    if isinstance(expr, Var):
        try:
            return env.vars[expr.name]
        except KeyError as exc:
            raise EvaluationError(f"unbound variable {expr.name}") from exc
    if isinstance(expr, Call):
        return _eval_call(expr, env)
    if isinstance(expr, If):
        for guard, body in expr.branches:
            test = evaluate(guard, env)
            if not isinstance(test, bool):
                raise EvaluationError("conditional guard is not boolean")
            if test:
                return evaluate(body, env)
        return evaluate(expr.orelse, env)
    if isinstance(expr, Lambda):
        return _close_over(expr, env)
    if isinstance(expr, Recurse):
        return _eval_recurse(expr, env)
    if isinstance(expr, LasyCall):
        return _eval_lasy_call(expr, env)
    if isinstance(expr, Foreach):
        return _eval_foreach(expr, env)
    if isinstance(expr, ForLoop):
        return _eval_for(expr, env)
    if isinstance(expr, Hole):
        raise EvaluationError("cannot evaluate a context hole")
    raise EvaluationError(f"unknown expression kind {type(expr).__name__}")


# Value-size limits: candidate programs can otherwise build astronomically
# large values (e.g. repeated squaring under _RECURSE produces bigints whose
# single multiplication takes seconds), which fuel cannot bound because the
# blow-up happens inside one component call.
_MAX_INT_BITS = 512
_MAX_STR_LEN = 1_000_000
_MAX_SEQ_LEN = 100_000


def check_value_size(value: Any) -> Any:
    """Reject absurdly large values; returns the value unchanged."""
    if isinstance(value, int) and not isinstance(value, bool):
        if value.bit_length() > _MAX_INT_BITS:
            raise EvaluationError("integer value too large")
    elif isinstance(value, str):
        if len(value) > _MAX_STR_LEN:
            raise EvaluationError("string value too large")
    elif isinstance(value, (tuple, list)):
        if len(value) > _MAX_SEQ_LEN:
            raise EvaluationError("sequence value too large")
    return value


def _eval_call(expr: Call, env: Env) -> Any:
    func = expr.func
    if func.lazy:
        thunks = [lambda a=a: evaluate(a, env) for a in expr.args]
        try:
            return check_value_size(freeze(func.fn(*thunks)))
        except EvaluationError:
            raise
        except Exception as exc:
            raise EvaluationError(f"{func.name}: {exc}") from exc
    args = [evaluate(a, env) for a in expr.args]
    try:
        return check_value_size(freeze(func.fn(*args)))
    except EvaluationError:
        raise
    except RecursionError as exc:
        raise EvaluationError(f"{func.name}: recursion") from exc
    except Exception as exc:
        raise EvaluationError(f"{func.name}: {exc}") from exc


def _close_over(expr: Lambda, env: Env) -> Callable[..., Any]:
    names = [p.name for p in expr.params]

    def closure(*values: Any) -> Any:
        if len(values) != len(names):
            raise EvaluationError(
                f"lambda expects {len(names)} args, got {len(values)}"
            )
        return evaluate(expr.body, env.with_vars(dict(zip(names, values))))

    return closure


def _eval_recurse(expr: Recurse, env: Env) -> Any:
    if len(expr.args) != len(env.recursion_params):
        raise EvaluationError("recursive call arity mismatch")
    args = [evaluate(a, env) for a in expr.args]
    params = dict(zip(env.recursion_params, args))
    # A self-call on structurally identical arguments can never terminate
    # (and, under the oracle, would trivially echo the expected output).
    if all(
        freeze(params[name]) == freeze(env.params.get(name))
        for name in env.recursion_params
    ):
        raise EvaluationError("recursive call with unchanged arguments")
    if env.recursion_oracle is not None:
        return env.recursion_oracle(tuple(freeze(a) for a in args))
    if env.recursion_program is None:
        raise EvaluationError("recursive call outside a recursive binding")
    return evaluate(env.recursion_program, env.recurse_env(params))


def _eval_lasy_call(expr: LasyCall, env: Env) -> Any:
    fn = env.lasy_fns.get(expr.func_name)
    if fn is None:
        raise EvaluationError(f"unknown LaSy function {expr.func_name}")
    args = [evaluate(a, env) for a in expr.args]
    try:
        return freeze(fn(*args))
    except EvaluationError:
        raise
    except Exception as exc:
        raise EvaluationError(f"{expr.func_name}: {exc}") from exc


_FOREACH_LIMIT = 10_000


def _eval_foreach(expr: Foreach, env: Env) -> Any:
    source = evaluate(expr.source, env)
    if not isinstance(source, (tuple, list, str)):
        raise EvaluationError("foreach source is not a sequence")
    items = list(source)
    if expr.reverse:
        items.reverse()
    if len(items) > _FOREACH_LIMIT:
        raise EvaluationError("foreach source too large")
    body = _close_over(expr.body, env)
    acc: list = []
    for i, current in enumerate(items):
        acc.append(body(i, current, tuple(acc)))
    return tuple(acc)


_FOR_LIMIT = 100_000


def _eval_for(expr: ForLoop, env: Env) -> Any:
    bound = evaluate(expr.bound, env)
    if not isinstance(bound, int) or isinstance(bound, bool):
        raise EvaluationError("for-loop bound is not an integer")
    if bound - expr.start + 1 > _FOR_LIMIT:
        raise EvaluationError("for-loop bound too large")
    acc = evaluate(expr.init, env)
    body = _close_over(expr.body, env)
    for i in range(expr.start, bound + 1):
        acc = body(i, acc)
    return acc


def run_program(
    program: Expr,
    param_names: Sequence[str],
    args: Sequence[Any],
    lasy_fns: Optional[Mapping[str, Callable[..., Any]]] = None,
    fuel: int = DEFAULT_FUEL,
    max_depth: int = DEFAULT_MAX_DEPTH,
    recursion_oracle: Optional[Callable[[Tuple[Any, ...]], Any]] = None,
) -> Any:
    """Run a whole synthesized program on concrete arguments.

    Returns the (frozen) output value; raises :class:`EvaluationError`
    on crash or budget exhaustion. ``recursion_oracle``, when given,
    answers ``Recurse`` calls instead of self-recursion; DBS uses it to
    evaluate recursive branch candidates angelically (from the example
    table, falling back to the previous program) while recording T(p).
    """
    _RUNS.value += 1
    params = dict(zip(param_names, (freeze(a) for a in args)))
    env = Env(
        params=params,
        lasy_fns=lasy_fns or {},
        recursion_program=program,
        recursion_params=tuple(param_names),
        recursion_oracle=recursion_oracle,
        max_depth=max_depth,
        fuel=Fuel(fuel),
    )
    try:
        return freeze(expression_runner(program)(env))
    except EvaluationError:
        _ERRORS.value += 1
        raise


def try_run(
    program: Expr,
    param_names: Sequence[str],
    args: Sequence[Any],
    lasy_fns: Optional[Mapping[str, Callable[..., Any]]] = None,
    fuel: int = DEFAULT_FUEL,
    max_depth: int = DEFAULT_MAX_DEPTH,
) -> Any:
    """Like :func:`run_program` but returns :data:`ERROR` on failure."""
    try:
        return run_program(
            program, param_names, args, lasy_fns, fuel, max_depth
        )
    except EvaluationError:
        return ERROR
