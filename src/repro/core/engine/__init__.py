"""The layered synthesis engine.

The DBS core is split into four explicit layers (see
docs/architecture.md):

* :class:`~repro.core.engine.pool.PoolStore` — the signature-indexed,
  hash-consed expression store: canonicalization, syntactic/semantic
  dedup, cached value vectors, and the incremental
  ``extend_examples`` / ``refresh_lasy`` operations that let one store
  live across a whole TDS example sequence;
* :class:`~repro.core.engine.enumerator.Enumerator` — grammar-driven
  generation (Algorithm 2's "generate new expressions" step) over a
  store it does not own;
* :class:`~repro.core.engine.registry.StrategyRegistry` — loops,
  composition, and conditional synthesis as named plugins with a
  uniform ``(session, budget, tracer) -> Optional[Expr]`` interface;
* :class:`~repro.core.engine.session.SynthesisSession` — threads the
  persistent store, tester, budget, metrics registry, and tracer
  through consecutive DBS runs.

On top of those, the service layers (see docs/service.md):

* :mod:`~repro.core.engine.keys` — explicit session identity:
  :class:`~repro.core.engine.keys.SessionKey` over (DSL, signature,
  LaSy-state fingerprint, pool options, example-signature prefix);
* :class:`~repro.core.engine.cache.SessionCache` — a bounded LRU of
  suspended warm sessions with exclusive checkout and optional
  journal persistence, the store behind ``repro serve``;
* :mod:`~repro.core.engine.shard` — deterministic intra-run sharding:
  a :class:`~repro.core.engine.shard.ShardCoordinator` splits each
  generation's candidate stream across replica-holding worker
  processes and replays the merged survivors through the pool's
  signature-interning admission tail.

``repro.core.components.ComponentPool`` remains as a thin facade over
``PoolStore`` + ``Enumerator`` for existing callers.
"""

from .cache import SessionCache
from .enumerator import Enumerator, lambda_nt
from .keys import SessionKey, example_fingerprints, session_key_for
from .pool import PoolEntry, PoolOptions, PoolStore
from .registry import StrategyEntry, StrategyRegistry, default_registry
from .session import SynthesisSession
from .shard import ShardCoordinator, ShardPlan
from .testing import Tester

__all__ = [
    "Enumerator",
    "PoolEntry",
    "PoolOptions",
    "PoolStore",
    "SessionCache",
    "SessionKey",
    "ShardCoordinator",
    "ShardPlan",
    "StrategyEntry",
    "StrategyRegistry",
    "SynthesisSession",
    "Tester",
    "default_registry",
    "example_fingerprints",
    "lambda_nt",
    "session_key_for",
]
