"""A bounded cache of warm synthesis sessions, keyed by
:class:`~.keys.SessionKey`, evicting the cheapest-to-rebuild entry.

This is the piece that turns per-sequence pool reuse (PR 3) into
*cross-request* reuse: a finished request's :class:`~..tds.TdsSession`
— with its warm engine, pool entries, and enumeration frontier — is
released into the cache under its identity key, and a later request
whose examples extend the held prefix checks it out and skips
generations ``1..k`` through the engine's ``extend_examples`` path
instead of rebuilding the world cold.

Checkout is **exclusive**: :meth:`SessionCache.acquire` removes the
entry, so two concurrent requests can never mutate one session (the
loser of the race simply builds cold and both release afterwards — the
later release wins the slot). Matching follows the exact-prefix
contract of ``engine.keys``: an entry is eligible when its base key
matches and its example-fingerprint prefix is a plain prefix of the
request's; the longest held prefix wins. Reordered prefixes are *not*
matched here — order canonicalization lives inside the engine
(``PoolStore.reorder_examples``), where the column permutation is
sound; at this layer a different order is a different session.

**Eviction is cost-aware, not plain LRU.** Sessions are not equally
expensive to recreate: one that burned 30 DBS-seconds growing its pool
is worth far more than one that solved in 10ms, yet plain LRU would
evict whichever went longest unused. Each entry carries the session's
``rebuild_cost_s`` (its lifetime DBS seconds — exactly the work a cold
rebuild would repeat), and over capacity the cache evicts the entry
with the *smallest* cost, breaking ties by least-recent insertion. With
no cost signal (all zeros) this degrades to exactly the old LRU order.

**Persistence.** With a ``journal_path`` the cache writes one fsync'd
record per release through :class:`repro.exec.checkpoint.Journal`
(pickled ``(key, session)``, base64 in JSONL) and replays the journal
on construction, applying the same insert/evict discipline a live cache
would — so a SIGKILLed server restarted over the same journal comes
back with exactly the warm set it died with, minus at most the one
record the kill tore (which ``Journal.scan`` drops). Sessions that
resist pickling (e.g. a DSL built over closures) are cached in memory
only.
"""

from __future__ import annotations

import base64
import pickle
import threading
from collections import OrderedDict
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ...exec.checkpoint import Journal
from ...obs import metrics as obs_metrics
from ..dsl import Example
from .keys import SessionKey, example_fingerprints

# Journal records are versioned so a future layout change can skip (not
# crash on) old blobs.
_JOURNAL_VERSION = 1


class SessionCache:
    """Bounded cache of suspended, warm TDS sessions (thread-safe);
    evicts the cheapest-to-rebuild entry, LRU among ties."""

    def __init__(
        self,
        capacity: int = 8,
        metrics: Optional[obs_metrics.Registry] = None,
        journal_path: Optional[str] = None,
    ):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        self.capacity = capacity
        self.metrics = metrics if metrics is not None else obs_metrics.GLOBAL
        self._c_hit = self.metrics.counter("serve.cache.hit")
        self._c_miss = self.metrics.counter("serve.cache.miss")
        self._c_insert = self.metrics.counter("serve.cache.insert")
        self._c_evicted = self.metrics.counter("serve.cache.evicted")
        self._c_restored = self.metrics.counter("serve.cache.restored")
        self._lock = threading.RLock()
        self._entries: "OrderedDict[SessionKey, Any]" = OrderedDict()
        # Rebuild-cost estimate per entry (dbs-seconds the session has
        # spent over its lifetime); drives eviction order.
        self._costs: Dict[SessionKey, float] = {}
        self.journal_path = journal_path
        self._journal: Optional[Journal] = None
        if journal_path is not None:
            restored = self._replay_journal(journal_path)
            self._journal = Journal(journal_path, mode="a")
            self._c_restored.value += restored

    # -- checkout ------------------------------------------------------

    def acquire(
        self, base_key: SessionKey, examples: Sequence[Example]
    ) -> Tuple[Optional[Any], int]:
        """Check out the warm session holding the longest prefix of
        ``examples`` under ``base_key``; ``(session, matched)`` where
        ``matched`` is how many leading examples the session has already
        consumed, or ``(None, 0)`` on a miss. The entry is *removed* —
        the caller owns the session until it releases it back."""
        base = base_key.base()
        fps = example_fingerprints(examples)
        with self._lock:
            best_key: Optional[SessionKey] = None
            for key in self._entries:
                if key.base() != base:
                    continue
                held = key.examples
                if len(held) > len(fps) or fps[: len(held)] != held:
                    continue
                if best_key is None or len(held) > len(best_key.examples):
                    best_key = key
            if best_key is None:
                self._c_miss.value += 1
                return None, 0
            session = self._entries.pop(best_key)
            self._costs.pop(best_key, None)
            self._c_hit.value += 1
            return session, len(best_key.examples)

    def release(self, session: Any, key: Optional[SessionKey] = None) -> SessionKey:
        """Suspend ``session`` and insert it at the MRU end under its
        current identity key, evicting the cheapest-to-rebuild entry
        over capacity (least-recent among cost ties — which includes the
        new entry itself, so a trivial session never displaces an
        expensive one). Appends the release to the journal when one is
        configured."""
        if hasattr(session, "suspend"):
            session.suspend()
        if key is None:
            key = session.session_key()
        with self._lock:
            self._entries.pop(key, None)
            self._entries[key] = session
            self._costs[key] = float(
                getattr(session, "rebuild_cost_s", 0.0) or 0.0
            )
            self._c_insert.value += 1
            self._evict_over_capacity()
            if self._journal is not None:
                self._append_journal(key, session)
        return key

    def _evict_over_capacity(self) -> None:
        """Drop min-cost entries until within capacity (lock held).
        Strict ``<`` keeps the first-seen minimum, so equal-cost entries
        fall out in insertion (LRU) order — plain LRU when no session
        reports a cost."""
        while len(self._entries) > self.capacity:
            victim: Optional[SessionKey] = None
            victim_cost = 0.0
            for key in self._entries:
                cost = self._costs.get(key, 0.0)
                if victim is None or cost < victim_cost:
                    victim, victim_cost = key, cost
            self._entries.pop(victim)
            self._costs.pop(victim, None)
            self._c_evicted.value += 1

    # -- introspection -------------------------------------------------

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def keys(self) -> List[SessionKey]:
        with self._lock:
            return list(self._entries)

    def stats(self) -> Dict[str, int]:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": int(self._c_hit.value),
                "misses": int(self._c_miss.value),
                "inserts": int(self._c_insert.value),
                "evicted": int(self._c_evicted.value),
                "restored": int(self._c_restored.value),
            }

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._costs.clear()

    def close(self) -> None:
        with self._lock:
            if self._journal is not None:
                self._journal.close()
                self._journal = None

    def __enter__(self) -> "SessionCache":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    # -- journal persistence -------------------------------------------

    def _append_journal(self, key: SessionKey, session: Any) -> None:
        try:
            blob = pickle.dumps((key, session))
        except Exception:
            # In-memory only: something in the session (a closure-built
            # DSL, a foreign domain value) resists pickling. The live
            # cache still works; only restart warmth is lost for it.
            return
        self._journal.append(
            {
                "v": _JOURNAL_VERSION,
                "key": repr(key),
                "blob": base64.b64encode(blob).decode("ascii"),
            }
        )

    def _replay_journal(self, path: str) -> int:
        """Rebuild the cache from a journal, replaying releases in order
        with the live insert/evict discipline: the survivors are exactly
        the last ``capacity`` distinct keys, and the torn tail a kill
        left behind is truncated so later appends keep the file sound."""
        import os

        records, valid_bytes = Journal.scan(path)
        if os.path.exists(path):
            with open(path, "rb+") as fh:
                fh.truncate(valid_bytes)
        # Dedup to the last record per key first (a later release of the
        # same key always supersedes), then replay the survivors through
        # the live insert/evict discipline — cost-aware, so an expensive
        # old session outlives many cheap recent ones, exactly as it
        # would have in the cache that wrote the journal.
        last: "OrderedDict[str, Dict[str, Any]]" = OrderedDict()
        for record in records:
            if record.get("v") != _JOURNAL_VERSION or "key" not in record:
                continue
            last.pop(record["key"], None)
            last[record["key"]] = record
        for record in last.values():
            try:
                blob = base64.b64decode(record["blob"])
                key, session = pickle.loads(blob)
            except Exception:
                continue  # version drift / foreign record: skip, don't die
            self._entries.pop(key, None)
            self._entries[key] = session
            self._costs[key] = float(
                getattr(session, "rebuild_cost_s", 0.0) or 0.0
            )
            self._evict_over_capacity()
        return len(self._entries)
