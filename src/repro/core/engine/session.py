"""The cross-run synthesis session (orchestration layer).

A :class:`SynthesisSession` owns the persistent :class:`~.pool.PoolStore`
and :class:`~.enumerator.Enumerator` and threads them — together with
the per-run tester, budget, metrics registry, and tracer — through
consecutive DBS invocations of one TDS example sequence (Algorithm 1).

Per run, :meth:`SynthesisSession.begin_run` either

* builds the store cold (first run, or the run's options/examples are
  incompatible with what the store holds), or
* *extends* it: rebinds counters and budget, reconciles LaSy-function
  staleness, widens every cached value vector by the newly appended
  examples only (``PoolStore.extend_examples``), and re-seeds atoms and
  the current ``P_i``'s subexpressions into the store at the current
  generation — so iteration ``i+1`` starts from iteration ``i``'s
  enumeration frontier instead of from scratch.

The T(p)/B(g) conditional store and the tester are per-run (they depend
on the full example list and the run's budget); only the expression
store survives.
"""

from __future__ import annotations

from typing import Any, Dict, List, Mapping, Optional, Sequence

from ..budget import BudgetExhausted, CancelToken
from ..conditionals import ConditionalStore, guard_nts
from ..contexts import Context, hole_type
from ..dsl import Dsl, Example, Signature
from ..expr import Expr, free_vars
from ..types import types_compatible
from .enumerator import Enumerator
from .keys import SessionKey, options_fingerprint, session_key_for
from .pool import PoolOptions, PoolStore
from .registry import StrategyRegistry, default_registry
from .testing import Tester

REUSE_KEYS = ("reused", "invalidated", "revived", "refreshed", "pruned")


def _prefix_permutation(
    held: Sequence[Example], want: Sequence[Example]
) -> Optional[List[int]]:
    """``perm`` with ``held[perm[i]] == want[i]``, or None when ``want``
    is not a permutation of ``held``. Multiset matching by structural
    equality; duplicates pair up greedily (any pairing of equal examples
    is the same permutation of columns). O(n²), with n the example
    prefix — single digits in practice."""
    if len(held) != len(want):
        return None
    used = [False] * len(held)
    perm: List[int] = []
    for example in want:
        for j, candidate in enumerate(held):
            if not used[j] and candidate == example:
                used[j] = True
                perm.append(j)
                break
        else:
            return None
    return perm


def acceptable_nts(
    contexts: Sequence[Context], dsl: Dsl, options
) -> Dict[int, frozenset]:
    """Per context (by position), the nonterminal tags it accepts."""
    table: Dict[int, frozenset] = {}
    for i, ctx in enumerate(contexts):
        if ctx.hole_nt in dsl.nonterminals:
            table[i] = frozenset(dsl.expansion(ctx.hole_nt))
        else:
            table[i] = frozenset((ctx.hole_nt,))
    return table


class SynthesisSession:
    """Pool, tester, budget, metrics, and tracer for a DBS run — with
    the pool (and enumerator) persisting across runs."""

    def __init__(
        self,
        dsl: Dsl,
        signature: Signature,
        *,
        lasy_fns: Optional[Mapping[str, Any]] = None,
        lasy_signatures: Optional[Mapping[str, Signature]] = None,
        registry: Optional[StrategyRegistry] = None,
    ):
        self.dsl = dsl
        self.signature = signature
        # Shared with (and mutated by) the LaSy runner; the store's
        # refresh_lasy reconciles cached vectors against it per run.
        self.lasy_fns = lasy_fns if lasy_fns is not None else {}
        self.lasy_signatures = dict(lasy_signatures or {})
        self.registry = registry or default_registry()

        self.pool: Optional[PoolStore] = None
        self.enumerator: Optional[Enumerator] = None
        self.runs = 0
        # Lifetime pool.entries_* totals across runs (benchmarks and the
        # differential tests read these; per-run values live on each
        # run's metrics registry).
        self.reuse_totals: Dict[str, int] = {k: 0 for k in REUSE_KEYS}

        # Per-run state, populated by begin_run.
        self.contexts: List[Context] = []
        self.examples: List[Example] = []
        self.budget = None
        self.options = None
        self.stats = None
        self.tracer = None
        self.tester: Optional[Tester] = None
        self.store: Optional[ConditionalStore] = None
        self.guard_nts: frozenset = frozenset()
        self.acceptable: Dict[int, frozenset] = {}
        self.root_nt: Optional[str] = None
        self.all_set: frozenset = frozenset()
        self.max_branches = 1
        self.previous_program: Optional[Expr] = None
        self.last_store_size = (-1, -1)
        self.cancel: Optional[CancelToken] = None
        # A prefix permutation discovered by _extension_suffix, applied
        # by _extend_warm after the pool is re-bound (so the reorder's
        # dedup counters land on the current run's registry).
        self._pending_reorder: Optional[List[int]] = None
        # Cross-run (but strictly process-local) shard coordinator: kept
        # alive between runs so sharded DBS reuses warm worker replicas;
        # released by suspend — a cached session must not pin worker
        # processes. See engine.shard.
        self.shard_coord = None

    # -- identity / lifecycle ------------------------------------------

    def key(self, options: Any = None) -> SessionKey:
        """The session's explicit identity key (see ``engine.keys``):
        DSL, signature, LaSy-state fingerprint, pool options, and the
        example prefix the pool currently holds. ``options`` (a run- or
        cache-level options dataclass, e.g. ``TdsOptions``) is
        fingerprinted in when given."""
        pool = self.pool
        return session_key_for(
            getattr(self.dsl, "name", type(self.dsl).__name__),
            self.signature,
            lasy_fns=self.lasy_fns,
            lasy_names=self.lasy_signatures,
            pool_options=(
                options_fingerprint(pool.options) if pool is not None else ()
            ),
            options=options,
            examples=pool.examples if pool is not None else (),
        )

    def suspend(self) -> None:
        """Detach the session from its run so it can sit in a cache:
        per-run references (budget, registry-backed stats, tracer,
        tester, conditional store, cancel token) are released — a warm
        cached session must not pin a finished request's objects. The
        warm state (pool entries, enumerator generation, grids) is kept;
        the next :meth:`begin_run` reattaches everything."""
        self.budget = None
        self.stats = None
        self.tracer = None
        self.tester = None
        self.store = None
        self.cancel = None
        self.contexts = []
        self.acceptable = {}
        self.previous_program = None
        self._pending_reorder = None
        self.close_shard_coordinator()
        if self.pool is not None:
            self.pool.previous_program = None
            self.pool.guard_sets = []
            self.pool.suspend()

    def shard_coordinator(self, jobs: int, min_cost: int):
        """The session's shard coordinator for a run at ``jobs`` workers,
        creating (or re-creating, if the worker count changed) it on
        demand. Kept across runs so worker replicas stay warm and are
        synced with deltas instead of fresh snapshots."""
        from .shard import ShardCoordinator

        coord = self.shard_coord
        if coord is not None and (coord.jobs != jobs or coord.closed):
            coord.close()
            coord = None
        if coord is None:
            coord = ShardCoordinator(jobs, min_cost=min_cost)
            self.shard_coord = coord
        coord.min_cost = min_cost
        return coord

    def close_shard_coordinator(self) -> None:
        """Reap shard workers (and absorb their trace shards), if any."""
        coord, self.shard_coord = self.shard_coord, None
        if coord is not None:
            coord.close()

    def __getstate__(self):
        # Suspend-equivalent for transport: per-run references are not
        # picklable (tracers hold files, budgets hold monotonic
        # deadlines) and must not travel; the pool and enumerator have
        # their own __getstate__ that preserves the warm search state.
        state = self.__dict__.copy()
        for name in (
            "budget",
            "stats",
            "tracer",
            "tester",
            "store",
            "cancel",
            "shard_coord",
        ):
            state[name] = None
        state["contexts"] = []
        state["acceptable"] = {}
        state["previous_program"] = None
        state["_pending_reorder"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.shard_coord = None
        if self.pool is not None:
            # The pool re-binds to private counters on unpickle; keep
            # the shared-mapping invariant (session and pool must see
            # the same lasy_fns object).
            self.pool.lasy_fns = self.lasy_fns

    # -- run lifecycle -------------------------------------------------

    def begin_run(
        self,
        *,
        contexts: Sequence[Context],
        examples: Sequence[Example],
        seeds: Sequence[Expr],
        budget,
        options,
        stats,
        tracer,
        previous_program: Optional[Expr] = None,
        max_branches: int = 1,
    ) -> "SynthesisSession":
        self.contexts = list(contexts)
        self.examples = list(examples)
        self.budget = budget
        self.options = options
        self.stats = stats
        self.tracer = tracer
        self.previous_program = previous_program
        self.max_branches = max_branches
        self.cancel = None
        self.last_store_size = (-1, -1)
        self._pending_reorder = None

        pool_options = PoolOptions(
            use_dsl=options.use_dsl,
            semantic_dedup=options.semantic_dedup,
        )
        pool = self.pool
        if pool is not None and not pool.compatible_options(pool_options):
            pool = self.pool = None
        suffix = self._extension_suffix(pool) if pool is not None else None
        if pool is None or suffix is None:
            self._build_cold(seeds, pool_options)
        else:
            try:
                self._extend_warm(suffix, seeds)
            except BudgetExhausted:
                # A deadline that fires mid-extension leaves the store
                # half-widened; drop it so the next run rebuilds cold
                # instead of reusing inconsistent vectors.
                self.pool = None
                self.enumerator = None
                raise
        pool = self.pool
        assert pool is not None
        pool.previous_program = previous_program
        pool.guard_sets = []
        # Per-run enumeration-mode override (DbsOptions.enum_mode); the
        # warm path reuses the enumerator across runs, so rebind every
        # begin_run rather than only at construction.
        assert self.enumerator is not None
        self.enumerator.enum_mode = getattr(options, "enum_mode", None)

        self.store = ConditionalStore(len(self.examples))
        self.guard_nts = guard_nts(self.dsl)
        self.all_set = frozenset(range(len(self.examples)))
        self.acceptable = acceptable_nts(self.contexts, self.dsl, options)
        self.root_nt = next(
            (ctx.hole_nt for ctx in self.contexts if ctx.is_trivial),
            self.dsl.start,
        )
        self.tester = Tester(
            self.signature,
            self.examples,
            self.lasy_fns,
            options,
            stats,
            budget,
            previous_program=previous_program,
        )
        self.runs += 1
        return self

    def _extension_suffix(self, pool: PoolStore) -> Optional[List[Example]]:
        """The examples to append, or None when the run's example list is
        not an extension of the store's (the store only ever widens).

        A run whose prefix is a *permutation* of the held examples still
        extends the store: the pool's state is per-example columns over
        an example multiset (see ``PoolStore.reorder_examples``), so the
        held columns are reordered to the run's order instead of
        rebuilding cold. The reorder itself is deferred until
        ``_extend_warm`` has re-bound the pool to this run's registry.
        """
        held = pool.examples
        if len(self.examples) < len(held):
            return None
        prefix = self.examples[: len(held)]
        if prefix != held:
            perm = _prefix_permutation(held, prefix)
            if perm is None:
                return None
            self._pending_reorder = perm
        return self.examples[len(held):]

    def _build_cold(self, seeds: Sequence[Expr], pool_options) -> None:
        with self.tracer.span(
            "dbs.enumerate", generation=0, production="<atoms>"
        ) as span:
            self.pool = PoolStore(
                self.dsl,
                self.signature,
                self.examples,
                lasy_fns=self.lasy_fns,
                lasy_signatures=self.lasy_signatures,
                options=pool_options,
                budget=self.budget,
                metrics=self.stats.registry,
            )
            self.enumerator = Enumerator(self.pool)
            self.enumerator.seed(seeds)
            span.set(
                offered=self.budget.expressions, added=self.pool.total()
            )

    def _extend_warm(self, suffix: Sequence[Example], seeds) -> None:
        pool = self.pool
        pool.bind(self.stats.registry, self.budget)
        reordered = 0
        if self._pending_reorder is not None:
            pool.reorder_examples(self._pending_reorder)
            reordered = len(self._pending_reorder)
            self._pending_reorder = None
        with self.tracer.span(
            "pool.extend",
            examples=len(self.examples),
            appended=len(suffix),
            reordered=reordered,
            entries=pool.total(),
        ) as span:
            refreshed = pool.refresh_lasy()
            report = pool.extend_examples(suffix, seeds=seeds)
            offered_before = self.budget.expressions
            # Re-seed: constants derived from the appended examples and
            # P_i's subexpressions enter at the current generation, so
            # the next advance composes over them (Algorithm 1: "the
            # effort to build it in previous iterations is not wasted").
            # The nested span keeps the report invariant that every
            # budget expression charge falls inside a dbs.enumerate (or
            # dbs.strategies) span.
            with self.tracer.span(
                "dbs.enumerate",
                generation=pool.generation,
                production="<atoms>",
            ) as seed_span:
                self.enumerator.seed(seeds)
                seed_span.set(
                    offered=self.budget.expressions - offered_before,
                    added=pool.total(),
                )
            span.set(
                seeded=self.budget.expressions - offered_before,
                refreshed=refreshed,
                **report,
            )
        report["refreshed"] = refreshed
        for key in REUSE_KEYS:
            self.reuse_totals[key] += report.get(key, 0)

    def cancelled(self) -> bool:
        return self.cancel is not None and self.cancel.is_set()

    # -- candidate testing ---------------------------------------------

    def test_batch(self, exprs, span=None) -> Optional[Expr]:
        """Plug each expression into each compatible context; return a
        program satisfying every example, else record T(p)/B(g) and None.

        ``exprs`` may be any iterable (including a lazy pool view); the
        batch size is attached to ``span`` as it becomes known.
        """
        options = self.options
        tester = self.tester
        store = self.store
        contexts = self.contexts
        acceptable = self.acceptable
        use_dsl = options.use_dsl
        guards = self.guard_nts
        budget = self.budget
        count = 0
        try:
            for expr in exprs:
                count += 1
                if not count & 63:
                    # Guard-only stretches of a batch never charge the
                    # budget; this periodic check bounds the hard
                    # deadline's overshoot to 64 guard evaluations.
                    budget.check_deadline()
                expr_free = free_vars(expr)
                is_guard = (
                    expr.nt in guards if use_dsl else expr.nt == "τ:bool"
                )
                if is_guard and not expr_free:
                    true_set, errors = tester.guard_sets(expr)
                    store.record_guard(expr, true_set, errors)
                    tester._guard_records.value += 1
                for i, ctx in enumerate(contexts):
                    if use_dsl:
                        if expr.nt not in acceptable[i]:
                            continue
                    else:
                        expr_type = hole_type(self.dsl, expr)
                        if expr_type is None or not types_compatible(
                            ctx.hole_type, expr_type
                        ):
                            continue
                    program = ctx.plug(expr)
                    if free_vars(program):
                        continue
                    passed = tester.passed_set(program)
                    if len(passed) == len(tester.examples) and tester.examples:
                        return program
                    store.record_program(program, passed)
                    tester._program_records.value += 1
                    angelic = tester.angelic_passed_set(program)
                    if angelic and angelic != passed:
                        store.record_program(program, angelic)
        finally:
            if span is not None:
                span.set(batch=count)
        return None
