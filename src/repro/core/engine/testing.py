"""Candidate testing against the example suite (testing layer).

:class:`Tester` evaluates candidate programs, computing the paper's
T(p) sets (§5.2) and guard B(g) sets, with the angelic-recursion oracle
for branch bodies of recursive programs.
"""

from __future__ import annotations

from time import perf_counter
from typing import Mapping, Optional, Sequence, Tuple

from ..budget import Budget, BudgetExhausted
from ..dsl import Example, Signature
from ..evaluator import EvaluationError, run_program
from ..expr import Expr, is_recursive
from ..values import ERROR, structurally_equal

# Metric names shared with DbsStats (kept as literals to avoid a
# circular import with repro.core.dbs).
PROGRAMS_TESTED = "dbs.programs_tested"


class Tester:
    """Evaluates candidate programs against the examples."""

    def __init__(
        self,
        signature: Signature,
        examples: Sequence[Example],
        lasy_fns: Mapping,
        options,
        stats,
        budget: Budget,
        previous_program: Optional[Expr] = None,
    ):
        self.signature = signature
        self.examples = list(examples)
        self.lasy_fns = lasy_fns
        self.options = options
        self.stats = stats
        self.budget = budget
        self.previous_program = previous_program
        self._tested = stats.registry.counter(PROGRAMS_TESTED)
        self._guard_records = stats.registry.counter(
            "dbs.cond.guards_recorded"
        )
        self._program_records = stats.registry.counter(
            "dbs.cond.programs_recorded"
        )
        # Per-TDS-example cost attribution (report-trace --hotspots):
        # which example index the evaluation time and the candidate
        # rejections go to. Detailed runs only — the off path pays one
        # bool test per example evaluation and registers nothing.
        self._detailed = stats.registry.detailed
        if self._detailed:
            self._ex_seconds = stats.registry.histogram(
                "prof.example.seconds"
            )
            self._ex_evals = stats.registry.counter("prof.example.evals")
            self._ex_rejections = stats.registry.counter(
                "prof.example.rejections"
            )
        # Once the generation budget is exhausted we still want to test
        # whatever the pool already built (the partial last generation);
        # the grace counter bounds that final sweep.
        self._grace = 8_000

    def _charge(self) -> None:
        self._tested.value += 1
        try:
            self.budget.charge_program()
        except BudgetExhausted:
            # The grace window only outlives *soft* budgets; the hard
            # deadline (DbsOptions.timeout_s, cancellation) truncates
            # the sweep immediately.
            self.budget.check_deadline()
            self._grace -= 1
            if self._grace < 0:
                raise

    def _run_attributed(self, program: Expr, index: int, example: Example):
        start = perf_counter()
        value = self._run(program, example)
        self._ex_seconds.observe(perf_counter() - start, index=index)
        self._ex_evals.inc(1, index=index)
        return value

    def passed_set(self, program: Expr) -> frozenset:
        """T(p): indices of examples the program handles."""
        self._charge()
        passed = set()
        detailed = self._detailed
        for index, example in enumerate(self.examples):
            if detailed:
                value = self._run_attributed(program, index, example)
            else:
                value = self._run(program, example)
            if value is not ERROR and structurally_equal(value, example.output):
                passed.add(index)
        return frozenset(passed)

    def angelic_passed_set(self, program: Expr) -> frozenset:
        """T(p) with recursive calls answered angelically: from the
        example table first (the examples are ground truth for the
        function being synthesized), then by running the previous
        program. A recursive branch body without its base case diverges
        under true self-recursion; this lets the conditional strategy
        still observe which examples the branch would handle."""
        if not is_recursive(program):
            return frozenset()
        self._charge()
        oracle = self._recursion_oracle()
        passed = set()
        for index, example in enumerate(self.examples):
            value = self._run(program, example, recursion_oracle=oracle)
            if value is not ERROR and structurally_equal(value, example.output):
                passed.add(index)
        return frozenset(passed)

    def _recursion_oracle(self):
        from ..evaluator import EvaluationError as _EE
        from ..values import freeze as _freeze

        table = {
            _freeze(example.args): _freeze(example.output)
            for example in self.examples
        }
        previous = self.previous_program

        def oracle(args):
            if args in table:
                return table[args]
            if previous is not None:
                return run_program(
                    previous,
                    self.signature.param_names,
                    args,
                    lasy_fns=self.lasy_fns,
                    fuel=self.options.evaluation_fuel,
                    max_depth=self.options.max_recursion_depth,
                )
            raise _EE("angelic recursion: input not in example table")

        return oracle

    def passes_all(self, program: Expr) -> bool:
        self._charge()
        detailed = self._detailed
        for index, example in enumerate(self.examples):
            if detailed:
                value = self._run_attributed(program, index, example)
            else:
                value = self._run(program, example)
            if value is ERROR or not structurally_equal(value, example.output):
                if detailed:
                    # The first failing index: which example does the
                    # rejecting (the example-ordering signal).
                    self._ex_rejections.inc(1, index=index)
                return False
        return True

    def _run(self, program: Expr, example: Example, recursion_oracle=None):
        try:
            return run_program(
                program,
                self.signature.param_names,
                example.args,
                lasy_fns=self.lasy_fns,
                fuel=self.options.evaluation_fuel,
                max_depth=self.options.max_recursion_depth,
                recursion_oracle=recursion_oracle,
            )
        except EvaluationError:
            return ERROR

    def guard_sets(self, guard: Expr) -> Tuple[frozenset, frozenset]:
        """(B(g), error set) for a boolean expression."""
        true_set = set()
        errors = set()
        for index, example in enumerate(self.examples):
            value = self._run(guard, example)
            if value is ERROR:
                errors.add(index)
            elif value is True:
                true_set.add(index)
        return frozenset(true_set), frozenset(errors)
