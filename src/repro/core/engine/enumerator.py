"""Grammar-driven expression generation (§5.1, generation layer).

Each :meth:`Enumerator.advance` runs one iteration of Algorithm 2's
"generate new expressions" step over a :class:`~.pool.PoolStore` the
enumerator does *not* own: every production is instantiated with every
valid combination of stored expressions *in which at least one argument
is from the newest generation*, so all smaller expressions are produced
before larger ones and no combination is rebuilt.

Because freshness is a generation tag on the entries, the enumerator is
naturally incremental: atoms or seeds admitted into a persistent store
between runs (new constants from an appended example, subexpressions of
the current ``P_i``, revived shadow entries) carry the current
generation and become the fresh set of the next advance, so enumeration
continues where the previous run stopped instead of starting over.

When ``use_dsl`` is off (the "no DSL" ablation of §6.3, and the
sketch-like baseline) the grammar is ignored and argument slots accept
any expression of a compatible *type*, exactly the weaker search the
paper compares against.

**Batched mode** (the default; ``REPRO_ENUM=classic`` or
:func:`set_enum_mode` selects the reference path). For an eager call
production every child entry already carries its cached value vector,
so the candidate's vector is obtained by one column-wise application of
the component (:func:`repro.core.compile.compile_batch`) — no ``Expr``
is allocated, hashed, canonicalized, or walked first. Observational
duplicates are rejected on the interned signature of that vector alone;
the expression is materialized lazily from the ``(production,
child-entries)`` tuple only for survivors (and for semantic losers that
still fit the revival shadow list, which must be hash-consed exactly as
the classic path leaves them). Productions the batch compiler cannot
handle — lazy components, lambda-taking slots, recursion, unbound LaSy
callees — fall back to the classic per-candidate pipeline, so both
modes synthesize identical programs (``tests/test_enum_batched.py``
holds them to that).
"""

from __future__ import annotations

import itertools
import os
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Sequence, Tuple

from ...obs.profile import get_progress
from ...obs.trace import get_tracer
from ..compile import compile_batch, compile_lasy_batch
from ..dsl import LambdaSpec, NtRef, Production
from ..evaluator import check_value_size
from ..expr import Call, Const, Expr, Lambda, LasyCall, Param, Recurse, Var, free_vars
from ..types import types_compatible
from ..values import ERROR, freeze
from .pool import PoolEntry, PoolStore, _value_type

# ---------------------------------------------------------------------
# Enumeration-mode switch, mirroring evaluator.REPRO_EVAL: the batched
# value-vector path is a pure optimization, and the classic path stays
# selectable for differential tests, A/B timing, and as a safety hatch.

_ENUM_MODE = "classic" if os.environ.get("REPRO_ENUM") == "classic" else "batched"


def set_enum_mode(mode: str) -> str:
    """Select ``"batched"`` or ``"classic"``; returns the previous mode."""
    global _ENUM_MODE
    if mode not in ("batched", "classic"):
        raise ValueError(f"unknown enum mode {mode!r}")
    previous = _ENUM_MODE
    _ENUM_MODE = mode
    return previous


def get_enum_mode() -> str:
    return _ENUM_MODE


def _production_label(prod: Production) -> str:
    """Stable human-readable production tag for spans and reports."""
    if prod.kind == "lasy_fn":
        return f"{prod.nt}<-_LASY_FN"
    if prod.kind == "recurse":
        return f"{prod.nt}<-_RECURSE"
    name = prod.func.name if prod.func is not None else prod.kind
    return f"{prod.nt}<-{name}"


def lambda_nt(spec: LambdaSpec) -> str:
    """The synthetic nonterminal tag for inline lambda arguments."""
    vars_part = ",".join(spec.var_names)
    return f"lambda({vars_part}:{spec.body_nt})"


class Enumerator:
    """Generates expression generations into a borrowed store."""

    def __init__(self, store: PoolStore, enum_mode: Optional[str] = None):
        self.store = store
        # Per-run override (DbsOptions.enum_mode, rebound by the session
        # each begin_run); None defers to the process-wide REPRO_ENUM
        # default.
        self.enum_mode = enum_mode
        # Argument-slot generation splits, valid for one advance only
        # (see _split_candidates).
        self._slot_cache: Dict[Any, Tuple] = {}
        # True while a batched-mode advance is in flight: offers from
        # this enumerator may then compute sampled fingerprints from the
        # pool's memoized grids (classic mode stays the reference path).
        self._fast_sampling = False
        # Bound by ShardCoordinator.attach when a run shards generations
        # across worker processes; None means every advance is serial.
        self.shard_coord = None

    def __getstate__(self):
        # The slot cache is valid for one advance only and holds raw
        # entry-list aliases; never ship it. An advance is never in
        # flight across a pickle, so the sampling flag resets too. The
        # shard coordinator owns live worker processes and is strictly
        # parent-side state.
        state = self.__dict__.copy()
        state["_slot_cache"] = {}
        state["_fast_sampling"] = False
        state["shard_coord"] = None
        return state

    # -- seeding -------------------------------------------------------

    def seed(self, seeds: Iterable[Expr] = ()) -> None:
        """Offer the atoms (params, constants, nullary calls, lambda
        variables) and the caller's seed expressions.

        Idempotent over a persistent store — duplicates fall to the
        syntactic seen-set — which is exactly what a warm run needs:
        constants derived from newly appended examples and the current
        ``P_i``'s subexpressions enter at the store's current generation.
        """
        store = self.store
        if store.options.use_dsl:
            for prod in store.dsl.productions:
                if prod.kind == "param":
                    self._add_params(prod.nt)
                elif prod.kind == "constant":
                    self._add_constants(prod.nt)
                elif prod.kind == "var":
                    self._add_var(prod.nt, prod.var_name or "")
                elif prod.kind == "call" and prod.func and not prod.args:
                    store.offer(Call(prod.func, (), prod.nt))
        else:
            self._seed_atoms_untyped()
        for seed in seeds:
            store.offer(seed)

    def _seed_atoms_untyped(self) -> None:
        """Type-only atoms for the no-DSL mode: every param, every
        constant, every lambda variable, tagged with pseudo-nonterminals."""
        store = self.store
        for name, ty in store.signature.params:
            store.offer(Param(name, ty, store._type_nt(ty)))
        for value in store.all_constants():
            ty = _value_type(value, store.dsl)
            store.offer(Const(value, ty, store._type_nt(ty)))
        for vname, vty in store.dsl.lambda_vars.items():
            store.offer(Var(vname, vty, store._type_nt(vty)))
        for prod in store.dsl.productions:
            if prod.kind == "call" and prod.func and not prod.args:
                func = prod.func
                store.offer(Call(func, (), store._type_nt(func.return_type)))

    def _add_params(self, nt: str) -> None:
        store = self.store
        nt_type = store.dsl.type_of(nt)
        for name, ty in store.signature.params:
            if types_compatible(nt_type, ty):
                store.offer(Param(name, ty, nt))

    def _add_constants(self, nt: str) -> None:
        store = self.store
        nt_type = store.dsl.type_of(nt)
        for value in store.constants_for(nt):
            store.offer(Const(value, nt_type, nt))

    def _add_var(self, nt: str, var_name: str) -> None:
        store = self.store
        vty = store.dsl.lambda_vars.get(var_name)
        if vty is None:
            return
        store.offer(Var(var_name, vty, nt))

    # -- generation ----------------------------------------------------

    def advance(self) -> List[Expr]:
        """Run one generation of expression composition; returns the new
        (deduplicated) expressions added this generation.

        On budget exhaustion the partial generation is returned (and the
        store's ``exhausted`` flag set) so DBS can still test what was
        built before reporting TIMEOUT."""
        added: List[Expr] = []
        for batch in self.advance_batches():
            added.extend(batch)
        return added

    def advance_batches(self) -> Iterable[List[Expr]]:
        """Like :func:`advance` but yields per-production batches, so the
        caller can test candidates as soon as their production finishes
        rather than after the whole (possibly enormous) generation."""
        from ..budget import BudgetExhausted

        store = self.store
        store.generation += 1
        # Until the generator runs to completion, the generation is
        # incomplete (budget death, or the caller stopped consuming on a
        # solve); a warm run redoes it — see PoolStore.bind.
        store.incomplete_generation = True
        # Whether this generation is the redo of one interrupted in a
        # previous run (PoolStore.bind armed the flag when stepping the
        # generation counter back). Published on completion so DBS's
        # dry-generation check knows a zero-add redo is inconclusive.
        redone = store.pending_redo
        store.pending_redo = False
        store.last_generation_redone = False
        if store.budget.exhausted():
            store.exhausted = True
            return
        store.exhausted = False
        tracer = get_tracer()
        batched = self._resolve_mode() == "batched"
        self._fast_sampling = batched
        self._slot_cache.clear()
        store.clear_partitions()
        try:
            if store.options.use_dsl:
                # Cheapest productions first: a huge production must not
                # starve the small ones (and the solution is more often
                # within reach of a small production's fresh combos).
                from .shard import _generation_productions

                ordered = sorted(
                    _generation_productions(store.dsl),
                    key=self._production_cost,
                )
                coord = self.shard_coord
                if coord is not None:
                    # Sharded advance: workers enumerate disjoint ordinal
                    # strides of this generation against replicas, and
                    # the coordinator replays the merged survivors here.
                    # None means "run it serially" (generation too
                    # small, or sharding permanently disabled after an
                    # infrastructure failure) with the pool untouched.
                    shard_gen = coord.try_generation(self, ordered, redone)
                    if shard_gen is not None:
                        yield from shard_gen
                        return
                prog = get_progress()
                for prod in ordered:
                    use_batched = batched and self._batchable(prod)
                    if tracer.enabled:
                        batch = self._expand_traced(prod, tracer, use_batched)
                    else:
                        batch = self._expand(prod, use_batched)
                    if prog is not None and prog.due():
                        prog.tick(
                            generation=store.generation,
                            pool_size=store.total(),
                            candidates=store.budget.expressions,
                            deadline_s=store.budget.time_remaining(),
                        )
                    if batch:
                        yield batch
            else:
                batch = self._expand_untyped()
                if batch:
                    yield batch
        except BudgetExhausted:
            store.exhausted = True
            return
        store.incomplete_generation = False
        store.last_generation_redone = redone

    def _resolve_mode(self) -> str:
        mode = self.enum_mode or get_enum_mode()
        if mode not in ("batched", "classic"):
            raise ValueError(f"unknown enum mode {mode!r}")
        return mode

    def _batchable(self, prod: Production) -> bool:
        """Whether a production can take the batched value-vector path:
        an eager call (or LaSy call) over plain nonterminal slots.
        Lambda-taking slots need an Env, recursion carries no vectors,
        and with no examples there is nothing to batch over."""
        if not self.store.examples:
            return False
        if prod.kind == "lasy_fn":
            return True  # unbound callees fall back per name
        return (
            prod.kind == "call"
            and prod.func is not None
            and not prod.func.lazy
            and not any(isinstance(a, LambdaSpec) for a in prod.args)
        )

    def _expand(self, prod: Production, batched: bool = False) -> List[Expr]:
        if prod.kind == "lasy_fn":
            return self._expand_lasy(prod, batched)
        if batched:
            return self._expand_batched(prod)
        return self._expand_production(prod)

    def _expand_traced(
        self, prod: Production, tracer, batched: bool = False
    ) -> List[Expr]:
        """One production under a ``dbs.enumerate`` (classic) or
        ``dbs.enum.batched`` span — distinct names so trace reports
        split the two paths' time. The ``offered`` count is attached
        even when the budget dies mid-expansion, so the report's
        expression attribution stays complete.

        When the run records detailed metrics (tracing on), the same
        deltas also land in ``prof.production.*`` labeled instruments —
        counter snapshots around the expansion, so the inner loops stay
        untouched — which merge across worker shards and feed the
        ``report-trace --hotspots`` production table."""
        store = self.store
        label = _production_label(prod)
        detailed = store._detailed
        with tracer.span(
            "dbs.enum.batched" if batched else "dbs.enumerate",
            generation=store.generation,
            production=label,
        ) as span:
            before = store.budget.expressions
            if detailed:
                added_before = store._c_added.value
                sem_before = store._c_semantic.value
                t0 = perf_counter()
            batch: List[Expr] = []
            try:
                batch = self._expand(prod, batched)
            finally:
                offered = store.budget.expressions - before
                span.set(offered=offered, added=len(batch))
                if detailed:
                    metrics = store.metrics
                    metrics.histogram("prof.production.seconds").observe(
                        perf_counter() - t0, production=label
                    )
                    if offered:
                        metrics.counter("prof.production.offered").inc(
                            offered, production=label
                        )
                    admitted = store._c_added.value - added_before
                    if admitted:
                        metrics.counter("prof.production.admitted").inc(
                            admitted, production=label
                        )
                    sig_rejected = store._c_semantic.value - sem_before
                    if sig_rejected:
                        metrics.counter("prof.production.sig_rejected").inc(
                            sig_rejected, production=label
                        )
            return batch

    def _production_cost(self, prod: Production) -> int:
        """Estimated combination count for this production this
        generation (product of slot pool sizes)."""
        store = self.store
        cost = 1
        for arg in prod.args:
            if isinstance(arg, NtRef):
                size = sum(
                    len(store._entries.get(name, ()))
                    for name in store.dsl.expansion(arg.nt)
                )
            elif isinstance(arg, LambdaSpec):
                size = len(store._entries.get(arg.body_nt, ()))
            else:
                size = 1
            cost *= max(size, 1)
            if cost > 10**12:
                break
        return cost

    def _expand_production(self, prod: Production) -> List[Expr]:
        store = self.store
        split_slots = [self._split_candidates(arg) for arg in prod.args]
        if any(not slot[2] for slot in split_slots):
            return []
        added: List[Expr] = []
        fast_path = (
            prod.kind == "call"
            and prod.func is not None
            and not prod.func.lazy
            and not any(isinstance(a, LambdaSpec) for a in prod.args)
        )
        for combo in self._split_combinations(split_slots):
            if prod.kind == "call":
                assert prod.func is not None
                expr: Optional[Expr] = Call(
                    prod.func, tuple(e.expr for e in combo), prod.nt
                )
                values = (
                    self._apply_values(prod.func, combo) if fast_path else None
                )
            else:  # recurse
                expr = self._build_recurse(prod, combo)
                values = None
            if expr is None:
                continue
            result = store.offer(
                expr, values, sampled_fast=self._fast_sampling
            )
            if result is not None:
                added.append(result)
        return added

    def _expand_batched(self, prod: Production) -> List[Expr]:
        """Batched expansion of one eager call production (see
        :meth:`_batched_combos` for the loop itself)."""
        store = self.store
        func = prod.func
        assert func is not None
        batch_fn = compile_batch(func)
        if batch_fn is None:  # lazy component: vectors can't feed thunks
            return self._expand_production(prod)
        split_slots = [self._split_candidates(arg) for arg in prod.args]
        if any(not slot[2] for slot in split_slots):
            return []
        nt = prod.nt

        def make_expr(children: Tuple[Expr, ...]) -> Expr:
            return Call(func, children, nt)

        return self._batched_combos(nt, split_slots, batch_fn, make_expr)

    def _batched_combos(
        self, nt: str, split_slots: List[Tuple], batch_fn, make_expr
    ) -> List[Expr]:
        """The batched inner loop: per fresh combination, compute the
        candidate's value vector straight from the cached child vectors
        with one vectorized ``batch_fn`` call and dedup on the interned
        signature; only survivors (and shadow-worthy semantic losers)
        are materialized as expressions via ``make_expr``. Candidate
        accounting (budget charge, offered/rejected/semantic counters,
        admission filter) mirrors the classic :meth:`PoolStore.offer`
        pipeline step for step, so the two modes exhaust budgets at the
        same points and leave identical pools."""
        store = self.store
        examples = store.examples
        n_examples = len(examples)
        budget = store.budget
        dedup = store.options.semantic_dedup
        predicate = store.dsl.admission_filters.get(nt)
        max_size = store.options.max_expr_size
        seen = store._seen_semantic.setdefault(nt, set()) if dedup else ()
        detailed = store._detailed
        c_offered = store._c_offered
        c_batched = store._c_batched
        c_materialized = store._c_materialized
        c_applies = store._c_applies
        c_rejected = store._c_rejected
        c_semantic = store._c_semantic
        # Heartbeats from the hottest loop in the engine: the common
        # prog-is-None case costs one comparison every combo, the
        # installed case one extra clock read every 2048 combos.
        prog = get_progress()
        # Shard-capture mode (worker replica): the per-candidate work up
        # to and including the admission filter runs here as usual, then
        # the candidate is recorded for the parent's replay instead of
        # entering the live dedup/admission tail.
        capture = store._shard_capture
        combo_n = 0
        added: List[Expr] = []
        for combo in self._split_combinations(split_slots):
            if prog is not None:
                combo_n += 1
                if not combo_n & 2047 and prog.due():
                    prog.tick(
                        generation=store.generation,
                        pool_size=store.total(),
                        candidates=budget.expressions,
                        deadline_s=budget.time_remaining(),
                    )
            for entry in combo:
                if entry.values is None:
                    # A child without a cached vector (free lambda
                    # variables in a subtree): the candidate is not
                    # closed, so the whole classic admission pipeline
                    # applies to it — but its sampled fingerprint can
                    # come from the memoized grids instead of a fresh
                    # per-candidate evaluation.
                    expr = make_expr(tuple(e.expr for e in combo))
                    c_materialized.value += 1
                    result = store.offer(expr, sampled_fast=True)
                    if result is not None:
                        added.append(result)
                    break
            else:
                budget.charge_expression()
                c_offered.value += 1
                size = 1
                for entry in combo:
                    size += entry.expr.size
                if size > max_size:
                    c_rejected.value += 1
                    if detailed:
                        c_rejected.label(reason="size", nt=nt)
                    continue
                values = batch_fn(*[e.values for e in combo])
                c_batched.value += 1
                c_applies.value += n_examples
                if predicate is not None and not predicate(values, examples):
                    c_rejected.value += 1
                    if detailed:
                        c_rejected.label(reason="filter", nt=nt)
                    continue
                if capture is not None:
                    capture.batched(nt, combo, values, make_expr)
                    continue
                sig = sig_cols = None
                if dedup:
                    sig, sig_cols = store.vector_sig(nt, values)
                    if sig is not None and sig in seen:
                        c_semantic.value += 1
                        if detailed:
                            c_semantic.label(nt=nt)
                        if store.shadow_has_room(nt):
                            expr = make_expr(tuple(e.expr for e in combo))
                            c_materialized.value += 1
                            store.shadow_batched(expr, values, sig, sig_cols)
                        continue
                expr = make_expr(tuple(e.expr for e in combo))
                c_materialized.value += 1
                result = store.admit_batched(expr, values, sig, sig_cols)
                if result is not None:
                    added.append(result)
        return added

    def _apply_values(
        self, func, combo: Sequence[PoolEntry]
    ) -> Optional[Tuple[Any, ...]]:
        """Value vector of ``func`` applied to cached child vectors, or
        None when some child has no cached vector."""
        store = self.store
        child_vectors = []
        for entry in combo:
            if entry.values is None:
                return None
            child_vectors.append(entry.values)
        out: List[Any] = []
        store._c_applies.value += len(store.examples)
        for i in range(len(store.examples)):
            args = [vec[i] for vec in child_vectors]
            if any(a is ERROR for a in args):
                out.append(ERROR)
                continue
            try:
                out.append(check_value_size(freeze(func.fn(*args))))
            except Exception:
                out.append(ERROR)
        return tuple(out)

    def _build_recurse(
        self, prod: Production, combo: Sequence[PoolEntry]
    ) -> Optional[Expr]:
        store = self.store
        expected = store.signature.param_types
        arg_types = tuple(
            store.dsl.type_of(a.nt) for a in prod.args if isinstance(a, NtRef)
        )
        if len(arg_types) != len(expected) or not all(
            types_compatible(e, a) for e, a in zip(expected, arg_types)
        ):
            return None
        return Recurse(tuple(e.expr for e in combo), prod.nt)

    def _expand_untyped(self) -> List[Expr]:
        store = self.store
        added: List[Expr] = []
        for func in store.dsl.functions():
            slots: List[List[PoolEntry]] = []
            feasible = True
            has_lambda = False
            for pty in func.param_types:
                if pty.is_function:
                    has_lambda = True
                    candidates = self._lambda_candidates(pty)
                else:
                    candidates = [
                        entry
                        for t, entries in store._by_type.items()
                        if types_compatible(pty, t)
                        for entry in entries
                    ]
                if not candidates:
                    feasible = False
                    break
                slots.append(candidates)
            if not feasible:
                continue
            fast_path = not func.lazy and not has_lambda
            for combo in self._fresh_combinations(slots):
                nt = store._type_nt(func.return_type)
                expr = Call(func, tuple(e.expr for e in combo), nt)
                values = self._apply_values(func, combo) if fast_path else None
                result = store.offer(expr, values)
                if result is not None:
                    added.append(result)
        return added

    def _lambda_candidates(self, fun_type) -> List[PoolEntry]:
        """In no-DSL mode, wrap pooled bodies in lambdas matching a
        function-typed parameter, using the grammar's lambda variables."""
        store = self.store
        out: List[PoolEntry] = []
        for spec in store._lambda_specs:
            body_ty = store.dsl.type_of(spec.body_nt)
            from ..types import fun_n

            if fun_n(spec.var_types, body_ty) != fun_type:
                continue
            params = tuple(
                Var(n, t, store._type_nt(t))
                for n, t in zip(spec.var_names, spec.var_types)
            )
            for entry in store._by_type.get(body_ty, []):
                lam = Lambda(params, entry.expr, lambda_nt(spec))
                out.append(PoolEntry(lam, entry.generation))
        return out

    def _split_candidates(
        self, arg: Any
    ) -> Tuple[List[PoolEntry], List[PoolEntry], List[PoolEntry]]:
        """One argument slot's candidates split by generation against
        the newest complete generation: ``(older, fresh, upto)``, each
        preserving the pool's entry order. Computed once per slot per
        advance (entries admitted *during* the advance carry the
        in-progress generation and are excluded by every split, so the
        cache stays valid while the generation grows) — this is what
        stops the enumerator from rescanning and re-filtering the whole
        pool once per production per argument position."""
        if isinstance(arg, NtRef):
            cache_key: Any = ("nt", arg.nt)
        elif isinstance(arg, LambdaSpec):
            # LambdaSpecs live in the DSL for the whole run, so identity
            # is a stable key for a per-advance cache.
            cache_key = ("lambda", id(arg))
        else:
            raise TypeError(f"unknown arg spec {arg!r}")
        cached = self._slot_cache.get(cache_key)
        if cached is not None:
            return cached
        store = self.store
        newest = store.generation - 1
        if isinstance(arg, NtRef):
            names = store.dsl.expansion(arg.nt)
            if len(names) == 1:
                split = store.partition(names[0], newest)
            else:
                older: List[PoolEntry] = []
                fresh: List[PoolEntry] = []
                upto: List[PoolEntry] = []
                for name in names:
                    part = store.partition(name, newest)
                    older.extend(part[0])
                    fresh.extend(part[1])
                    upto.extend(part[2])
                split = (older, fresh, upto)
        else:
            params = tuple(
                Var(n, t, store._type_nt(t))
                for n, t in zip(arg.var_names, arg.var_types)
            )
            nt = lambda_nt(arg)
            var_names = set(arg.var_names)
            older = []
            fresh = []
            upto = []
            for body_nt in store.dsl.expansion(arg.body_nt):
                for entry in store._entries.get(body_nt, []):
                    generation = entry.generation
                    if generation > newest:
                        continue
                    if arg.require_var_use and not (
                        free_vars(entry.expr) & var_names
                    ):
                        continue
                    wrapped = PoolEntry(
                        Lambda(params, entry.expr, nt), generation
                    )
                    upto.append(wrapped)
                    if generation < newest:
                        older.append(wrapped)
                    else:
                        fresh.append(wrapped)
            split = (older, fresh, upto)
        self._slot_cache[cache_key] = split
        return split

    def _split_combinations(
        self, split_slots: List[Tuple]
    ) -> Iterable[Tuple[PoolEntry, ...]]:
        """All slot combinations containing at least one expression from
        the newest complete generation, over precomputed generation
        splits: slot ``j`` carries the newest element, earlier slots are
        strictly older, later slots are anything up to newest. Same
        schedule — and therefore the same candidate order, which decides
        which of two observationally equal candidates wins admission —
        as :meth:`_fresh_combinations`, minus the per-production
        re-filtering. In shard-capture mode the stream is strided down
        to this worker's ordinal slice (same order, a congruence-class
        subset)."""
        capture = self.store._shard_capture
        if capture is not None:
            return capture.stride(self._all_split_combinations(split_slots))
        return self._all_split_combinations(split_slots)

    def _all_split_combinations(
        self, split_slots: List[Tuple]
    ) -> Iterable[Tuple[PoolEntry, ...]]:
        for j in range(len(split_slots)):
            fresh = split_slots[j][1]
            if not fresh:
                continue
            older = [slot[0] for slot in split_slots[:j]]
            upto = [slot[2] for slot in split_slots[j + 1:]]
            if any(not s for s in older) or any(not s for s in upto):
                continue
            yield from itertools.product(*older, fresh, *upto)

    def _fresh_combinations(
        self, slots: List[List[PoolEntry]]
    ) -> Iterable[Tuple[PoolEntry, ...]]:
        """All slot combinations containing at least one expression from
        the newest complete generation (``store.generation - 1``), without
        duplicates: slot ``j`` carries the newest element, earlier slots
        are strictly older, later slots are anything."""
        newest = self.store.generation - 1
        for j in range(len(slots)):
            older = [
                [e for e in slot if e.generation < newest]
                for slot in slots[:j]
            ]
            fresh = [e for e in slots[j] if e.generation == newest]
            anything = [
                [e for e in slot if e.generation <= newest]
                for slot in slots[j + 1:]
            ]
            if not fresh or any(not s for s in older) or any(
                not s for s in anything
            ):
                continue
            yield from itertools.product(*older, fresh, *anything)

    def _expand_lasy(self, prod: Production, batched: bool = False) -> List[Expr]:
        store = self.store
        nt_type = store.dsl.type_of(prod.nt)
        arg_nts = [a.nt for a in prod.args if isinstance(a, NtRef)]
        split_slots = [
            self._split_candidates(NtRef(a_nt)) for a_nt in arg_nts
        ]
        if any(not slot[2] for slot in split_slots):
            return []
        added: List[Expr] = []
        for name, sig in store.lasy_signatures.items():
            if name == store.signature.name:
                continue  # self-calls are _RECURSE, not _LASY_FN
            if not types_compatible(nt_type, sig.return_type):
                continue
            if len(sig.params) != len(arg_nts):
                continue
            if not all(
                types_compatible(pty, store.dsl.type_of(a_nt))
                for (_, pty), a_nt in zip(sig.params, arg_nts)
            ):
                continue
            fn = store.lasy_fns.get(name)
            if batched and fn is not None:
                # The callee is bound, so its vector semantics match the
                # classic _apply_lasy_values column for column.
                lasy_nt = prod.nt

                def make_expr(
                    children: Tuple[Expr, ...], name=name, lasy_nt=lasy_nt
                ) -> Expr:
                    return LasyCall(name, children, lasy_nt)

                added.extend(
                    self._batched_combos(
                        lasy_nt,
                        split_slots,
                        compile_lasy_batch(fn),
                        make_expr,
                    )
                )
                continue
            for combo in self._split_combinations(split_slots):
                expr = LasyCall(name, tuple(e.expr for e in combo), prod.nt)
                values = None
                if fn is not None and all(
                    e.values is not None for e in combo
                ):
                    values = self._apply_lasy_values(fn, combo)
                result = store.offer(
                    expr, values, sampled_fast=self._fast_sampling
                )
                if result is not None:
                    added.append(result)
        return added

    def _apply_lasy_values(
        self, fn, combo: Sequence[PoolEntry]
    ) -> Tuple[Any, ...]:
        store = self.store
        out: List[Any] = []
        store._c_applies.value += len(store.examples)
        for i in range(len(store.examples)):
            args = [e.values[i] for e in combo]  # type: ignore[index]
            if any(a is ERROR for a in args):
                out.append(ERROR)
                continue
            try:
                out.append(check_value_size(freeze(fn(*args))))
            except Exception:
                out.append(ERROR)
        return tuple(out)
