"""Session identity keys (the cache-key layer of synthesis-as-a-service).

A warm :class:`~.session.SynthesisSession` (and the ``TdsSession`` that
owns it) is only reusable for a request that asks for *the same search*:
same DSL, same function signature, same visible LaSy state, same pool
options — and an example sequence that **extends the held prefix**. A
:class:`SessionKey` makes that identity explicit and hashable, so a
session can live in a keyed store (:class:`~.cache.SessionCache`)
instead of being implicitly owned by one ``run_tds``/``run_lasy`` call.

Fingerprints, not values, go into the key:

* examples are fingerprinted per-example through
  :func:`~repro.core.values.signature_key` (the same freezing semantic
  dedup uses), falling back to ``repr`` for unfreezable domain values;
* the LaSy state is fingerprinted by *content* — a synthesized helper
  by its signature and program text, a lookup by its frozen table —
  because the mappings themselves are rebuilt per run and identity
  comparison would never match across requests;
* options are fingerprinted with their wall-clock knobs (``timeout_s``)
  excluded: a deadline changes how long a search may run, not what it
  searches, so a tighter or looser wall must not force a cold build.

**The exact-prefix contract.** At this layer two example lists match
only when one is a *plain prefix* of the other, element-for-element and
in order: TDS consumes examples in order and the cached session's
``P_k`` depends on that order, so a reordered prefix is a different
session. Order canonicalization lives one layer down, where it is
sound: the *pool* only cares about the example multiset (its vectors
are per-example columns), so ``SynthesisSession`` reorders the held
pool columns when a run permutes the prefix (see
``SynthesisSession._extension_suffix``) rather than rebuilding cold.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Iterable, Mapping, Optional, Sequence, Tuple

from ..dsl import Example, Signature
from ..program import LookupFunction, SynthesizedFunction
from ..values import signature_key

ExampleFp = Tuple


def example_fingerprint(example: Example) -> ExampleFp:
    """A hashable fingerprint of one example (args and output)."""
    try:
        return signature_key(list(example.args) + [example.output])
    except TypeError:
        return ("repr", repr(example.args), repr(example.output))


def example_fingerprints(examples: Iterable[Example]) -> Tuple[ExampleFp, ...]:
    return tuple(example_fingerprint(e) for e in examples)


def lasy_fingerprint(
    lasy_fns: Mapping[str, Any], names: Optional[Iterable[str]] = None
) -> Tuple:
    """Content fingerprint of the LaSy state a session can observe.

    ``names`` restricts the fingerprint to the helpers the session's
    DSL can actually call (its ``lasy_signatures``); a single-function
    program then fingerprints to ``()`` no matter what else the run
    defines, which is what lets repeated single-function requests hit
    the cache.
    """
    selected = sorted(names) if names is not None else sorted(lasy_fns)
    out = []
    for name in selected:
        fn = lasy_fns.get(name)
        if fn is None:
            out.append((name, "absent"))
        elif isinstance(fn, SynthesizedFunction):
            out.append((name, "fn", str(fn.signature), str(fn.body)))
        elif isinstance(fn, LookupFunction):
            try:
                table = tuple(sorted(fn.table.items(), key=repr))
            except Exception:
                table = tuple(sorted(repr(kv) for kv in fn.table.items()))
            out.append((name, "lookup", table))
        else:
            out.append((name, "opaque", repr(fn)))
    return tuple(out)


def options_fingerprint(options: Any) -> Tuple:
    """Fingerprint of a ``TdsOptions`` (or any dataclass) with the
    wall-clock knobs excluded.

    ``timeout_s`` (both the TDS-level and the nested DBS-level one) is a
    *budget*, not a search parameter: the same session may serve
    requests under different deadlines. Everything else — feature
    switches, fuel, enumeration mode — changes what gets searched and
    therefore keys the session.
    """
    if options is None:
        return ("default",)
    out = []
    for f in fields(options):
        if f.name == "timeout_s":
            continue
        value = getattr(options, f.name)
        if f.name == "schedule":
            # Fingerprint the *effective* scheduler: None defers to the
            # REPRO_TDS_SCHEDULE environment switch, and an explicit
            # "fifo" must key identically to the default — admission
            # order shapes the session's program and pool, so the name
            # matters, but how it was spelled does not.
            from .schedule import resolve_schedule

            value = resolve_schedule(value)
        if hasattr(value, "__dataclass_fields__"):
            out.append((f.name,) + options_fingerprint(value))
        else:
            out.append((f.name, repr(value)))
    return tuple(out)


@dataclass(frozen=True)
class SessionKey:
    """Explicit identity of a (cached) synthesis session.

    ``examples`` is the fingerprint tuple of the example prefix the
    session has consumed; :meth:`base` strips it, leaving the bucket
    identity the cache indexes lookups by.
    """

    dsl: str
    signature: str
    lasy_state: Tuple = ()
    pool_options: Tuple = ()
    options: Tuple = ()
    examples: Tuple[ExampleFp, ...] = field(default=())

    def base(self) -> "SessionKey":
        """The key with the example prefix stripped."""
        if not self.examples:
            return self
        return replace(self, examples=())

    def with_examples(
        self, examples: Sequence[Example]
    ) -> "SessionKey":
        return replace(self, examples=example_fingerprints(examples))

    def extends(self, prefix: Tuple[ExampleFp, ...]) -> bool:
        """Whether this key's examples extend ``prefix`` exactly (the
        exact-prefix contract; see module docstring)."""
        return (
            len(self.examples) >= len(prefix)
            and self.examples[: len(prefix)] == prefix
        )


def session_key_for(
    dsl_name: str,
    signature: Signature,
    *,
    lasy_fns: Mapping[str, Any],
    lasy_names: Optional[Iterable[str]] = None,
    pool_options: Tuple = (),
    options: Any = None,
    examples: Sequence[Example] = (),
) -> SessionKey:
    """Build a :class:`SessionKey` from live session ingredients."""
    return SessionKey(
        dsl=dsl_name,
        signature=str(signature),
        lasy_state=lasy_fingerprint(lasy_fns, lasy_names),
        pool_options=tuple(pool_options),
        options=options_fingerprint(options),
        examples=example_fingerprints(examples),
    )
