"""The signature-indexed expression store (§5.1's pool, storage layer).

The store maintains, per grammar nonterminal, the set of semantically
distinct expressions generated so far. Two deduplication layers (the
paper's "Optimizations"):

* syntactic — expressions are canonicalized by the DSL's rewrite rules
  and constant folding, and duplicates discarded;
* semantic — an expression is fingerprinted by the vector of values it
  takes on the example inputs; only the first expression per fingerprint
  is kept. Expressions containing recursive self-calls are exempt (their
  value depends on the whole program). Expressions with free lambda
  variables — exempted outright by the paper — are fingerprinted under a
  few sampled variable bindings instead, a heuristic equivalence that
  keeps the pool tractable on a slow host evaluator (see DESIGN.md).

Every closed, non-recursive entry caches its *value vector* (its result
per example). New expressions are then evaluated in O(1) component
applications — one call per example on the cached child values — rather
than by re-interpreting the whole tree. Errors are values
(:data:`~repro.core.values.ERROR`) and propagate strictly.

**Incremental operation.** A store can outlive one DBS run and follow a
whole TDS example sequence (BUSTLE-style signature widening):

* :meth:`PoolStore.extend_examples` appends examples and lengthens every
  cached vector by evaluating *only the new columns*; widening never
  merges previously-distinct vectors (a prefix that differs stays
  different), so semantic dedup is re-checked structurally, not
  recomputed. Entries whose widened vector now fails a DSL admission
  filter are dropped (``pool.entries_invalidated``).
* Semantically rejected expressions are remembered in a capped *shadow*
  list: an expression that collided with an earlier one on the example
  prefix may diverge from it on a new example, and since it was already
  hash-consed into the syntactic seen-set it could never be regenerated.
  ``extend_examples`` widens the shadows too and *revives* the ones
  whose fingerprints no longer collide (``pool.entries_revived``).
* :meth:`PoolStore.refresh_lasy` re-evaluates cached vectors that
  mention LaSy functions whose definitions changed between runs (the
  LaSy runner mutates the shared mapping as other functions are
  re-synthesized).

Sampled fingerprints of free-variable expressions are computed over the
example list at admission time and cannot be widened column-wise; on
extension they are *recomputed* over the full widened list (the cost is
bounded by the per-nonterminal var caps) so the free-variable corner of
the pool stays exactly as deduplicated as a cold build would leave it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from ...obs.metrics import Registry
from ..budget import Budget
from ..compile import compile_batch
from ..dsl import Dsl, Example, LambdaSpec, Signature
from ..evaluator import (
    Env,
    EvaluationError,
    Fuel,
    expression_runner,
)
from ..expr import (
    Call,
    Const,
    Expr,
    Lambda,
    LasyCall,
    Param,
    Recurse,
    Var,
    free_vars,
    is_recursive,
)
from ..rewrite import Rewriter
from ..types import Type, types_compatible
from ..values import ERROR, signature_key

# Fuel for one component evaluation during signature computation.
_SIGNATURE_FUEL = 30_000

# Expressions larger than this are never pooled; a safety valve against
# pathological growth (the paper's programs top out ~20 lines).
_MAX_EXPR_SIZE = 60

# Sampled-environment grid memo bound (see PoolStore._grid_values);
# cleared wholesale on overflow, like the compile cache.
_GRID_CACHE_LIMIT = 200_000


@dataclass
class PoolEntry:
    expr: Expr
    generation: int
    # Cached result per example for closed, non-recursive expressions;
    # None when the expression's value depends on context (free lambda
    # variables, recursion, lambdas).
    values: Optional[Tuple[Any, ...]] = None
    # The *interned* semantic fingerprint (a small int id from the
    # store's signature table) the entry was admitted under; kept on the
    # entry so extend_examples can re-key the seen-sets after widening.
    sig: Optional[int] = None
    # The per-example key columns behind ``sig`` for vector-derived
    # fingerprints (the raw signature tuple is exactly ``sig_cols``).
    # Cached so widening extends the prefix by the appended columns
    # instead of re-adapting and re-freezing the whole vector. None for
    # sampled (free-variable) fingerprints, which cannot be widened.
    sig_cols: Optional[Tuple] = None
    # The store's example epoch ``values``/``sig`` are current for.
    # extend_examples bumps the store epoch and stamps every entry it
    # widens, so revival passes can tell an already-widened entry (e.g.
    # one shadowed earlier in the same pass) from a stale one instead of
    # recomputing — or worse, double-appending — its columns.
    epoch: int = 0


@dataclass
class PoolOptions:
    """Feature switches, used by the §6.3 ablation experiments."""

    use_dsl: bool = True
    semantic_dedup: bool = True
    signature_fuel: int = _SIGNATURE_FUEL
    max_expr_size: int = _MAX_EXPR_SIZE
    # Expressions with free lambda variables evade both the value-vector
    # fast path and the admission filters, so their corner of the pool is
    # additionally bounded: a size cap and a per-nonterminal count cap
    # (generation order means the small, useful bodies arrive first).
    max_var_expr_size: int = 16
    max_var_exprs_per_nt: int = 1200
    # Per-nonterminal cap on remembered semantic-dedup losers (revival
    # candidates for incremental example extension).
    max_shadow_entries: int = 2048


class PoolStore:
    """The candidate-expression store; may persist across DBS runs."""

    def __init__(
        self,
        dsl: Dsl,
        signature: Signature,
        examples: Sequence[Example],
        lasy_fns: Optional[Mapping[str, Any]] = None,
        lasy_signatures: Optional[Mapping[str, Signature]] = None,
        options: Optional[PoolOptions] = None,
        budget: Optional[Budget] = None,
        metrics: Optional[Registry] = None,
    ):
        self.dsl = dsl
        self.signature = signature
        self.examples = list(examples)
        self.options = options or PoolOptions()
        self.budget = budget or Budget()
        # Possibly shared and mutated by the LaSy runner between runs;
        # refresh_lasy() reconciles cached vectors against it.
        self.lasy_fns = lasy_fns if lasy_fns is not None else {}
        self.lasy_signatures = dict(lasy_signatures or {})
        self.rewriter = Rewriter(dsl)
        self.generation = 0
        self.exhausted = False
        # True while the newest generation's expansion has not run to
        # completion (budget death, or the caller abandoned the batch
        # generator after finding a program). A warm run must redo that
        # generation — syntactic dedup makes the redo idempotent.
        self.incomplete_generation = False
        # Redo bookkeeping for warm runs: ``pending_redo`` is armed by
        # :meth:`bind` when it steps an interrupted generation back, and
        # consumed by the enumerator, which publishes it as
        # ``last_generation_redone`` once the redo runs to completion.
        # DBS needs the distinction because a redone generation may
        # legitimately add nothing (every remaining combination deduped)
        # without the language being exhausted.
        self.pending_redo = False
        self.last_generation_redone = False
        # Published by DBS for composition strategies.
        self.previous_program: Optional[Expr] = None
        self.guard_sets: List[frozenset] = []

        self._entries: Dict[str, List[PoolEntry]] = {}
        self._by_type: Dict[Type, List[PoolEntry]] = {}
        self._seen_syntactic: set = set()
        # Per-nonterminal sets of *interned* signature ids (see
        # _intern_sig); membership hashes one int, not a tuple of frozen
        # example values.
        self._seen_semantic: Dict[str, set] = {}
        self._sig_intern: Dict[Tuple, int] = {}
        # (nonterminal, newest) -> (older, fresh, upto) entry lists; see
        # partition(). Cleared whenever entry lists are rebuilt and at
        # the start of every enumerator advance.
        self._partition_cache: Dict[Tuple[str, int], Tuple] = {}
        # Bumped by extend_examples; PoolEntry.epoch stamps match it.
        self.example_epoch = 0
        self._shadows: Dict[str, List[PoolEntry]] = {}
        self._var_counts: Dict[str, int] = {}
        self._constants = dict(dsl.constants_for(self.examples))
        self._lambda_specs = self._collect_lambda_specs()
        self._sample_cache: Dict[Type, List[Any]] = {}
        # Sampled-environment grids for the batched signature path
        # (see _grid_values): expression identity -> (expr, cells).
        # Cleared whenever the examples, harvested samples, or LaSy
        # bindings change. _proj_cache maps (parent var names, child
        # var names) to the binding-projection index list; the binding
        # lists themselves are memoized per var-name tuple.
        self._grid_cache: Dict[int, Tuple[Expr, Optional[Tuple[Any, ...]]]] = {}
        self._proj_cache: Dict[Tuple, Optional[List[int]]] = {}
        self._bindings_cache: Dict[Tuple, List[Dict[str, Any]]] = {}
        # free-variable set -> (var_types, bindings), or None when the
        # sampled signature is exempt for that set (untypeable variable
        # or no credible samples) — the per-candidate prologue of the
        # sampled-signature paths, computed once per distinct var set.
        self._var_meta_cache: Dict[frozenset, Optional[Tuple]] = {}
        self._lasy_versions = {
            name: id(fn) for name, fn in self.lasy_fns.items()
        }
        # Sharded-run hooks (see engine.shard). ``_shard_capture`` turns
        # a worker replica's admission pipeline into record capture;
        # ``_shard_log`` is the parent-side delta log of admissions the
        # coordinator ships to keep replicas current. Both strictly
        # process-local.
        self._shard_capture = None
        self._shard_log = None

        self.bind(metrics if metrics is not None else Registry(), self.budget)

    # -- per-run rebinding ---------------------------------------------

    def bind(self, metrics: Registry, budget: Budget) -> None:
        """Attach the store to a run's registry and budget.

        Metrics registries and budgets are per-DBS-run objects; a
        persistent store must re-point its counters at the current run
        before any offers happen, and clear last run's exhaustion state.
        """
        self._bind_counters(metrics)
        self.budget = budget
        self._partition_cache.clear()
        self.exhausted = False
        if self.incomplete_generation:
            # Redo the interrupted generation: stepping back makes the
            # next advance re-offer its combinations (cheap no-ops for
            # the ones already admitted via the syntactic seen-set).
            self.generation = max(0, self.generation - 1)
            self.incomplete_generation = False
            self.pending_redo = True

    def _bind_counters(self, metrics: Registry) -> None:
        """Point the store's counters at a registry — the counter half of
        :meth:`bind`, without the run-lifecycle side effects (exhaustion
        reset, interrupted-generation step-back). Suspend/unpickle paths
        use this alone: they detach from a run, they don't start one."""
        self.metrics = metrics
        self._detailed = metrics.detailed
        self._c_offered = metrics.counter("dbs.pool.offered")
        self._c_added = metrics.counter("dbs.pool.added")
        self._c_syntactic = metrics.counter("dbs.pool.dedup.syntactic")
        self._c_semantic = metrics.counter("dbs.pool.dedup.semantic")
        self._c_rejected = metrics.counter("dbs.pool.rejected")
        self._c_rewrites = metrics.counter("dbs.rewrite.canonicalized")
        self._c_vector_evals = metrics.counter("dbs.eval.vector_evals")
        self._c_applies = metrics.counter("dbs.eval.component_applies")
        self._c_reused = metrics.counter("pool.entries_reused")
        self._c_invalidated = metrics.counter("pool.entries_invalidated")
        self._c_revived = metrics.counter("pool.entries_revived")
        self._c_refreshed = metrics.counter("pool.entries_refreshed")
        self._c_pruned = metrics.counter("pool.entries_pruned")
        self._c_batched = metrics.counter("enum.batched")
        self._c_materialized = metrics.counter("enum.lazy_materialized")
        self._c_interned = metrics.counter("enum.sig_interned")

    def suspend(self) -> None:
        """Detach the store from its run: swap the bound registry and
        budget for throwaway private ones so a cached store does not pin
        a finished run's metrics or deadline. The warm state itself —
        entries, seen-sets, shadows, grids — is untouched; the next
        :meth:`bind` reattaches for real."""
        self.budget = Budget()
        self._bind_counters(Registry())

    def __getstate__(self):
        # Per-run bindings (registry counters, budget) and derived
        # caches are dropped: counters point at a finished run, budgets
        # hold monotonic deadlines, and the grid cache is keyed by
        # expression identity, which a round-trip does not preserve.
        # The rewriter is rebuilt from the DSL rather than shipped with
        # its memo tables.
        state = self.__dict__.copy()
        for name in list(state):
            if name.startswith("_c_"):
                del state[name]
        state["metrics"] = None
        state["budget"] = None
        state["rewriter"] = None
        state["_partition_cache"] = {}
        state["_grid_cache"] = {}
        state["_proj_cache"] = {}
        state["_bindings_cache"] = {}
        state["_var_meta_cache"] = {}
        state["_sample_cache"] = {}
        # id() snapshots are meaningless in another interpreter (and a
        # reused id would silently skip a needed refresh); an empty
        # snapshot makes the first refresh_lasy re-check everything.
        state["_lasy_versions"] = {}
        # Capture mode and the delta log never cross a pickle: a shipped
        # replica starts as a plain serial store.
        state["_shard_capture"] = None
        state["_shard_log"] = None
        return state

    def __setstate__(self, state) -> None:
        self.__dict__.update(state)
        self.rewriter = Rewriter(self.dsl)
        self.budget = Budget()
        self._shard_capture = None
        self._shard_log = None
        self._bind_counters(Registry())

    def compatible_options(self, options: PoolOptions) -> bool:
        """Whether a persisted store can serve a run with ``options``."""
        return (
            self.options.use_dsl == options.use_dsl
            and self.options.semantic_dedup == options.semantic_dedup
        )

    # -- queries -------------------------------------------------------

    def expressions(self, nt: str) -> List[Expr]:
        """All pooled expressions usable where ``nt`` is expected,
        following unit productions and single-branch conditionals."""
        return [entry.expr for entry in self.iter_entries(nt)]

    def iter_entries(self, nt: str) -> Iterator[PoolEntry]:
        """Lazily iterate entries usable where ``nt`` is expected."""
        if nt in self.dsl.nonterminals:
            names = self.dsl.expansion(nt)
        else:
            names = (nt,)
        for name in names:
            yield from self._entries.get(name, ())

    def expressions_of_type(self, ty: Type) -> List[Expr]:
        out: List[Expr] = []
        for pool_ty, entries in self._by_type.items():
            if types_compatible(ty, pool_ty):
                out.extend(entry.expr for entry in entries)
        return out

    def compatible_with_hole(self, hole_nt: str, hole_type: Type) -> List[Expr]:
        """Expressions that may fill a context hole.

        With the DSL on, the hole's nonterminal must match (§5.1: the
        grammar, not just types, decides what to build); with the DSL off,
        any type-compatible expression qualifies.
        """
        if self.options.use_dsl:
            return self.expressions(hole_nt)
        return self.expressions_of_type(hole_type)

    def total(self) -> int:
        return sum(len(v) for v in self._entries.values())

    def all_expressions(self) -> List[Expr]:
        """Every pooled expression, across all nonterminals."""
        return list(self.iter_all())

    def iter_all(self) -> Iterator[Expr]:
        """Lazily iterate every pooled expression.

        Safe against admissions during iteration (``offer_external``
        from a strategy running mid-batch): iterates a snapshot of the
        nonterminal keys and indexes entry lists positionally.
        """
        for nt in list(self._entries):
            entries = self._entries[nt]
            index = 0
            while index < len(entries):
                yield entries[index].expr
                index += 1

    # -- construction helpers ------------------------------------------

    def _collect_lambda_specs(self) -> List[LambdaSpec]:
        specs: List[LambdaSpec] = []
        for prod in self.dsl.productions:
            for arg in prod.args:
                if isinstance(arg, LambdaSpec) and arg not in specs:
                    specs.append(arg)
        return specs

    @staticmethod
    def _type_nt(ty: Type) -> str:
        return f"τ:{ty}"

    def constants_for(self, nt: str) -> Tuple[Any, ...]:
        return tuple(self._constants.get(nt, ()))

    def all_constants(self) -> Iterator[Any]:
        for values in self._constants.values():
            yield from values

    def offer_external(self, expr: Expr) -> Optional[Expr]:
        """Admit an externally-built expression (composition-strategy
        candidates) so later generations can compose over it."""
        try:
            return self.offer(expr)
        except Exception:
            return None

    def _log_shard_op(self, op: Tuple) -> None:
        """Record a pool mutation in the shard coordinator's delta log
        (no-op in serial runs). Every admission-path state change —
        entry ("e"), shadow ("sh"), or bare syntactic key ("k") — must
        land here so worker replicas stay exact (see engine.shard)."""
        log = self._shard_log
        if log is not None:
            log.append(op)

    # -- dedup / admission ---------------------------------------------

    def offer(
        self,
        expr: Expr,
        values: Optional[Tuple[Any, ...]] = None,
        *,
        sampled_fast: bool = False,
    ) -> Optional[Expr]:
        """Canonicalize, deduplicate, and admit an expression. Returns the
        admitted (canonical) expression, or None if it was a duplicate.

        ``sampled_fast`` lets batched-mode callers compute any sampled
        (free-variable) fingerprint from the identity-memoized grids of
        :meth:`_grid_values` instead of a fresh per-candidate evaluation;
        the decision tree and signature semantics are unchanged."""
        cap = self._shard_capture
        if cap is not None:
            # Worker replica in shard-capture mode: run the pipeline's
            # shard-local half and record the survivor for the parent's
            # replay instead of admitting (see engine.shard).
            return cap.offer(expr, values, sampled_fast)
        self.budget.charge_expression()
        self._c_offered.value += 1
        if expr.size > self.options.max_expr_size:
            self._c_rejected.value += 1
            if self._detailed:
                self._c_rejected.label(reason="size", nt=expr.nt)
            return None
        if not _recursion_shape_ok(expr):
            self._c_rejected.value += 1
            if self._detailed:
                self._c_rejected.label(reason="recursion_shape", nt=expr.nt)
            return None
        expr_vars = free_vars(expr)
        if expr_vars:
            if expr.size > self.options.max_var_expr_size:
                self._c_rejected.value += 1
                if self._detailed:
                    self._c_rejected.label(reason="var_size", nt=expr.nt)
                return None
            if (
                self._var_counts.get(expr.nt, 0)
                >= self.options.max_var_exprs_per_nt
            ):
                self._c_rejected.value += 1
                if self._detailed:
                    self._c_rejected.label(reason="var_cap", nt=expr.nt)
                return None
        # Children come from the pool and are already canonical, so only
        # the root needs rewriting; rewrites are semantics-preserving, so
        # any computed value vector remains valid.
        canonical = self.rewriter.canonicalize_root(expr)
        if canonical is not expr:
            self._c_rewrites.value += 1
            if self._detailed:
                self._c_rewrites.label(nt=expr.nt)
            expr = canonical
        key = (expr.nt, expr)
        if key in self._seen_syntactic:
            self._c_syntactic.value += 1
            if self._detailed:
                self._c_syntactic.label(nt=expr.nt)
            return None
        self._seen_syntactic.add(key)
        if values is None and self._closed_evaluable(expr):
            values = self._evaluate_vector(expr)
        if values is not None:
            predicate = self.dsl.admission_filters.get(expr.nt)
            if predicate is not None and not predicate(values, self.examples):
                self._c_rejected.value += 1
                if self._detailed:
                    self._c_rejected.label(reason="filter", nt=expr.nt)
                self._log_shard_op(("k", expr))
                return None
        sig = None
        sig_cols = None
        raw = None
        if self.options.semantic_dedup:
            raw, sig_cols = self._signature_state(
                expr, values, sampled_fast=sampled_fast
            )
            sig = self._intern_sig(raw)
            if sig is not None:
                seen = self._seen_semantic.setdefault(expr.nt, set())
                if sig in seen:
                    self._c_semantic.value += 1
                    if self._detailed:
                        self._c_semantic.label(nt=expr.nt)
                    shadowed = False
                    if values is not None:
                        # Remember the loser: it is hash-consed into the
                        # syntactic seen-set and could otherwise never
                        # come back, yet a future example may separate
                        # it from the entry that shadowed it.
                        shadowed = self._shadow(
                            PoolEntry(
                                expr,
                                self.generation,
                                values,
                                sig,
                                sig_cols,
                                self.example_epoch,
                            )
                        )
                    if shadowed:
                        self._log_shard_op(
                            (
                                "sh",
                                expr,
                                self.generation,
                                values,
                                raw,
                                self.example_epoch,
                            )
                        )
                    else:
                        self._log_shard_op(("k", expr))
                    return None
                seen.add(sig)
        entry = PoolEntry(
            expr, self.generation, values, sig, sig_cols, self.example_epoch
        )
        if expr_vars:
            self._var_counts[expr.nt] = self._var_counts.get(expr.nt, 0) + 1
        self._admit(entry)
        self._log_shard_op(
            (
                "e",
                expr,
                self.generation,
                values,
                raw,
                self.example_epoch,
                bool(expr_vars),
            )
        )
        return expr

    # -- batched admission (see engine.enumerator's batched mode) ------

    def vector_sig(
        self, nt: str, values: Tuple[Any, ...]
    ) -> Tuple[Optional[int], Optional[Tuple]]:
        """Interned signature id (and its key columns) for a candidate
        value vector, before any expression exists. The batched
        enumerator rejects observational duplicates on this id alone."""
        cols = self._vector_sig_columns(nt, values, self.examples)
        return self._intern_sig(cols), cols

    def shadow_has_room(self, nt: str) -> bool:
        """Whether a semantic loser would actually be remembered; when
        the shadow bucket is full the batched path skips materializing
        the loser expression altogether."""
        return (
            len(self._shadows.get(nt, ()))
            < self.options.max_shadow_entries
        )

    def admit_batched(
        self,
        expr: Expr,
        values: Tuple[Any, ...],
        sig: Optional[int],
        sig_cols: Optional[Tuple],
        *,
        canonical: bool = False,
    ) -> Optional[Expr]:
        """Admission tail for a batched-path survivor. The enumerator
        already charged the budget, checked the size cap, ran the
        admission filter, and found ``sig`` unseen — candidates on this
        path are closed and non-recursive by construction (every child
        carries a cached vector), so the shape and free-variable checks
        of :meth:`offer` hold statically. What is left is what needs the
        materialized expression: root canonicalization and syntactic
        dedup. ``canonical=True`` (shard replay) skips the rewrite: the
        worker already canonicalized — and counted — it."""
        if not canonical:
            rewritten = self.rewriter.canonicalize_root(expr)
            if rewritten is not expr:
                self._c_rewrites.value += 1
                if self._detailed:
                    self._c_rewrites.label(nt=expr.nt)
                expr = rewritten
        key = (expr.nt, expr)
        if key in self._seen_syntactic:
            self._c_syntactic.value += 1
            if self._detailed:
                self._c_syntactic.label(nt=expr.nt)
            return None
        self._seen_syntactic.add(key)
        if sig is not None:
            self._seen_semantic.setdefault(expr.nt, set()).add(sig)
        self._admit(
            PoolEntry(
                expr,
                self.generation,
                values,
                sig,
                sig_cols,
                self.example_epoch,
            )
        )
        self._log_shard_op(
            ("e", expr, self.generation, values, sig_cols,
             self.example_epoch, False)
        )
        return expr

    def shadow_batched(
        self,
        expr: Expr,
        values: Tuple[Any, ...],
        sig: int,
        sig_cols: Optional[Tuple],
        *,
        canonical: bool = False,
    ) -> None:
        """Shadow a batched-path semantic loser, replicating the classic
        path's state: the loser is canonicalized, hash-consed into the
        syntactic seen-set (it can never be regenerated), and remembered
        for example-extension revival."""
        if not canonical:
            rewritten = self.rewriter.canonicalize_root(expr)
            if rewritten is not expr:
                self._c_rewrites.value += 1
                if self._detailed:
                    self._c_rewrites.label(nt=expr.nt)
                expr = rewritten
        key = (expr.nt, expr)
        if key in self._seen_syntactic:
            self._c_syntactic.value += 1
            if self._detailed:
                self._c_syntactic.label(nt=expr.nt)
            return
        self._seen_syntactic.add(key)
        shadowed = self._shadow(
            PoolEntry(
                expr,
                self.generation,
                values,
                sig,
                sig_cols,
                self.example_epoch,
            )
        )
        if shadowed:
            self._log_shard_op(
                ("sh", expr, self.generation, values, sig_cols,
                 self.example_epoch)
            )
        else:
            self._log_shard_op(("k", expr))

    # -- shard replay (see engine.shard) -------------------------------
    #
    # Workers run the pipeline's shard-local half — budget charge, size
    # and shape caps, canonicalization, evaluation, admission filter,
    # signature-column freezing — against a frozen replica and ship
    # records; these methods are the serial half they deferred: every
    # check whose outcome depends on *live* pool state (variable caps,
    # cross-shard syntactic and semantic dedup), replayed in global
    # candidate order so the merged pool is byte-for-byte what a serial
    # run admits. Raw signatures are re-interned here, which both
    # collapses cross-shard observational duplicates and reproduces the
    # serial run's intern table exactly.

    def replay_admit(
        self,
        expr: Expr,
        values: Optional[Tuple[Any, ...]],
        raw: Optional[Tuple],
        has_vars: bool,
    ) -> Optional[Expr]:
        """Replay a classic-path (:meth:`offer`) candidate shipped by a
        shard worker. ``expr`` is already canonical; ``raw`` is its
        signature columns (or sampled fingerprint), not yet interned."""
        if has_vars and (
            self._var_counts.get(expr.nt, 0)
            >= self.options.max_var_exprs_per_nt
        ):
            # Another shard's replayed admissions may have filled the
            # cap since the worker's frozen check; the serial pipeline
            # rejects before hash-consing, so leave no key behind.
            self._c_rejected.value += 1
            if self._detailed:
                self._c_rejected.label(reason="var_cap", nt=expr.nt)
            return None
        key = (expr.nt, expr)
        if key in self._seen_syntactic:
            self._c_syntactic.value += 1
            if self._detailed:
                self._c_syntactic.label(nt=expr.nt)
            return None
        self._seen_syntactic.add(key)
        sig = None
        sig_cols = raw if values is not None else None
        if self.options.semantic_dedup:
            sig = self._intern_sig(raw)
            if sig is not None:
                seen = self._seen_semantic.setdefault(expr.nt, set())
                if sig in seen:
                    self._c_semantic.value += 1
                    if self._detailed:
                        self._c_semantic.label(nt=expr.nt)
                    shadowed = False
                    if values is not None:
                        shadowed = self._shadow(
                            PoolEntry(
                                expr,
                                self.generation,
                                values,
                                sig,
                                sig_cols,
                                self.example_epoch,
                            )
                        )
                    if shadowed:
                        self._log_shard_op(
                            ("sh", expr, self.generation, values, raw,
                             self.example_epoch)
                        )
                    else:
                        self._log_shard_op(("k", expr))
                    return None
                seen.add(sig)
        entry = PoolEntry(
            expr, self.generation, values, sig, sig_cols, self.example_epoch
        )
        if has_vars:
            self._var_counts[expr.nt] = self._var_counts.get(expr.nt, 0) + 1
        self._admit(entry)
        self._log_shard_op(
            ("e", expr, self.generation, values, raw, self.example_epoch,
             has_vars)
        )
        return entry.expr

    def replay_batched(
        self,
        expr: Expr,
        values: Tuple[Any, ...],
        raw: Optional[Tuple],
    ) -> Optional[Expr]:
        """Replay a batched-path candidate shipped by a shard worker:
        the batched dedup tail of the enumerator's inner loop, with the
        signature re-interned against this pool's live table."""
        sig = self._intern_sig(raw)
        if sig is not None and sig in self._seen_semantic.get(expr.nt, ()):
            self._c_semantic.value += 1
            if self._detailed:
                self._c_semantic.label(nt=expr.nt)
            if self.shadow_has_room(expr.nt):
                self.shadow_batched(expr, values, sig, raw, canonical=True)
            return None
        return self.admit_batched(expr, values, sig, raw, canonical=True)

    def replay_syn_key(self, expr: Expr) -> None:
        """Replay a filter-rejected classic-path candidate: the serial
        pipeline hash-conses it before the admission filter runs, so the
        only live state it leaves is its syntactic key."""
        key = (expr.nt, expr)
        if key not in self._seen_syntactic:
            self._seen_syntactic.add(key)
            self._log_shard_op(("k", expr))

    def partition(
        self, name: str, newest: int
    ) -> Tuple[List[PoolEntry], List[PoolEntry], List[PoolEntry]]:
        """One nonterminal's entries split by generation against the
        newest *complete* generation: ``(older, fresh, upto)`` with
        ``older`` strictly before ``newest``, ``fresh`` exactly
        ``newest``, and ``upto`` their concatenation (original order
        preserved in all three). Entries of the in-progress generation
        (> ``newest``) are excluded, which is what keeps a cached split
        valid while the current generation appends — the enumerator
        computes each slot's split once per advance instead of
        rescanning and re-filtering the whole pool once per production
        per argument position."""
        key = (name, newest)
        cached = self._partition_cache.get(key)
        if cached is not None:
            return cached
        older: List[PoolEntry] = []
        fresh: List[PoolEntry] = []
        # `upto` is built in the same scan, NOT as `older + fresh`: entry
        # lists are not always generation-sorted (a redo of an incomplete
        # generation appends previous-generation entries after newer
        # ones), and combination order decides which of two semantically
        # equal candidates wins admission — it must match the classic
        # path's order-preserving filters exactly.
        upto: List[PoolEntry] = []
        for entry in self._entries.get(name, ()):
            generation = entry.generation
            if generation < newest:
                older.append(entry)
                upto.append(entry)
            elif generation == newest:
                fresh.append(entry)
                upto.append(entry)
        result = (older, fresh, upto)
        self._partition_cache[key] = result
        return result

    def clear_partitions(self) -> None:
        """Invalidate cached generation splits (each advance starts
        fresh; bulk rebuilds clear eagerly)."""
        self._partition_cache.clear()

    def _admit(self, entry: PoolEntry) -> None:
        expr = entry.expr
        self._c_added.value += 1
        if self._detailed:
            self._c_added.label(nt=expr.nt, size=expr.size)
        self._entries.setdefault(expr.nt, []).append(entry)
        if not isinstance(expr, Lambda):
            ty = self._expr_type(expr)
            if ty is not None:
                self._by_type.setdefault(ty, []).append(entry)

    def _shadow(self, entry: PoolEntry) -> bool:
        bucket = self._shadows.setdefault(entry.expr.nt, [])
        if len(bucket) < self.options.max_shadow_entries:
            bucket.append(entry)
            return True
        return False

    def _closed_evaluable(self, expr: Expr) -> bool:
        return (
            bool(self.examples)
            and not isinstance(expr, Lambda)
            and not is_recursive(expr)
            and not free_vars(expr)
        )

    def _evaluate_vector(self, expr: Expr) -> Optional[Tuple[Any, ...]]:
        """Full-evaluation fallback for seeds and lambda-bearing calls.

        The expression is compiled once and the closure run per example
        (see repro.core.compile); on the interpreter mode this degrades
        to plain ``evaluate`` calls."""
        return self._evaluate_tail(expr, self.examples)

    def _evaluate_tail(
        self, expr: Expr, examples: Sequence[Example]
    ) -> Optional[Tuple[Any, ...]]:
        """Value vector of ``expr`` over ``examples`` only — the widening
        primitive: extending a cached vector costs one evaluation per
        *appended* example, never a recomputation of the prefix."""
        names = self.signature.param_names
        out: List[Any] = []
        self._c_vector_evals.value += len(examples)
        runner = expression_runner(expr)
        for example in examples:
            env = Env(
                params=dict(zip(names, example.args)),
                lasy_fns=self.lasy_fns,
                fuel=Fuel(self.options.signature_fuel),
            )
            try:
                value = runner(env)
            except EvaluationError:
                value = ERROR
            if callable(value):
                return None
            out.append(value)
        return tuple(out)

    def _expr_type(self, expr: Expr) -> Optional[Type]:
        if isinstance(expr, (Param, Const, Var)):
            return expr.type
        if isinstance(expr, Call):
            return expr.func.return_type
        if isinstance(expr, Recurse):
            return self.signature.return_type
        if isinstance(expr, LasyCall):
            sig = self.lasy_signatures.get(expr.func_name)
            return sig.return_type if sig else None
        if expr.nt in self.dsl.nonterminals:
            return self.dsl.type_of(expr.nt)
        return None

    # -- incremental extension -----------------------------------------

    def extend_examples(
        self, new_examples: Sequence[Example], seeds: Sequence[Expr] = ()
    ) -> Dict[str, int]:
        """Append examples, widening every cached value vector by the new
        columns only, and re-run semantic dedup on the widened vectors.

        ``seeds`` are the expressions the caller is about to re-seed (the
        current ``P_i``'s subexpressions): constants they mention stay
        alive through :meth:`_prune_stale_constants`.

        Returns a report dict: ``reused`` entries kept, ``invalidated``
        entries dropped by an admission filter on the widened vector,
        ``pruned`` entries dropped for mentioning stale constants,
        ``revived`` shadow entries readmitted because their fingerprint
        no longer collides. The same counts land on the bound registry
        as ``pool.entries_*`` counters.
        """
        appended = list(new_examples)
        report = {"reused": 0, "invalidated": 0, "revived": 0, "pruned": 0}
        if not appended:
            return report
        self.examples.extend(appended)
        self.example_epoch += 1
        # Interned ids are scoped to the signature table, and every live
        # fingerprint is re-interned during this pass (widened entries,
        # recomputed sampled entries, revived shadows) — so the table is
        # swapped rather than grown for the store's whole lifetime.
        self._sig_intern = {}
        self._partition_cache.clear()
        # Example-derived state: constants and variable samples may gain
        # members from the new examples. The enumerator re-seeds atoms
        # after an extension so new constants enter the pool.
        self._constants = dict(self.dsl.constants_for(self.examples))
        self._sample_cache = {}
        # Sampled grids span the example list and the harvested binding
        # samples; both just changed.
        self._grid_cache = {}
        self._proj_cache = {}
        self._bindings_cache = {}
        self._var_meta_cache = {}
        self._prune_stale_constants(seeds, report)
        filters = self.dsl.admission_filters
        dedup = self.options.semantic_dedup
        for nt, entries in list(self._entries.items()):
            kept: List[PoolEntry] = []
            seen: set = set()
            predicate = filters.get(nt)
            for entry in entries:
                if entry.values is not None:
                    tail = self._evaluate_tail(entry.expr, appended)
                    if tail is None:
                        # Stopped being vector-cacheable (callable value
                        # on a new input); keep the entry uncached.
                        entry.values = None
                        entry.sig = None
                        entry.sig_cols = None
                    else:
                        entry.values = entry.values + tail
                        entry.epoch = self.example_epoch
                        if predicate is not None and not predicate(
                            entry.values, self.examples
                        ):
                            report["invalidated"] += 1
                            self._c_invalidated.value += 1
                            continue
                        if dedup:
                            # Widen the cached key columns by the new
                            # columns only; the full signature is their
                            # concatenation, so nothing before the
                            # append point is re-adapted or re-frozen.
                            self._widen_sig(entry, nt, tail, appended)
                        else:
                            entry.sig = None
                            entry.sig_cols = None
                else:
                    # Sampled fingerprints (free-variable and lambda
                    # entries) were taken over the shorter example list
                    # and cannot be widened column-wise; recompute them
                    # over the full widened list, exactly as a cold
                    # admission would — otherwise the var corner of the
                    # pool escapes dedup and bloats every later
                    # generation's combination space.
                    entry.sig = (
                        self._intern_sig(
                            self._semantic_signature(entry.expr, None)
                        )
                        if dedup
                        else None
                    )
                    entry.sig_cols = None
                    entry.epoch = self.example_epoch
                if entry.sig is not None:
                    if entry.sig in seen:
                        self._c_semantic.value += 1
                        if entry.values is not None:
                            # Widening appends columns, so distinct
                            # vectors stay distinct; a collision here
                            # means the pair was never both vector-keyed
                            # before. Shadow the loser for revival.
                            self._shadow(entry)
                        elif free_vars(entry.expr):
                            # Sampled-sig losers are dropped outright
                            # (cold admission never shadows them either);
                            # free the slot under the per-nt var cap.
                            self._var_counts[nt] = max(
                                0, self._var_counts.get(nt, 0) - 1
                            )
                        continue
                    seen.add(entry.sig)
                kept.append(entry)
                report["reused"] += 1
            self._entries[nt] = kept
            if dedup:
                self._seen_semantic[nt] = seen
            else:
                self._seen_semantic.pop(nt, None)
        self._rebuild_by_type()
        self._c_reused.value += report["reused"]
        if dedup:
            report["revived"] = self._revive_shadows(appended, filters)
        else:
            self._shadows.clear()
        return report

    def _prune_stale_constants(
        self, seeds: Sequence[Expr], report: Dict[str, int]
    ) -> None:
        """Forget entries built from constants that no longer exist.

        Early iterations derive constants from few examples (often whole
        output strings); later iterations shrink that set, but a
        persistent pool would keep every composite built over the stale
        atoms — expressions a cold rebuild would never enumerate, each
        one multiplying later generations' combination space. Algorithm 1
        is explicit that components of earlier programs that no longer
        appear are *forgotten*; the constants the current ``P_i``'s
        subexpressions still mention stay (the cold build seeds those
        too). Pruned expressions leave the seen-sets, so an equivalent
        admission can happen again if the constant ever returns.
        """
        allowed = set()
        for values in self._constants.values():
            allowed.update(values)
        for seed in seeds:
            for node in seed.walk():
                if isinstance(node, Const):
                    allowed.add(node.value)
        present = set()
        for entries in self._entries.values():
            for entry in entries:
                for node in entry.expr.walk():
                    if isinstance(node, Const):
                        present.add(node.value)
        stale = present - allowed
        if not stale:
            return

        def is_stale(expr: Expr) -> bool:
            return any(
                isinstance(node, Const) and node.value in stale
                for node in expr.walk()
            )

        dropped = False
        for nt, entries in list(self._entries.items()):
            kept: List[PoolEntry] = []
            for entry in entries:
                if not is_stale(entry.expr):
                    kept.append(entry)
                    continue
                self._seen_syntactic.discard((entry.expr.nt, entry.expr))
                if entry.sig is not None:
                    self._seen_semantic.get(nt, set()).discard(entry.sig)
                report["pruned"] += 1
                self._c_pruned.value += 1
                dropped = True
            self._entries[nt] = kept
        for nt, bucket in list(self._shadows.items()):
            survivors = []
            for entry in bucket:
                if is_stale(entry.expr):
                    self._seen_syntactic.discard((entry.expr.nt, entry.expr))
                else:
                    survivors.append(entry)
            self._shadows[nt] = survivors
        if dropped:
            self._var_counts = {}
            for nt, entries in self._entries.items():
                self._var_counts[nt] = sum(
                    1 for e in entries if free_vars(e.expr)
                )
            # _by_type is rebuilt by extend_examples after widening.

    def _widen_sig(
        self,
        entry: PoolEntry,
        nt: str,
        tail: Tuple[Any, ...],
        appended: Sequence[Example],
    ) -> None:
        """Re-key a widened entry: extend the cached key-column prefix
        by the appended columns (O(appended), not O(examples)) and
        intern the result. Falls back to computing the columns from the
        full vector when no prefix was cached (a pre-epoch entry, or a
        vector whose columns resisted freezing)."""
        if entry.sig_cols is not None:
            tail_cols = self._vector_sig_columns(nt, tail, appended)
            entry.sig_cols = (
                entry.sig_cols + tail_cols
                if tail_cols is not None
                else None
            )
        else:
            entry.sig_cols = self._vector_sig_columns(
                nt, entry.values, self.examples
            )
        entry.sig = self._intern_sig(entry.sig_cols)

    def _revive_shadows(self, appended, filters) -> int:
        revived = 0
        for nt, bucket in list(self._shadows.items()):
            if not bucket:
                continue
            seen = self._seen_semantic.setdefault(nt, set())
            predicate = filters.get(nt)
            survivors: List[PoolEntry] = []
            for entry in bucket:
                if entry.epoch != self.example_epoch:
                    tail = self._evaluate_tail(entry.expr, appended)
                    if tail is None:
                        continue
                    entry.values = entry.values + tail
                    entry.epoch = self.example_epoch
                    if predicate is not None and not predicate(
                        entry.values, self.examples
                    ):
                        continue
                    self._widen_sig(entry, nt, tail, appended)
                # else: the entry was shadowed by this very extension
                # pass (a widened vector collided in the entry loop), so
                # its vector, filter verdict, and interned signature are
                # already current — widening again would append the new
                # columns twice and corrupt the vector.
                sig = entry.sig
                if sig is not None and sig in seen:
                    survivors.append(entry)
                    continue
                if sig is not None:
                    seen.add(sig)
                # Revived entries join the current generation so the
                # next advance() treats them as fresh combination fodder.
                entry.generation = self.generation
                self._admit(entry)
                revived += 1
                self._c_revived.value += 1
            self._shadows[nt] = survivors
        return revived

    def _rebuild_by_type(self) -> None:
        by_type: Dict[Type, List[PoolEntry]] = {}
        for entries in self._entries.values():
            for entry in entries:
                if isinstance(entry.expr, Lambda):
                    continue
                ty = self._expr_type(entry.expr)
                if ty is not None:
                    by_type.setdefault(ty, []).append(entry)
        self._by_type = by_type

    def reorder_examples(self, perm: Sequence[int]) -> None:
        """Permute the held examples in place: ``perm[i]`` is the old
        index of the example now at position ``i``.

        The store's semantic state is a function of the example
        *multiset*, laid out in per-example columns — value vectors,
        signature key columns, admission-filter verdicts all pair column
        ``i`` with example ``i`` — so a permutation moves columns, it
        never changes them. Vector-keyed fingerprints therefore stay
        pairwise-distinct (coordinate permutation is a bijection) and no
        filter is re-run. Sampled (free-variable) fingerprints are the
        one exception: their sample harvest scans the examples in order,
        so they are recomputed over the permuted list exactly as
        :meth:`extend_examples` recomputes them, and fresh collisions
        among them are resolved the same way (losers dropped; vector
        entries never collide here so none are shadowed).

        This is what lets :class:`~.session.SynthesisSession` serve a
        run whose examples merely reorder the held prefix warm instead
        of rebuilding cold.
        """
        n = len(self.examples)
        order = list(perm)
        if sorted(order) != list(range(n)):
            raise ValueError(
                f"perm must be a permutation of range({n}), got {order!r}"
            )
        if order == list(range(n)):
            return
        self.examples = [self.examples[j] for j in order]
        self.example_epoch += 1
        # Same cache discipline as extend_examples: the intern table is
        # swapped (every live fingerprint is re-interned below), and all
        # example-derived caches are rebuilt lazily.
        self._sig_intern = {}
        self._partition_cache.clear()
        self._constants = dict(self.dsl.constants_for(self.examples))
        self._sample_cache = {}
        self._grid_cache = {}
        self._proj_cache = {}
        self._bindings_cache = {}
        self._var_meta_cache = {}
        dedup = self.options.semantic_dedup
        dropped = False
        for nt, entries in list(self._entries.items()):
            kept: List[PoolEntry] = []
            seen: set = set()
            for entry in entries:
                self._permute_entry(entry, order, dedup)
                if entry.sig is not None:
                    if entry.sig in seen:
                        self._c_semantic.value += 1
                        if free_vars(entry.expr):
                            self._var_counts[nt] = max(
                                0, self._var_counts.get(nt, 0) - 1
                            )
                        dropped = True
                        continue
                    seen.add(entry.sig)
                kept.append(entry)
            self._entries[nt] = kept
            if dedup:
                self._seen_semantic[nt] = seen
        for bucket in self._shadows.values():
            for entry in bucket:
                self._permute_entry(entry, order, dedup)
        if dropped:
            self._rebuild_by_type()

    def _permute_entry(
        self, entry: PoolEntry, order: Sequence[int], dedup: bool
    ) -> None:
        if entry.values is not None:
            entry.values = tuple(entry.values[j] for j in order)
            if dedup:
                if entry.sig_cols is not None:
                    entry.sig_cols = tuple(
                        entry.sig_cols[j] for j in order
                    )
                    entry.sig = self._intern_sig(entry.sig_cols)
                else:
                    raw, cols = self._signature_state(
                        entry.expr, entry.values
                    )
                    entry.sig = self._intern_sig(raw)
                    entry.sig_cols = cols
            else:
                entry.sig = None
                entry.sig_cols = None
        else:
            entry.sig = (
                self._intern_sig(self._semantic_signature(entry.expr, None))
                if dedup
                else None
            )
            entry.sig_cols = None
        entry.epoch = self.example_epoch

    def refresh_lasy(self) -> int:
        """Re-evaluate cached vectors that mention LaSy functions whose
        definitions changed since the last run (identity snapshot); the
        LaSy runner rebinds ``lasy_fns[name]`` whenever another function
        is re-synthesized, silently staling any vector that called it.
        Returns the number of entries refreshed."""
        current = {name: id(fn) for name, fn in self.lasy_fns.items()}
        if current == self._lasy_versions:
            return 0
        changed = {
            name
            for name in set(current) | set(self._lasy_versions)
            if current.get(name) != self._lasy_versions.get(name)
        }
        self._lasy_versions = current
        # Grid cells may embed results of the changed functions.
        self._grid_cache = {}
        dedup = self.options.semantic_dedup
        refreshed = 0
        dropped_any = False
        for nt, entries in list(self._entries.items()):
            touched = False
            for entry in entries:
                if not _mentions_lasy(entry.expr, changed):
                    continue
                if self._closed_evaluable(entry.expr):
                    entry.values = self._evaluate_vector(entry.expr)
                else:
                    entry.values = None
                if dedup and entry.values is not None:
                    raw, cols = self._signature_state(
                        entry.expr, entry.values
                    )
                    entry.sig = self._intern_sig(raw)
                    entry.sig_cols = cols
                else:
                    entry.sig = None
                    entry.sig_cols = None
                entry.epoch = self.example_epoch
                refreshed += 1
                touched = True
            if touched and dedup:
                # Refreshed vectors may now collide with each other (or
                # with untouched entries); rebuild this nonterminal's
                # seen-set, shadowing the losers.
                seen: set = set()
                kept: List[PoolEntry] = []
                for entry in entries:
                    if entry.sig is not None:
                        if entry.sig in seen:
                            self._c_semantic.value += 1
                            self._shadow(entry)
                            continue
                        seen.add(entry.sig)
                    kept.append(entry)
                if len(kept) != len(entries):
                    self._entries[nt] = kept
                    dropped_any = True
                    self._partition_cache.clear()
                self._seen_semantic[nt] = seen
        for nt, bucket in self._shadows.items():
            # Stale shadows are cheap to drop and expensive to refresh.
            self._shadows[nt] = [
                e for e in bucket if not _mentions_lasy(e.expr, changed)
            ]
        if dropped_any:
            self._rebuild_by_type()
        self._c_refreshed.value += refreshed
        return refreshed

    # -- semantic fingerprints -----------------------------------------

    # Sample bindings used to fingerprint expressions with free lambda
    # variables (see module docstring).
    _VAR_SAMPLES = {
        "int": (0, 1, 2),
        "str": ("", "b a", "xy"),
        "bool": (False, True),
        "char": ("a", " "),
    }

    def _var_sample_values(self, ty: Type) -> Tuple[Any, ...]:
        """Sample bindings for a lambda variable: canned primitives plus
        values of the right shape harvested from the examples (e.g. the
        child elements of an XML input for a node-typed loop variable).
        Returns () when no credible sample exists — the caller must then
        skip semantic dedup rather than collapse everything."""
        harvested = self._harvest_samples(ty)
        canned = self._VAR_SAMPLES.get(ty.name, ())
        if ty.is_list and not harvested:
            return ((),)
        out = list(harvested) + [s for s in canned if s not in harvested]
        return tuple(out[:3])

    def _harvest_samples(self, ty: Type) -> List[Any]:
        cache = self._sample_cache
        if ty in cache:
            return cache[ty]
        found: List[Any] = []

        def consider(value: Any, depth: int) -> None:
            if len(found) >= 3:
                return
            if _matches_type(value, ty) and value not in found:
                found.append(value)
            if depth <= 0:
                return
            if isinstance(value, tuple):
                for item in value[:4]:
                    consider(item, depth - 1)
            elif hasattr(value, "elements"):
                for item in value.elements()[:4]:
                    consider(item, depth - 1)

        for example in self.examples:
            for value in list(example.args) + [example.output]:
                consider(value, 2)
        cache[ty] = found
        return found

    def _sample_bindings(self, names_types) -> List[Dict[str, Any]]:
        combos: List[Dict[str, Any]] = [{}]
        for name, ty in names_types:
            samples = self._var_sample_values(ty)
            combos = [
                {**combo, name: sample}
                for combo in combos
                for sample in samples
            ]
            if len(combos) > 27:
                combos = combos[:27]
        return combos

    def _free_var_types(self, expr: Expr) -> Optional[List[Tuple[str, Type]]]:
        names = sorted(free_vars(expr))
        out: List[Tuple[str, Type]] = []
        for name in names:
            ty = self.dsl.lambda_vars.get(name)
            if ty is None:
                return None
            out.append((name, ty))
        return out

    def _semantic_signature(
        self, expr: Expr, values: Optional[Tuple[Any, ...]]
    ) -> Optional[Tuple]:
        """The raw fingerprint driving semantic dedup, or None when
        exempt. Seen-sets and entries store its interned id, not the
        tuple itself — see :meth:`_intern_sig`."""
        return self._signature_state(expr, values)[0]

    def _signature_state(
        self,
        expr: Expr,
        values: Optional[Tuple[Any, ...]],
        sampled_fast: bool = False,
    ) -> Tuple[Optional[Tuple], Optional[Tuple]]:
        """``(raw_signature, key_columns)`` for an admission candidate.
        For vector-derived fingerprints the signature *is* the column
        tuple (cached on the entry so widening extends the prefix);
        sampled fingerprints have no widenable columns."""
        if is_recursive(expr):
            return None, None
        if not self.examples:
            return None, None
        if values is not None:
            cols = self._vector_sig_columns(expr.nt, values, self.examples)
            return cols, cols
        adapter = self.dsl.signature_adapters.get(expr.nt)
        if sampled_fast:
            return self._sampled_signature_fast(expr, adapter), None
        return self._sampled_signature(expr, adapter), None

    def _vector_sig_columns(
        self,
        nt: str,
        values: Sequence[Any],
        examples: Sequence[Example],
    ) -> Optional[Tuple]:
        """Per-example signature key columns for (a slice of) a value
        vector: the nonterminal's adapter applied per column, then the
        usual freezing/tagging of :func:`signature_key`. Because the key
        is built element-wise, the signature of a widened vector is the
        cached prefix plus the columns of the appended slice. None when
        a column resists freezing (the classic TypeError exemption)."""
        adapter = self.dsl.signature_adapters.get(nt)
        out = []
        for value, example in zip(values, examples):
            if adapter is not None and value is not ERROR:
                try:
                    value = adapter(value, example)
                except Exception:
                    value = ERROR
            out.append(value)
        try:
            return signature_key(out)
        except TypeError:
            return None

    def _intern_sig(self, raw: Optional[Tuple]) -> Optional[int]:
        """Intern a raw signature tuple to a small int id. Dedup then
        compares and stores ints: one hash of the (potentially large)
        tuple here, integer hashes everywhere after. None (exempt) maps
        to None; an unhashable signature is treated as exempt, exactly
        as the classic path treated it."""
        if raw is None:
            return None
        table = self._sig_intern
        try:
            sig = table.get(raw)
        except TypeError:
            return None
        if sig is None:
            sig = len(table)
            table[raw] = sig
            self._c_interned.value += 1
        return sig

    def _sampled_signature(self, expr: Expr, adapter) -> Optional[Tuple]:
        """Fingerprint for expressions with free lambda variables (or
        lambdas): evaluate under sampled bindings."""
        target = expr
        binder_vars: List[Tuple[str, Type]] = []
        if isinstance(expr, Lambda):
            target = expr.body
            binder_vars = [(p.name, p.type) for p in expr.params]
            if adapter is None:
                adapter = self.dsl.signature_adapters.get(target.nt)
        var_types = self._free_var_types(target)
        if var_types is None:
            return None
        if any(not self._var_sample_values(ty) for _, ty in var_types):
            return None  # no credible samples: skip dedup, keep the expr
        bindings = self._sample_bindings(var_types)
        values = []
        names = self.signature.param_names
        runner = expression_runner(target)
        for example in self.examples:
            for binding in bindings:
                env = Env(
                    params=dict(zip(names, example.args)),
                    vars=dict(binding),
                    lasy_fns=self.lasy_fns,
                    fuel=Fuel(self.options.signature_fuel),
                )
                try:
                    value = runner(env)
                    if adapter is not None:
                        value = adapter(value, example)
                except EvaluationError:
                    value = ERROR
                except Exception:
                    value = ERROR
                if callable(value):
                    return None
                values.append(value)
        if binder_vars:
            values.append(("λ", tuple(str(t) for _, t in binder_vars)))
        # Two expressions over *different* variables are never the same
        # component even when the sampled bindings coincide (a two-lambda
        # production needs bodies for each of its variables).
        values.append(("vars", tuple(name for name, _ in var_types)))
        try:
            return signature_key(values)
        except TypeError:
            return None

    # -- batched sampled fingerprints (see engine.enumerator) ----------

    def _sampled_signature_fast(self, expr: Expr, adapter) -> Optional[Tuple]:
        """Batched-mode equivalent of :meth:`_sampled_signature` for
        non-lambda candidates: the sampled cells come from the
        identity-memoized grids of :meth:`_grid_values` instead of a
        fresh whole-tree evaluation per (example, binding) cell — the
        same values-first inversion the batched enumerator applies to
        value vectors. Signature semantics are identical; anything the
        grid cannot express delegates to the per-candidate path."""
        if isinstance(expr, Lambda) or expr.has_recurse:
            return self._sampled_signature(expr, adapter)
        meta = self._grid_meta(expr)
        if meta is None:
            return None  # untypeable var / no credible samples: exempt
        var_types, bindings = meta
        cells = self._grid_values(expr)
        if cells is None:
            return self._sampled_signature(expr, adapter)
        values = []
        i = 0
        for example in self.examples:
            for _ in bindings:
                value = cells[i]
                i += 1
                if adapter is not None and value is not ERROR:
                    try:
                        value = adapter(value, example)
                    except Exception:
                        value = ERROR
                if callable(value):
                    return None
                values.append(value)
        values.append(("vars", tuple(name for name, _ in var_types)))
        try:
            return signature_key(values)
        except TypeError:
            return None

    def _grid_meta(self, expr: Expr) -> Optional[Tuple]:
        """``(var_types, bindings)`` for an expression's free-variable
        set, or None when its sampled signature is exempt (a variable
        the DSL can't type, or one without credible samples). This is
        the per-candidate prologue of :meth:`_sampled_signature`,
        memoized per distinct variable set: the enumerator offers
        thousands of candidates over a handful of variable sets."""
        key = expr.free_var_set
        cache = self._var_meta_cache
        if key in cache:
            return cache[key]
        var_types = self._free_var_types(expr)
        if var_types is None or any(
            not self._var_sample_values(ty) for _, ty in var_types
        ):
            meta = None
        else:
            meta = (var_types, self._grid_bindings(var_types))
        cache[key] = meta
        return meta

    def _grid_bindings(self, var_types) -> List[Dict[str, Any]]:
        """:meth:`_sample_bindings`, memoized per variable-name tuple
        (the sample values behind a binding list only change when the
        harvested-sample cache is rebuilt, which clears this too)."""
        key = tuple(name for name, _ in var_types)
        bindings = self._bindings_cache.get(key)
        if bindings is None:
            bindings = self._sample_bindings(var_types)
            self._bindings_cache[key] = bindings
        return bindings

    def _grid_values(self, expr: Expr) -> Optional[Tuple[Any, ...]]:
        """Raw (pre-adapter) values of a free-variable expression over
        ``examples × sampled bindings of its own variables``,
        example-major — the cells :meth:`_sampled_signature` computes
        one candidate at a time. Memoized by expression identity: pool
        children are hash-consed, so each distinct subexpression is
        evaluated once per example epoch instead of once per offered
        candidate that contains it. None when no grid applies (no
        typeable variables, or a variable without credible samples)."""
        cache = self._grid_cache
        hit = cache.get(id(expr))
        if hit is not None and hit[0] is expr:
            return hit[1]
        cells = self._compute_grid(expr)
        if len(cache) >= _GRID_CACHE_LIMIT:
            cache.clear()
        cache[id(expr)] = (expr, cells)
        return cells

    def _compute_grid(self, expr: Expr) -> Optional[Tuple[Any, ...]]:
        meta = self._grid_meta(expr)
        if meta is None or not meta[0]:
            return None
        var_types, bindings = meta
        if type(expr) is Call and not expr.func.lazy and not expr.has_recurse:
            # Column-wise fast path: apply the component over the
            # children's grids in one batch call, with the children's
            # cells projected onto this expression's binding list.
            columns = []
            for child in expr.args:
                column = self._grid_argument(child, var_types, bindings)
                if column is None:
                    break
                columns.append(column)
            else:
                batch_fn = compile_batch(expr.func)
                if batch_fn is not None:
                    return tuple(batch_fn(*columns))
        # Everything else (variables, lazy calls, LaSy calls, loop
        # nodes, truncated binding products): evaluate per cell with
        # classic signature semantics — still paid once per distinct
        # expression, not once per candidate.
        return self._grid_eval(expr, bindings)

    def _grid_argument(
        self, child: Expr, var_types, bindings
    ) -> Optional[List[Any]]:
        """One child's cell column, aligned with the parent's
        ``examples × bindings`` layout: closed children broadcast their
        per-example value across the bindings; free-variable children
        project their own grid through the binding restriction map."""
        if child.has_recurse:
            return None
        if not child.free_var_set:
            values = self._grid_closed_values(child)
            if values is None:
                return None
            n = len(bindings)
            out: List[Any] = []
            for value in values:
                out.extend([value] * n)
            return out
        child_meta = self._grid_meta(child)
        if child_meta is None:
            return None
        child_types, child_bindings = child_meta
        child_cells = self._grid_values(child)
        if child_cells is None:
            return None
        projection = self._grid_projection(
            var_types, bindings, child_types, child_bindings
        )
        if projection is None:
            return None
        per_child = len(child_bindings)
        out = []
        for ei in range(len(self.examples)):
            base = ei * per_child
            for j in projection:
                out.append(child_cells[base + j])
        return out

    def _grid_projection(
        self, var_types, bindings, child_types, child_bindings
    ) -> Optional[List[int]]:
        """For each parent binding, the index of its restriction to the
        child's variables in the child's binding list — None when a
        restriction is missing (the 27-combo truncation can drop it) or
        a sample value resists hashing. Bindings are pure products of
        the per-type sample values, so the map is memoized per
        (parent names, child names) pair."""
        key = (
            tuple(name for name, _ in var_types),
            tuple(name for name, _ in child_types),
        )
        if key in self._proj_cache:
            return self._proj_cache[key]
        child_names = key[1]
        projection: Optional[List[int]] = []
        try:
            index = {
                tuple(b[name] for name in child_names): j
                for j, b in enumerate(child_bindings)
            }
            for binding in bindings:
                j = index.get(tuple(binding[name] for name in child_names))
                if j is None:
                    projection = None
                    break
                projection.append(j)
        except TypeError:
            projection = None
        self._proj_cache[key] = projection
        return projection

    def _grid_closed_values(self, expr: Expr) -> Optional[Tuple[Any, ...]]:
        """Per-example raw values of a closed, non-recursive child used
        inside a sampled grid, memoized alongside the grids (closed and
        free-variable expressions are disjoint, so the cache is shared).
        Unlike :meth:`_evaluate_tail` this is signature-internal work:
        exceptions become ERROR cells and no eval counters move, exactly
        as the same subtree behaves inside a per-candidate sampled
        evaluation."""
        cache = self._grid_cache
        hit = cache.get(id(expr))
        if hit is not None and hit[0] is expr:
            return hit[1]
        names = self.signature.param_names
        runner = expression_runner(expr)
        out: List[Any] = []
        for example in self.examples:
            env = Env(
                params=dict(zip(names, example.args)),
                lasy_fns=self.lasy_fns,
                fuel=Fuel(self.options.signature_fuel),
            )
            try:
                value = runner(env)
            except EvaluationError:
                value = ERROR
            except Exception:
                value = ERROR
            out.append(value)
        values = tuple(out)
        if len(cache) >= _GRID_CACHE_LIMIT:
            cache.clear()
        cache[id(expr)] = (expr, values)
        return values

    def _grid_eval(self, expr: Expr, bindings) -> Tuple[Any, ...]:
        """Per-cell grid fallback: one fresh fueled evaluation per
        (example, binding), the exact loop body of
        :meth:`_sampled_signature` minus the adapter."""
        names = self.signature.param_names
        runner = expression_runner(expr)
        cells: List[Any] = []
        for example in self.examples:
            params = dict(zip(names, example.args))
            for binding in bindings:
                env = Env(
                    params=params,
                    vars=dict(binding),
                    lasy_fns=self.lasy_fns,
                    fuel=Fuel(self.options.signature_fuel),
                )
                try:
                    value = runner(env)
                except EvaluationError:
                    value = ERROR
                except Exception:
                    value = ERROR
                cells.append(value)
        return tuple(cells)


def _mentions_lasy(expr: Expr, names) -> bool:
    return any(
        isinstance(node, LasyCall) and node.func_name in names
        for node in expr.walk()
    )


def _value_type(value: Any, dsl: Dsl) -> Type:
    """Best-effort runtime type of a constant (for the no-DSL mode)."""
    from ..types import BOOL, INT, STRING, Type as _Type, list_of

    if isinstance(value, bool):
        return BOOL
    if isinstance(value, int):
        return INT
    if isinstance(value, str):
        return STRING
    if isinstance(value, tuple):
        if value and isinstance(value[0], str):
            return list_of(STRING)
        if value and isinstance(value[0], int):
            return list_of(INT)
        return list_of(_Type("any"))
    type_name = type(value).__name__.lower()
    for ty in dsl.nonterminals.values():
        if ty.name == type_name:
            return ty
    return _Type("any")


def _recursion_shape_ok(expr: Expr) -> bool:
    """Structural sanity for recursive expressions: at most two self-calls,
    no nested self-calls, and every self-call must mention a parameter or
    variable (a constant-argument self-call either diverges or is a
    constant). These exemptions keep the un-deduplicated recursive corner
    of the pool from exploding."""
    if not expr.has_recurse:
        return True
    recurse_nodes = [n for n in expr.walk() if isinstance(n, Recurse)]
    if not recurse_nodes:
        return True
    if len(recurse_nodes) > 2:
        return False
    for node in recurse_nodes:
        inner = [
            d
            for arg in node.args
            for d in arg.walk()
            if isinstance(d, Recurse)
        ]
        if inner:
            return False
        mentions_input = any(
            isinstance(d, (Param, Var))
            for arg in node.args
            for d in arg.walk()
        )
        if not mentions_input:
            return False
    return True


def _matches_type(value: Any, ty: Type) -> bool:
    """Shallow runtime type check used when harvesting var samples."""
    if ty.name == "int":
        return isinstance(value, int) and not isinstance(value, bool)
    if ty.name in ("str", "char"):
        return isinstance(value, str)
    if ty.name == "bool":
        return isinstance(value, bool)
    if ty.is_list:
        return isinstance(value, tuple) and all(
            _matches_type(v, ty.element_type()) for v in value[:3]
        )
    if ty.name == "xml":
        return hasattr(value, "elements") and hasattr(value, "tag")
    if ty.name == "table":
        return isinstance(value, tuple)
    return False
