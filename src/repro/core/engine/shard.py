"""Intra-run DBS sharding: one generation, many worker processes.

A DBS generation is embarrassingly parallel *within* its candidate
stream: every candidate's expensive work — vectorized component
application, signature-column freezing, canonicalization, admission
filtering — depends only on the pool state at the *start* of the
generation (entries admitted mid-advance carry the in-progress
generation tag and are excluded from every argument split). What is
inherently serial is tiny: the admission tail, where candidate order
decides which of two observationally equal expressions wins.

So the split here is *capture and replay*:

* each worker holds a **replica** of the parent ``(PoolStore,
  Enumerator)`` pair — shipped once as a pickle snapshot, then kept
  current by per-generation **delta ops** (the admissions the parent
  logged since the worker's last sync) instead of re-pickling the pool;
* a sharded advance dispatches **one production at a time**, and only
  productions whose estimated cost reaches ``min_cost`` — cheap ones
  run serially in the parent between dispatches, and a production the
  DBS driver never reaches (it tests each batch as it lands, and the
  budget or a solve can end the generation early) is never paid for.
  Every worker gets the same production command and re-runs the
  enumerator's own expansion over the replica in **capture mode**: it
  visits only candidate ordinals congruent to its shard index
  (``ordinal % jobs == shard``), performs the expensive per-candidate
  work under an expression budget scaled to its stride's share of the
  remaining window, drops candidates it can *prove* the parent would
  drop (syntactic duplicates against the frozen base, semantic losers
  whose shadow bucket was already full), and ships the rest as compact
  records — never mutating the replica;
* the parent **replays** the merged records production by production in
  global ordinal order through the same admission tail
  (:meth:`PoolStore.replay_admit` / :meth:`PoolStore.replay_batched`),
  re-interning each raw signature into its own table, so cross-shard
  observational duplicates collapse exactly as they do in-process and
  the interned-id table ends up byte-for-byte what a serial run builds.

Determinism contract: a sharded run admits the identical pool —
entries, order, seen-sets, shadows, interned signature table — and
synthesizes byte-identical programs (``tests/test_shard.py`` holds all
four domains and both enum modes to that, including expression-budget
death, which is replayed from per-production charge totals so the run
dies on exactly the candidate the serial schedule would have died on).
Wall-clock budget death inside a worker is the one nondeterministic
escape: the partial production is dropped and the run marked exhausted,
just as a serial run's time budget trips at an arbitrary candidate.

Failure posture mirrors ``exec.parallel``: a crashed shard worker is
respawned on the same slot and its work unit re-sent with a full
snapshot (the parent pool is pristine until all shards report, so a
retry can never observe a half-merged generation); an unpicklable pool
(bound LaSy closures), spawn failure, or exhausted retry budget flips
the coordinator into permanent serial fallback for the session —
sharding is an optimization, never a correctness dependency.
"""

from __future__ import annotations

import heapq
import itertools
import os
import pickle
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Dict, Iterable, List, Optional, Tuple

from ...obs.metrics import Registry
from ...obs.profile import get_progress
from ...obs.trace import JsonlTracer, get_tracer
from ..budget import Budget, BudgetExhausted, Deadline
from ..dsl import Production
from ..expr import Expr, free_vars
from .enumerator import Enumerator, _production_label
from .pool import PoolEntry, PoolStore, _recursion_shape_ok

# Productions cheaper than this (estimated combination count, see
# Enumerator._production_cost) stay serial: a worker round-trip and
# record pickling cost more than the enumeration they would split. The
# gate is per production — one generation freely mixes serial cheap
# productions with dispatched expensive ones — so the early generations
# of every synthesis, the long tail of small productions, and entire
# tier-1 test syntheses never pay dispatch overhead; REPRO_DBS_JOBS=2
# in CI exercises the sharded path only where it can pay for itself,
# and tests force it with ``shard_min_cost=0``.
DEFAULT_SHARD_MIN_COST = 16384

# A dispatch round costs a worker round-trip (payload pickling, replica
# sync, record merge) on the order of tens of milliseconds, regardless
# of how fast the production enumerates. The combination-count gate
# above mispredicts when a domain's per-candidate work is unusually
# cheap, so the coordinator also learns each production's observed
# seconds-per-combination from its serial expansions and keeps a
# production serial when its *predicted* wall time — estimated count
# times observed rate — could not pay for the round-trip. A forced
# ``min_cost <= 0`` (tests, REPRO_DBS_SHARD_MIN_COST=0) bypasses the
# adaptive gate along with the static one.
MIN_DISPATCH_SECONDS = 0.05

_COORD_IDS = itertools.count()

# Worker-process replica registry: one live replica per coordinator key
# (a respawned worker starts empty and reports ``resync``, which the
# coordinator answers with a snapshot payload).
_REPLICAS: Dict[str, Dict[str, Any]] = {}


class ShardError(RuntimeError):
    """Sharding infrastructure failure (sync, dispatch, validation).

    Raised before any replay has touched the parent pool, so the
    coordinator can always fall back to a serial advance."""


@dataclass(frozen=True)
class ShardPlan:
    """One generation's sharding decision, as traced and gated.

    ``cost`` is the largest single production's estimated combination
    count and ``productions`` the number reaching the static
    ``min_cost`` floor — at most those dispatch (the adaptive rate gate,
    :meth:`ShardCoordinator.dispatch_worthwhile`, can demote further);
    the rest of the generation runs serially in the parent (see
    :data:`DEFAULT_SHARD_MIN_COST`)."""

    generation: int
    jobs: int
    cost: int
    productions: int
    min_cost: int

    @property
    def worthwhile(self) -> bool:
        return self.cost >= self.min_cost


# ---------------------------------------------------------------------
# Worker side: capture mode
# ---------------------------------------------------------------------


class ShardCapture:
    """Diverts a replica's admission pipeline into shipped records.

    Installed as ``store._shard_capture`` for the span of one worker
    advance. The replica store is *never mutated*: syntactic keys seen
    this generation accumulate in a local overlay, semantic checks are
    get-only against the frozen base table, and every surviving
    candidate becomes a record for the parent to replay. Budget charges
    do run against the worker's (remaining-scoped) budget — that is how
    per-production charge totals, and therefore deterministic
    expression-budget death, are reconstructed at the parent."""

    __slots__ = (
        "store",
        "shard",
        "jobs",
        "local_syn",
        "records",
        "ordinal",
        "_ordinal_base",
        "_charges_base",
    )

    def __init__(self, store: PoolStore, shard: int, jobs: int):
        self.store = store
        self.shard = shard
        self.jobs = jobs
        # Syntactic keys this shard has shipped (or filter-killed) this
        # generation; the base _seen_syntactic stays frozen.
        self.local_syn: set = set()
        self.records: List[Tuple] = []
        self.ordinal = -1
        self._ordinal_base = 0
        self._charges_base = 0

    # -- production lifecycle -----------------------------------------

    def begin_production(self) -> None:
        self.local_syn.clear()
        self.records = []
        self.ordinal = -1
        self._ordinal_base = 0
        self._charges_base = self.store.budget.expressions

    def finish_production(
        self, label: str, died: Optional[str] = None
    ) -> Dict[str, Any]:
        return {
            "label": label,
            "charges": self.store.budget.expressions - self._charges_base,
            "records": self.records,
            "died": died,
        }

    # -- candidate stream ---------------------------------------------

    def stride(self, combos: Iterable[Tuple]) -> Iterable[Tuple]:
        """This shard's slice of a production's combination stream.

        Ordinals are global per production (cumulative across the
        enumerator's successive ``_split_combinations`` calls, e.g. one
        per LaSy callee name), and every visited combination's ordinal
        equals its serial budget-charge index — the invariant the
        parent's death replay depends on."""
        jobs = self.jobs
        shard = self.shard
        n = self._ordinal_base
        for combo in combos:
            if n % jobs == shard:
                self.ordinal = n
                n += 1
                self._ordinal_base = n
                yield combo
            else:
                n += 1
                self._ordinal_base = n

    # -- classic offer path -------------------------------------------

    def offer(
        self,
        expr: Expr,
        values: Optional[Tuple[Any, ...]],
        sampled_fast: bool,
    ) -> Optional[Expr]:
        """Capture-mode mirror of :meth:`PoolStore.offer`: identical
        charge and reject schedule, but instead of admitting, ship a
        record (or provably drop). Rejections that leave no pool state
        in the serial path (size, shape, var caps, syntactic dups) are
        dropped here; a filter rejection leaves its hash-consed
        syntactic key behind in the serial path, so it ships a key-only
        record."""
        store = self.store
        store.budget.charge_expression()
        store._c_offered.value += 1
        if expr.size > store.options.max_expr_size:
            store._c_rejected.value += 1
            return None
        if not _recursion_shape_ok(expr):
            store._c_rejected.value += 1
            return None
        expr_vars = free_vars(expr)
        has_vars = bool(expr_vars)
        if expr_vars:
            if expr.size > store.options.max_var_expr_size:
                store._c_rejected.value += 1
                return None
            # Safe drop only against the frozen base count: parent
            # counts grow monotonically, so base >= cap implies the
            # serial run rejects too. Under the cap, the parent
            # re-checks at replay with its live count.
            if (
                store._var_counts.get(expr.nt, 0)
                >= store.options.max_var_exprs_per_nt
            ):
                store._c_rejected.value += 1
                return None
        canonical = store.rewriter.canonicalize_root(expr)
        if canonical is not expr:
            store._c_rewrites.value += 1
            expr = canonical
        key = (expr.nt, expr)
        if key in store._seen_syntactic or key in self.local_syn:
            store._c_syntactic.value += 1
            return None
        self.local_syn.add(key)
        if values is None and store._closed_evaluable(expr):
            values = store._evaluate_vector(expr)
        if values is not None:
            predicate = store.dsl.admission_filters.get(expr.nt)
            if predicate is not None and not predicate(values, store.examples):
                store._c_rejected.value += 1
                self.records.append(("k", self.ordinal, expr))
                return None
        raw = None
        if store.options.semantic_dedup:
            raw, _cols = store._signature_state(
                expr, values, sampled_fast=sampled_fast
            )
            sid = None
            if raw is not None:
                try:
                    sid = store._sig_intern.get(raw)
                except TypeError:
                    sid = None  # unhashable: exempt, same as _intern_sig
            if sid is not None and sid in store._seen_semantic.get(
                expr.nt, ()
            ):
                # Semantic loser against the frozen base table. The
                # serial path's only surviving state is the hash-consed
                # syntactic key — plus a shadow entry when the bucket
                # has room. A loser that provably cannot shadow (bucket
                # already full at the base, which is monotone, or no
                # value vector, which serial never shadows) downgrades
                # to a key-only record: the parent replays the key and
                # skips the values/signature payload entirely.
                if values is None or not store.shadow_has_room(expr.nt):
                    store._c_semantic.value += 1
                    self.records.append(("k", self.ordinal, expr))
                    return None
        self.records.append(("o", self.ordinal, expr, values, raw, has_vars))
        return expr

    # -- batched tail --------------------------------------------------

    def batched(
        self, nt: str, combo: Tuple, values: Tuple[Any, ...], make_expr
    ) -> None:
        """Capture-mode tail of the batched inner loop, after the
        budget charge, size cap, vectorized apply, and admission filter
        already ran (they are shard-local work). Semantic losers
        against the frozen base are dropped outright when their shadow
        bucket was already full at the base — the only case the serial
        path leaves zero state for — otherwise the candidate ships and
        the parent's replay decides winner/loser/shadow with its live
        seen-sets."""
        store = self.store
        raw = None
        sid = None
        if store.options.semantic_dedup:
            raw = store._vector_sig_columns(nt, values, store.examples)
            if raw is not None:
                try:
                    sid = store._sig_intern.get(raw)
                except TypeError:
                    sid = None  # unhashable: exempt, same as _intern_sig
        if (
            sid is not None
            and sid in store._seen_semantic.get(nt, ())
            and not store.shadow_has_room(nt)
        ):
            store._c_semantic.value += 1
            return
        expr = make_expr(tuple(e.expr for e in combo))
        store._c_materialized.value += 1
        canonical = store.rewriter.canonicalize_root(expr)
        if canonical is not expr:
            store._c_rewrites.value += 1
            expr = canonical
        key = (expr.nt, expr)
        if key in store._seen_syntactic or key in self.local_syn:
            store._c_syntactic.value += 1
            return
        self.local_syn.add(key)
        self.records.append(("b", self.ordinal, expr, values, raw))


def _apply_ops(pool: PoolStore, ops: List[Tuple]) -> None:
    """Apply the parent's admission delta ops to a replica.

    Ops carry raw signatures, not interned ids: the replica re-interns
    locally, so its table assigns locally-consistent ids (membership —
    the only thing capture checks — matches the parent's exactly; the
    id *values* never influence any admission decision)."""
    for op in ops:
        kind = op[0]
        if kind == "e":
            _, expr, generation, values, raw, epoch, has_vars = op
            pool._seen_syntactic.add((expr.nt, expr))
            sig = pool._intern_sig(raw)
            if sig is not None:
                pool._seen_semantic.setdefault(expr.nt, set()).add(sig)
            if has_vars:
                pool._var_counts[expr.nt] = (
                    pool._var_counts.get(expr.nt, 0) + 1
                )
            entry = PoolEntry(
                expr,
                generation,
                values,
                sig,
                raw if values is not None else None,
                epoch,
            )
            pool._admit(entry)
        elif kind == "sh":
            _, expr, generation, values, raw, epoch = op
            pool._seen_syntactic.add((expr.nt, expr))
            sig = pool._intern_sig(raw)
            bucket = pool._shadows.setdefault(expr.nt, [])
            bucket.append(
                PoolEntry(
                    expr,
                    generation,
                    values,
                    sig,
                    raw if values is not None else None,
                    epoch,
                )
            )
        else:  # "k": hash-consed syntactic key with no entry behind it
            expr = op[1]
            pool._seen_syntactic.add((expr.nt, expr))
    pool.clear_partitions()


def _generation_productions(dsl) -> List[Production]:
    """The productions a generation expands, in grammar order — the
    same filter ``advance_batches`` applies before its cost sort. The
    grammar order is static state, identical in parent and replica, so
    an index into this list names a production unambiguously; the
    parent's *cost-sorted* order is not shippable that way (mid-
    generation admissions reach the replica through sync ops and shift
    its cost estimates)."""
    return [
        prod
        for prod in dsl.productions
        if (
            prod.kind == "lasy_fn"
            or (prod.kind in ("call", "recurse") and prod.args)
        )
    ]


def _run_capture_advance(
    pool: PoolStore, enum: Enumerator, cmd: Dict[str, Any]
) -> Tuple[List[Dict[str, Any]], Optional[str]]:
    """Drive one capture-mode *production* over the replica: the
    enumerator's own preamble and expansion (so ordering, slot splits,
    and charge schedule are the serial code's, not a copy), with
    admissions diverted through a :class:`ShardCapture`. The parent
    dispatches productions one at a time — ``cmd["prod_index"]`` names
    this task's production in static grammar order (the cost-sorted
    order is parent-only state: the replica's cost estimates shift as
    mid-generation admissions sync in) — so a production the serial
    driver would never have reached (the run solved on an earlier
    batch, or died) is never paid for. The
    replica's flags are restored afterwards — its state only ever
    changes via the parent's sync ops."""
    pool.generation = cmd["generation"]
    pool.incomplete_generation = False
    pool.pending_redo = cmd["pending_redo"]
    pool.exhausted = False
    pool.budget = Budget(
        max_seconds=cmd["max_seconds"],
        max_expressions=cmd["max_expressions"],
        deadline=(
            Deadline.after(cmd["hard_seconds"])
            if cmd["hard_seconds"] is not None
            else None
        ),
    )
    enum.enum_mode = cmd["enum_mode"]

    # Mirror of advance_batches' preamble.
    pool.generation += 1
    pool.incomplete_generation = True
    pool.pending_redo = False
    pool.last_generation_redone = False
    batched = enum._resolve_mode() == "batched"
    enum._fast_sampling = batched
    enum._slot_cache.clear()
    pool.clear_partitions()
    base = _generation_productions(pool.dsl)
    idx = cmd["prod_index"]
    if idx >= len(base):
        raise ShardError(
            f"shard production index {idx} out of range ({len(base)})"
        )
    prod = base[idx]
    label = _production_label(prod)
    if label != cmd["prod_label"]:
        # Replica grammar diverged from the parent's: a determinism
        # bug, not a recoverable infrastructure fault.
        raise ShardError(
            f"shard production mismatch: {label!r} != "
            f"{cmd['prod_label']!r}"
        )
    max_e = cmd["max_expressions"]
    if max_e is not None:
        # The worker charges only its stride — one ordinal in ``jobs`` —
        # so handing it the parent's full remaining window would let it
        # enumerate ~jobs× past the serial death point before its own
        # budget bit, all work the parent's replay cutoff then discards.
        # Scale to this shard's share of the window, with slack covering
        # stride rounding (a stride's count is within one ordinal of
        # window/jobs) so every shard provably reaches the serial death
        # ordinal before stopping.
        pool.budget.max_expressions = max_e // cmd["jobs"] + cmd["jobs"] + 2
    cap = ShardCapture(pool, cmd["shard"], cmd["jobs"])
    pool._shard_capture = cap
    tracer = get_tracer()
    productions: List[Dict[str, Any]] = []
    died: Optional[str] = None
    try:
        cap.begin_production()
        use_batched = batched and enum._batchable(prod)
        try:
            if tracer.enabled:
                enum._expand_traced(prod, tracer, use_batched)
            else:
                enum._expand(prod, use_batched)
        except BudgetExhausted:
            died = pool.budget.exhausted_reason or "expressions"
        productions.append(cap.finish_production(label, died=died))
    finally:
        pool._shard_capture = None
        enum._fast_sampling = False
        enum._slot_cache.clear()
        pool.clear_partitions()
        pool.generation = cmd["generation"]
        pool.incomplete_generation = False
        pool.pending_redo = cmd["pending_redo"]
    return productions, died


def shard_task(payload: Dict[str, Any]) -> Dict[str, Any]:
    """Worker entry point (runs under ``exec.parallel._worker_main``).

    Syncs the replica (snapshot or delta ops), runs the capture
    advance, and returns per-production records plus the replica
    registry's counter deltas for the parent to merge."""
    key = payload["key"]
    epoch = payload["epoch"]
    kind, data = payload["sync"]
    if kind == "snap":
        pool, enum = pickle.loads(data)
        _REPLICAS.clear()
        _REPLICAS[key] = {"epoch": epoch, "pool": pool, "enum": enum}
    else:
        entry = _REPLICAS.get(key)
        if entry is None or entry["epoch"] != epoch - 1:
            return {"resync": True}
        pool, enum = entry["pool"], entry["enum"]
        # Ops arrive pre-pickled: the parent serializes the shared
        # slice once per round instead of once per slot, and each
        # worker pays the unpickle off the parent's critical path.
        _apply_ops(pool, pickle.loads(data))
        entry["epoch"] = epoch
    registry = Registry()
    pool._bind_counters(registry)
    try:
        productions, died = _run_capture_advance(pool, enum, payload["advance"])
    finally:
        pool.suspend()
    return {
        "productions": productions,
        "died": died,
        "metrics": registry.snapshot(),
    }


# ---------------------------------------------------------------------
# Parent side: coordinator
# ---------------------------------------------------------------------


def _tracer_base(tracer) -> Optional[str]:
    """The current trace file path, if the tracer writes to one — the
    base for worker shard files, absorbed at coordinator close."""
    if not isinstance(tracer, JsonlTracer) or not tracer.enabled:
        return None
    name = getattr(getattr(tracer, "_file", None), "name", None)
    return name if isinstance(name, str) else None


class ShardCoordinator:
    """Owns the worker fleet and the capture/replay cycle for one
    session's sharded advances.

    Lifecycle: a :class:`~.session.SynthesisSession` keeps one
    coordinator alive across DBS runs (warm workers, delta sync);
    ``attach`` rebinds it to the run's pool/enumerator and invalidates
    worker replicas (warm-run pool extension mutates entries outside
    the logged admission paths, so each run starts from a snapshot and
    ships deltas between its generations); ``close`` reaps workers and
    splices their trace shards into the parent trace with ``worker:``
    prefixes."""

    def __init__(
        self,
        jobs: int,
        min_cost: int = DEFAULT_SHARD_MIN_COST,
    ):
        if jobs < 2:
            raise ValueError("sharding needs at least 2 jobs")
        self.jobs = jobs
        self.min_cost = min_cost
        self.failed = False
        self.closed = False
        self._key = f"shard-{os.getpid()}-{next(_COORD_IDS)}"
        self._log: List[Tuple] = []
        self._cursors: List[Optional[int]] = [None] * jobs
        self._epochs: List[int] = [0] * jobs
        self._store: Optional[PoolStore] = None
        self._enum: Optional[Enumerator] = None
        self._pool = None  # exec.parallel.ShardWorkerPool, lazily spawned
        self._trace_base: Optional[str] = None
        self._snapshot_cache: Optional[Tuple[int, bytes]] = None
        self._ops_blob_cache: Optional[Tuple[int, int, bytes]] = None
        # Observed seconds-per-estimated-combination, per production
        # label (EMA over this session's serial expansions), plus a
        # global fallback rate for labels never run serially — the
        # signal behind the adaptive dispatch gate. Timing only shifts
        # *where* a production runs, never what it admits, so feeding a
        # nondeterministic clock in here cannot break the determinism
        # contract.
        self._rates: Dict[str, float] = {}
        self._rate_global: Optional[float] = None
        # Round started on the fleet but not yet collected (see the
        # pipelined dispatch in _drive): {"cmd": ..., "log_len": ...}.
        self._inflight: Optional[Dict[str, Any]] = None

    # -- lifecycle -----------------------------------------------------

    def attach(self, store: PoolStore, enum: Enumerator) -> None:
        """Bind to a run's pool/enumerator and invalidate replicas."""
        self.detach()
        self._store = store
        self._enum = enum
        self._log.clear()
        self._cursors = [None] * self.jobs
        self._snapshot_cache = None
        self._ops_blob_cache = None
        store._shard_log = self._log
        enum.shard_coord = self

    def detach(self) -> None:
        """Unbind from the current run; workers stay warm (unless an
        abandoned prefetch is still in flight, which reaps them)."""
        self._abort_inflight()
        if self._store is not None and self._store._shard_log is self._log:
            self._store._shard_log = None
        if self._enum is not None and self._enum.shard_coord is self:
            self._enum.shard_coord = None
        self._store = None
        self._enum = None

    def close(self) -> None:
        """Reap workers and absorb their trace shards."""
        if self.closed:
            return
        self.closed = True
        self._inflight = None
        self.detach()
        pool, self._pool = self._pool, None
        if pool is None:
            return
        pool.close()
        tracer = get_tracer()
        keep = bool(os.environ.get("REPRO_TRACE_KEEP_SHARDS"))
        for shard in pool.shard_paths():
            if isinstance(tracer, JsonlTracer) and tracer.enabled:
                try:
                    tracer.absorb_shard(
                        shard, worker=f"worker:{os.path.basename(shard)}"
                    )
                except OSError:
                    pass
            if not keep:
                try:
                    os.remove(shard)
                except OSError:
                    pass

    # -- the adaptive dispatch gate -----------------------------------

    def observe_production(
        self, label: str, cost: int, elapsed: float
    ) -> None:
        """Feed one *serial* expansion's wall seconds back into the
        per-production rate estimate. Dispatched rounds are not fed
        back: their parent-side time measures sync and merge overhead,
        not enumeration, and would inflate the rate of exactly the
        productions the gate already sends out."""
        if cost <= 0 or elapsed <= 0.0:
            return
        rate = elapsed / cost
        prev = self._rates.get(label)
        self._rates[label] = rate if prev is None else 0.5 * (prev + rate)
        prev_g = self._rate_global
        self._rate_global = (
            rate if prev_g is None else 0.7 * prev_g + 0.3 * rate
        )

    def dispatch_worthwhile(self, label: str, cost: int) -> bool:
        """Whether one production should go to the fleet: the static
        combination-count floor, then — when earlier generations
        supplied a rate — the predicted-seconds floor
        (:data:`MIN_DISPATCH_SECONDS`). ``min_cost <= 0`` forces
        dispatch unconditionally, preserving the test/CI override."""
        if self.min_cost <= 0:
            return True
        if cost < self.min_cost:
            return False
        rate = self._rates.get(label, self._rate_global)
        if rate is None:
            return True  # no signal yet: trust the count estimate
        return cost * rate >= MIN_DISPATCH_SECONDS

    # -- the sharded advance ------------------------------------------

    def try_generation(
        self,
        enum: Enumerator,
        ordered: List[Production],
        redone: bool,
    ) -> Optional[Iterable[List[Expr]]]:
        """Attempt a sharded advance for the generation the enumerator
        just opened. Returns a lazy per-production drive generator, or
        None to let the caller run the serial production loop (no
        production reaches ``min_cost``, or sharding was disabled by an
        earlier failure — in every None case the parent pool is
        untouched).

        The drive is *lazy*: each production is dispatched only when
        the consumer asks for its batch, so productions the DBS driver
        never reaches — it tests each batch as it lands and abandons
        the generator on a solve — cost nothing, exactly as in the
        serial schedule. Productions under ``min_cost`` run serially in
        the parent inside the same generator, mutating the live pool as
        usual; only the expensive ones pay worker round-trips."""
        store = enum.store
        # A round can outlive its generation (prefetch abandoned on a
        # solve); it must never leak into the next one.
        self._abort_inflight()
        if self.failed or self.closed or not store.options.use_dsl:
            return None
        costs = [enum._production_cost(prod) for prod in ordered]
        plan = ShardPlan(
            generation=store.generation,
            jobs=self.jobs,
            cost=max(costs, default=0),
            productions=sum(1 for c in costs if c >= self.min_cost),
            min_cost=self.min_cost,
        )
        if not plan.worthwhile:
            return None
        budget = store.budget
        if (
            budget.max_expressions is not None
            and budget.max_expressions - budget.expressions <= 0
        ):
            return None
        # Workers address productions by grammar-order index — stable
        # shared state — not by position in the cost-sorted ``ordered``
        # (the replica's cost estimates shift as mid-generation
        # admissions sync in, which can reorder its sort).
        grammar_index = {
            id(prod): i
            for i, prod in enumerate(_generation_productions(store.dsl))
        }
        return self._drive(enum, ordered, redone, costs, grammar_index, plan)

    def _drive(
        self,
        enum: Enumerator,
        ordered: List[Production],
        redone: bool,
        costs: List[int],
        grammar_index: Dict[int, int],
        plan: ShardPlan,
    ) -> Iterable[List[Expr]]:
        """The sharded generation loop: serial expansion for cheap
        productions, dispatch + ordinal-merged replay for expensive
        ones, yielding per-production batches exactly where the serial
        loop would.

        Dispatch is pipelined one production deep: after collecting a
        round's results — and knowing from their envelopes that its
        replay cannot end the generation — the *next* expensive
        production is started on the fleet before this one is replayed,
        so the workers crunch production N+1 while the parent replays N
        and the DBS driver tests its batch. The prefetched round's sync
        ops predate N's replay, which is safe: same-generation entries
        are excluded from every argument split, and both replay tails
        re-check the syntactic and semantic seen-sets against the live
        pool, so a stale replica can only ship a few extra records —
        never admit differently."""
        store = enum.store
        tracer = get_tracer()
        prog = get_progress()
        metrics = store.metrics
        batched = enum._resolve_mode() == "batched"
        announced = False
        labels = [_production_label(prod) for prod in ordered]
        prefetched: Optional[int] = None  # position in `ordered` in flight
        for idx, prod in enumerate(ordered):
            results = None
            if not self.failed and self.dispatch_worthwhile(
                labels[idx], costs[idx]
            ):
                sent = prefetched == idx or self._send_production(
                    enum, grammar_index[id(prod)], prod, redone
                )
                prefetched = None
                if sent:
                    results = self._collect_production(enum)
                if results is not None and not self.failed:
                    nxt = None
                    if not self._replay_ends_generation(store, results):
                        for j in range(idx + 1, len(ordered)):
                            if self.dispatch_worthwhile(
                                labels[j], costs[j]
                            ):
                                nxt = j
                                break
                    if nxt is not None and self._send_production(
                        enum, grammar_index[id(ordered[nxt])],
                        ordered[nxt], redone,
                    ):
                        prefetched = nxt
            if results is None:
                use_batched = batched and enum._batchable(prod)
                t0 = perf_counter()
                if tracer.enabled:
                    batch = enum._expand_traced(prod, tracer, use_batched)
                else:
                    batch = enum._expand(prod, use_batched)
                self.observe_production(
                    labels[idx], costs[idx], perf_counter() - t0
                )
            else:
                if not announced:
                    announced = True
                    metrics.counter("enum.shard.generations").value += 1
                    if tracer.enabled:
                        tracer.event(
                            "dbs.shard.plan",
                            generation=plan.generation,
                            jobs=plan.jobs,
                            cost=plan.cost,
                            productions=plan.productions,
                        )
                batch = self._replay_one(enum, prod, results)
            if prog is not None and prog.due():
                prog.tick(
                    generation=store.generation,
                    pool_size=store.total(),
                    candidates=store.budget.expressions,
                    deadline_s=store.budget.time_remaining(),
                )
            if batch:
                yield batch
        store.incomplete_generation = False
        store.last_generation_redone = redone

    def _send_production(
        self,
        enum: Enumerator,
        grammar_idx: int,
        prod: Production,
        redone: bool,
    ) -> bool:
        """Start one production's round on the worker fleet without
        waiting for results. Returns False to run it serially instead
        (no budget window left for a dispatch to be useful, or an
        infrastructure failure — which flips the permanent serial
        fallback)."""
        store = enum.store
        budget = store.budget
        remaining_expr = None
        if budget.max_expressions is not None:
            remaining_expr = budget.max_expressions - budget.expressions
            if remaining_expr <= 0:
                # The serial expansion raises on its first charge; let
                # it, rather than paying a round-trip for zero window.
                return False
        soft = None
        if budget.max_seconds is not None:
            soft = max(0.05, budget.max_seconds - budget.elapsed)
        hard = None
        if budget.deadline is not None:
            r = budget.deadline.remaining()
            if r is not None:
                hard = max(0.05, r)
        cmd = {
            # Pre-advance values; the preamble already bumped the
            # parent's generation, the worker re-runs that bump itself.
            "generation": store.generation - 1,
            "pending_redo": redone,
            "enum_mode": enum._resolve_mode(),
            "prod_index": grammar_idx,
            "prod_label": _production_label(prod),
            "max_expressions": remaining_expr,
            "max_seconds": soft,
            "hard_seconds": hard,
            "jobs": self.jobs,
        }
        try:
            worker_pool = self._ensure_pool()
            log_len = len(self._log)
            items = [self._payload(slot, cmd) for slot in range(self.jobs)]
            worker_pool.start(shard_task, items)
        except BudgetExhausted:
            raise
        except Exception as exc:
            self._fail(exc)
            return False
        self._inflight = {"cmd": cmd, "log_len": log_len}
        return True

    def _collect_production(
        self, enum: Enumerator
    ) -> Optional[List[Dict[str, Any]]]:
        """Wait out the in-flight round and validate its per-shard
        results. Returns None to run the production serially instead
        (after flipping the permanent fallback on any infrastructure
        failure)."""
        inflight, self._inflight = self._inflight, None
        if inflight is None or self._pool is None:
            return None
        store = enum.store
        metrics = store.metrics
        cmd = inflight["cmd"]

        def rebuild(slot: int, attempt: int) -> Dict[str, Any]:
            metrics.counter("enum.shard.retries").value += 1
            return self._payload(slot, cmd, force_snapshot=True)

        soft = cmd["max_seconds"]
        hard = cmd["hard_seconds"]
        timeout = None
        if hard is not None or soft is not None:
            timeout = max(hard or 0.0, soft or 0.0) + 30.0
        try:
            results = self._pool.finish(rebuild=rebuild, timeout_s=timeout)
            for slot, res in enumerate(results):
                if (
                    not isinstance(res, dict)
                    or not res.get("productions")
                ):
                    raise ShardError(
                        f"shard {slot} returned {type(res).__name__}"
                    )
                self._cursors[slot] = inflight["log_len"]
        except BudgetExhausted:
            raise
        except Exception as exc:
            self._fail(exc)
            return None
        for res in results:
            snap = res.get("metrics")
            if snap:
                metrics.merge(snap)
        metrics.counter("enum.shard.tasks").value += len(results)
        return results

    @staticmethod
    def _replay_ends_generation(
        store: PoolStore, results: List[Dict[str, Any]]
    ) -> bool:
        """Whether replaying these shard results must end the run — a
        wall-clock death inside a worker, or the production's charge
        total pushing the parent's expression budget over its cap. Both
        are decidable from the result envelopes before any replay, and
        both gate the next production's prefetch: work dispatched past
        a death would be pure waste."""
        charges = 0
        for res in results:
            part = res["productions"][0]
            if part["died"] not in (None, "expressions"):
                return True
            charges += part["charges"]
        cap = store.budget.max_expressions
        return cap is not None and store.budget.expressions + charges > cap

    # -- internals -----------------------------------------------------

    def _ensure_pool(self):
        if self._pool is None:
            from ...exec.parallel import ShardWorkerPool

            self._trace_base = _tracer_base(get_tracer())
            self._pool = ShardWorkerPool(
                self.jobs, trace_base=self._trace_base
            )
        return self._pool

    def _payload(
        self, slot: int, cmd: Dict[str, Any], force_snapshot: bool = False
    ) -> Dict[str, Any]:
        cursor = self._cursors[slot]
        if force_snapshot or cursor is None:
            sync = ("snap", self._snapshot())
        else:
            sync = ("ops", self._ops_blob(cursor))
        self._epochs[slot] += 1
        advance = dict(cmd)
        advance["shard"] = slot
        return {
            "key": self._key,
            "epoch": self._epochs[slot],
            "sync": sync,
            "advance": advance,
        }

    def _ops_blob(self, cursor: int) -> bytes:
        """The delta-op slice ``_log[cursor:]``, pre-pickled once.

        Every slot with the same cursor (the common case — all slots
        sync after each successful round) receives the identical slice,
        and re-pickling a large op log per ``conn.send`` was the single
        biggest parent-CPU cost of a dispatch round: embedding an
        already-pickled ``bytes`` in the payload is a memcpy for the
        sender, and each worker unpickles it off the parent's critical
        path."""
        n = len(self._log)
        cached = self._ops_blob_cache
        if cached is not None and cached[0] == cursor and cached[1] == n:
            return cached[2]
        data = pickle.dumps(self._log[cursor:], pickle.HIGHEST_PROTOCOL)
        self._ops_blob_cache = (cursor, n, data)
        return data

    def _snapshot(self) -> bytes:
        """Pickled ``(pool, enumerator)`` at the current log position.
        The pool only mutates through logged admissions between
        generations, so the log length keys the cache — one pickling
        serves every fresh or respawned worker this generation."""
        n = len(self._log)
        cached = self._snapshot_cache
        if cached is not None and cached[0] == n:
            return cached[1]
        try:
            data = pickle.dumps(
                (self._store, self._enum), pickle.HIGHEST_PROTOCOL
            )
        except Exception as exc:
            raise ShardError(f"pool snapshot not picklable: {exc!r}") from exc
        self._snapshot_cache = (n, data)
        return data

    def _abort_inflight(self) -> None:
        """Discard a prefetched round whose generation was abandoned
        (the driver solved on an earlier batch, or the run died, and
        the generator was never consumed further). The workers are
        mid-enumeration on a production nobody will replay: reap them
        rather than wait, and invalidate every cursor — the replicas
        died with their processes, so the next round ships snapshots."""
        self._inflight = None
        pool = self._pool
        if pool is None or self.closed or not pool.pending:
            return
        pool.abort()
        self._cursors = [None] * self.jobs

    def _fail(self, exc: Exception) -> None:
        """Permanent fallback to serial advances for this session."""
        self.failed = True
        self._inflight = None
        if self._store is not None:
            self._store.metrics.counter("enum.shard.fallbacks").value += 1
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("dbs.shard.fallback", error=f"{type(exc).__name__}: {exc}")
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.close()

    def _replay_one(
        self,
        enum: Enumerator,
        prod: Production,
        results: List[Dict[str, Any]],
    ) -> List[Expr]:
        """Merge and replay one dispatched production's shard records in
        global ordinal order. Raises ``BudgetExhausted`` (without
        yielding the dying production's batch) at the same global
        candidate the serial schedule would have died on."""
        store = enum.store
        budget = store.budget
        tracer = get_tracer()
        metrics = store.metrics
        max_e = budget.max_expressions
        label = _production_label(prod)
        charges = 0
        shards: List[List[Tuple]] = []
        wall: Optional[str] = None
        for res in results:
            part = res["productions"][0]
            if part["label"] != label:
                # Replica order diverged from the parent's: a
                # determinism bug, not a recoverable infrastructure
                # fault. Surface it loudly.
                raise RuntimeError(
                    "shard replay order mismatch: "
                    f"{part['label']!r} != {label!r}"
                )
            charges += part["charges"]
            shards.append(part["records"])
            if part["died"] is not None and part["died"] != "expressions":
                wall = wall or part["died"]
        if wall is not None:
            # Nondeterministic wall-clock death inside a worker: drop
            # the partial production, as a serial time trip drops its
            # partial batch.
            budget._trip(wall)
        cutoff = None
        if max_e is not None and budget.expressions + charges > max_e:
            cutoff = max_e - budget.expressions
        merged = heapq.merge(*shards, key=lambda rec: rec[1])
        if tracer.enabled:
            batch = self._replay_traced(
                store, tracer, label, merged, cutoff, charges
            )
        else:
            batch = self._replay_production(store, merged, cutoff)
        metrics.counter("enum.shard.records").value += sum(
            len(s) for s in shards
        )
        if cutoff is not None:
            # The serial schedule's charge at global ordinal ``cutoff``
            # is the one that trips; its candidate (and the production's
            # partial batch) never lands.
            budget.expressions = max_e + 1
            budget._trip("expressions")
        budget.expressions += charges
        budget.check_deadline()
        return batch

    def _replay_production(
        self, store: PoolStore, merged, cutoff: Optional[int]
    ) -> List[Expr]:
        batch: List[Expr] = []
        for rec in merged:
            if cutoff is not None and rec[1] >= cutoff:
                break
            tag = rec[0]
            if tag == "b":
                result = store.replay_batched(rec[2], rec[3], rec[4])
            elif tag == "o":
                result = store.replay_admit(rec[2], rec[3], rec[4], rec[5])
            else:  # "k"
                store.replay_syn_key(rec[2])
                result = None
            if result is not None:
                batch.append(result)
        return batch

    def _replay_traced(
        self,
        store,
        tracer,
        label: str,
        merged,
        cutoff: Optional[int],
        charges: int,
    ) -> List[Expr]:
        """Replay under a ``dbs.enumerate`` span mirroring
        ``Enumerator._expand_traced`` (offered/added attrs and the
        detailed ``prof.production.*`` instruments), so sharded trace
        reports attribute parent-side merge time per production; the
        workers' own expansion spans arrive via their absorbed shards.
        ``charges`` is the production's total worker-side charge count —
        the parent budget is only advanced after this span closes, so
        the serial ``budget.expressions`` delta cannot supply it."""
        detailed = store._detailed
        offered = charges if cutoff is None else cutoff
        with tracer.span(
            "dbs.enumerate",
            generation=store.generation,
            production=label,
            shards=self.jobs,
        ) as span:
            if detailed:
                added_before = store._c_added.value
                sem_before = store._c_semantic.value
                t0 = perf_counter()
            batch: List[Expr] = []
            try:
                batch = self._replay_production(store, merged, cutoff)
            finally:
                span.set(offered=offered, added=len(batch))
                if detailed:
                    metrics = store.metrics
                    metrics.histogram("prof.production.seconds").observe(
                        perf_counter() - t0, production=label
                    )
                    if offered:
                        metrics.counter("prof.production.offered").inc(
                            offered, production=label
                        )
                    admitted = store._c_added.value - added_before
                    if admitted:
                        metrics.counter("prof.production.admitted").inc(
                            admitted, production=label
                        )
                    sig_rejected = store._c_semantic.value - sem_before
                    if sig_rejected:
                        metrics.counter("prof.production.sig_rejected").inc(
                            sig_rejected, production=label
                        )
            return batch
