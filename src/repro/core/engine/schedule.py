"""Example scheduling — which pending example TDS admits next, and
under what per-iteration deadline.

TDS (Algorithm 1) consumes its example sequence in caller order, and
`BENCH_tds_warm.json` shows why that is a p95 problem: one pathological
example whose DBS iteration times out (~5s of a 60k-expression search)
dwarfs every other iteration combined (~0.06s). The §6.2 ordering study
(F7/F8) already measured the order sensitivity; "Selecting
Representative Examples for Program Synthesis" (Pu et al.) showed a
well-chosen subset finds the same program far faster. This module turns
that observation into a pluggable policy layer, mirroring
:class:`~.registry.StrategyRegistry`'s plugin shape: named entries, a
default registry, ``register`` for extensions.

An :class:`ExampleScheduler` never touches the pool or enumerator — it
only decides, per TDS step:

* **admission order** — which queued example the session consumes next
  (:meth:`ExampleScheduler.order`);
* **admission at all** — whether an example the current program already
  satisfies joins the DBS constraint set (``admits_all``); skipped
  examples are re-verified against the final program in
  :meth:`ExampleScheduler.wrapup`;
* **per-iteration deadline** — an extra hard wall for one admission's
  DBS call (:meth:`ExampleScheduler.iteration_deadline`), composed into
  the budget via ``Budget.add_deadline`` so the tighter of it, the
  session wall (``TdsOptions.timeout_s``) and the per-DBS budget wins.

All scheduler state that must survive suspension lives on the
:class:`~..tds.TdsSession` itself (``_hard_fingerprints``,
``_example_costs``, admitted/pending/skipped index lists), so cached
sessions keep their observations across requests and the scheduler
object itself stays disposable.

Shipped schedulers:

``fifo``
    Caller order, immediate admission — byte-for-byte today's behavior
    and the default.
``adaptive``
    Cheap-examples-first by observed per-example cost (the per-index
    ``dbs_seconds`` each step records — the same signal the detailed
    ``prof.example.*`` instruments expose), with the example that
    triggered the last :class:`~..dbs.SynthesisTimeout` deferred to the
    end of the queue and retried against the richer warm pool, and
    escalating per-iteration deadlines so one pathological example
    cannot eat the whole ``TdsOptions.timeout_s``. With no observed
    signal (no prior timeout, no recorded costs) the order degrades to
    arrival order exactly, so timeout-free runs are byte-identical to
    ``fifo``.
``representative``
    Greedy subset selection à la Pu et al.: admit only examples the
    current program *fails*; verify the skipped ones against the final
    program; on a verification failure, binary-search the failing
    suffix of the skipped sequence back into the admitted set.

Counters (process-global registry, ``obs.metrics.GLOBAL``):
``schedule.deferred`` (timeout retries pushed behind the queue),
``schedule.retried`` (deferred/suffix re-admissions actually run),
``schedule.skipped`` (examples representative left out of the DBS set),
``schedule.verified`` (skip-verification evaluations). The scheduling
decisions themselves run under a ``tds.schedule`` span, which the trace
report attributes to its own ``schedule`` phase.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, TYPE_CHECKING

from ...obs import metrics as obs_metrics

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..tds import TdsSession, TdsStep

#: Environment switch consulted when ``TdsOptions.schedule`` is None —
#: same default-then-env resolution as ``REPRO_ENUM`` / shard settings.
ENV_SCHEDULE = "REPRO_TDS_SCHEDULE"
DEFAULT_SCHEDULE = "fifo"

_METRICS = obs_metrics.GLOBAL
C_DEFERRED = _METRICS.counter("schedule.deferred")
C_RETRIED = _METRICS.counter("schedule.retried")
C_SKIPPED = _METRICS.counter("schedule.skipped")
C_VERIFIED = _METRICS.counter("schedule.verified")


def resolve_schedule(name: Optional[str]) -> str:
    """The effective scheduler name: explicit option, else the
    ``REPRO_TDS_SCHEDULE`` environment switch, else ``fifo``."""
    if name:
        return name
    env = os.environ.get(ENV_SCHEDULE, "").strip()
    return env or DEFAULT_SCHEDULE


class ExampleScheduler:
    """Base scheduler: FIFO semantics. Subclasses override the hooks.

    Instances are cheap and disposable — a session re-creates its
    scheduler whenever the configured name changes (cache checkout can
    swap options). Anything that must survive suspension belongs on the
    session, not here.
    """

    #: registry name (also the ``TdsOptions.schedule`` value)
    name = "fifo"
    #: True: ``feed`` admits immediately, preserving the historical
    #: one-example-at-a-time behavior. False: examples queue and the
    #: scheduler decides the admission order at drain time.
    immediate = True
    #: True: every fed example joins the DBS constraint set eventually
    #: (the byte-identical-to-FIFO correctness bar applies). False: the
    #: scheduler may skip examples and must verify them in ``wrapup``.
    admits_all = True

    def order(self, session: "TdsSession", pending: Sequence[int]) -> List[int]:
        """Admission order over pending arrival indices (front first)."""
        return list(pending)

    def iteration_deadline(
        self, session: "TdsSession", index: int, pending_after: int
    ) -> Optional[float]:
        """An extra hard wall (seconds) for this admission's DBS call,
        or None for no per-iteration cap."""
        return None

    def observe(self, session: "TdsSession", index: int, step: "TdsStep") -> None:
        """Record one admission's outcome (cost bookkeeping, deferral)."""

    def wrapup(self, session: "TdsSession") -> List["TdsStep"]:
        """Post-queue work before the generic finalize retries (deferred
        retries, skipped-example verification). Returns extra steps."""
        return []


class FifoScheduler(ExampleScheduler):
    """Today's behavior: arrival order, admit everything, no caps."""


class AdaptiveScheduler(ExampleScheduler):
    """Cheap-first ordering + timeout deferral + escalating deadlines."""

    name = "adaptive"
    immediate = False

    #: Fraction of the remaining session wall the first attempt at an
    #: admission may burn while other examples still wait; doubles with
    #: each consecutive failure (escalation) and is lifted entirely for
    #: the last pending example and all finalize retries.
    base_share = 0.25
    #: Never cap an iteration below this (seconds) — under it the DBS
    #: call cannot even finish one cooperative check interval usefully.
    min_slice_s = 0.05

    def order(self, session, pending):
        costs = session._example_costs
        hard = session._hard_fingerprints
        fps = session._example_fingerprint
        # Stable sort: with no observed signal every key is (0, 0.0)
        # and arrival order survives — which is what makes timeout-free
        # adaptive runs byte-identical to fifo.
        return sorted(
            pending,
            key=lambda i: (
                1 if fps(i) in hard else 0,
                costs.get(fps(i), 0.0),
            ),
        )

    def iteration_deadline(self, session, index, pending_after):
        if pending_after <= 0:
            return None  # last admission: give it everything
        deadline = session._session_deadline()
        remaining = deadline.remaining() if deadline is not None else None
        if remaining is None or remaining <= 0:
            # No session wall to protect: capping would change plain
            # budgeted runs, which must stay fifo-identical.
            return None
        share = min(1.0, self.base_share * (2 ** session.failures_in_a_row))
        return max(self.min_slice_s, remaining * share)

    def observe(self, session, index, step):
        fp = session._example_fingerprint(index)
        if step.dbs_time:
            session._example_costs[fp] = (
                session._example_costs.get(fp, 0.0) + step.dbs_time
            )
        if step.action == "timeout":
            session._hard_fingerprints.add(fp)
            if session._pending:
                # The retry moves behind the rest of the queue: the
                # cheap examples enrich the pool first, and wrapup
                # reissues the hard constraint set against it.
                session._deferred.append(index)
                C_DEFERRED.value += 1

    def wrapup(self, session):
        if not session._deferred:
            return []
        deferred, session._deferred = session._deferred, []
        if session._truncated() or session.satisfies_all():
            return []
        # Retry the deferred constraint set against the pool the rest
        # of the queue built — uncapped: this is the attempt the
        # per-iteration deadlines saved the budget for.
        C_RETRIED.value += 1
        return [session._retry_step(deferred[-1])]


class RepresentativeScheduler(ExampleScheduler):
    """Admit only failing examples; verify the skipped ones at the end.

    Pu et al.'s observation: most examples are redundant — the program
    synthesized from the informative subset already satisfies them.
    Verification keeps the subset honest: any skipped example the final
    program fails is admitted back, together with every skipped example
    after it (the *failing suffix* — later skips were verified against
    a program that is about to change, so their verdicts are stale).
    The suffix boundary is found by binary search over the monotone
    prefix predicate "every skipped example before ``k`` is satisfied";
    verdicts are memoized so the search costs at most one evaluation
    per skipped example.
    """

    name = "representative"
    immediate = False
    admits_all = False

    def wrapup(self, session):
        steps: List["TdsStep"] = []
        while session._skipped and not session._truncated():
            skipped = list(session._skipped)
            verdicts: Dict[int, bool] = {}

            def satisfied(pos: int) -> bool:
                if pos not in verdicts:
                    C_VERIFIED.value += 1
                    program = session.program
                    verdicts[pos] = program is not None and session._satisfies(
                        program, session.examples[skipped[pos]]
                    )
                return verdicts[pos]

            def prefix_clean(k: int) -> bool:
                return all(satisfied(pos) for pos in range(k))

            if prefix_clean(len(skipped)):
                break  # every skip verified against the final program
            # Binary search the first failing position: prefix_clean is
            # monotone non-increasing in k, memoization bounds the total
            # evaluations by len(skipped).
            lo, hi = 1, len(skipped)
            while lo < hi:
                mid = (lo + hi) // 2
                if prefix_clean(mid):
                    lo = mid + 1
                else:
                    hi = mid
            first_failing = lo - 1
            suffix = skipped[first_failing:]
            del session._skipped[
                len(session._skipped) - len(suffix):
            ]
            for index in suffix:
                C_RETRIED.value += 1
                steps.append(session._admit(index))
        return steps


@dataclass(frozen=True)
class SchedulerEntry:
    """One registered scheduler (mirrors ``StrategyEntry``)."""

    name: str
    factory: Callable[[], ExampleScheduler]
    description: str = ""


class SchedulerRegistry:
    """Named scheduler plugins, same shape as ``StrategyRegistry``."""

    def __init__(self) -> None:
        self._entries: Dict[str, SchedulerEntry] = {}

    def register(
        self,
        name: str,
        factory: Callable[[], ExampleScheduler],
        *,
        description: str = "",
        replace: bool = False,
    ) -> SchedulerEntry:
        if name in self._entries and not replace:
            raise ValueError(f"scheduler {name!r} already registered")
        entry = SchedulerEntry(name=name, factory=factory, description=description)
        self._entries[name] = entry
        return entry

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    def names(self) -> List[str]:
        return sorted(self._entries)

    def get(self, name: str) -> SchedulerEntry:
        try:
            return self._entries[name]
        except KeyError:
            raise KeyError(
                f"unknown scheduler {name!r}; registered: {self.names()}"
            ) from None

    def create(self, name: str) -> ExampleScheduler:
        return self.get(name).factory()


def default_schedulers() -> SchedulerRegistry:
    registry = SchedulerRegistry()
    registry.register(
        "fifo",
        FifoScheduler,
        description="caller order, immediate admission (the baseline)",
    )
    registry.register(
        "adaptive",
        AdaptiveScheduler,
        description="cheap-first order, timeout deferral, escalating "
        "per-iteration deadlines",
    )
    registry.register(
        "representative",
        RepresentativeScheduler,
        description="admit only failing examples; verify skips, "
        "binary-search the failing suffix back in",
    )
    return registry


#: The process-default registry, consulted by ``TdsSession``.
SCHEDULERS = default_schedulers()
