"""Pluggable synthesis strategies (strategy layer).

The conditional pass (§5.2), the loop strategies (§5.3), and the
composition strategies (§5.4) used to be hard-wired closures inside
``_run_dbs``; here they are named plugins with a uniform interface

    (session, budget, tracer) -> Optional[Expr]

registered in a :class:`StrategyRegistry`. A plugin returns a program
satisfying every example, or None. Registration metadata drives the
DBS driver:

* ``stage`` — ``"startup"`` plugins run once before enumeration (the
  loop strategies; serially, or on the concurrent helper thread when
  ``DbsOptions.concurrent_loops``); ``"round"`` plugins run after each
  generation, in ``order``.
* ``final`` — round plugins also given one last pass when the budget
  dies mid-generation (a solution assembled from already-enumerated
  pieces should not be lost to the enumeration cutoff).
* ``span`` — a tracer span name the driver wraps serial startup runs
  in (round plugins manage their own spans).

Custom registries can be passed to :class:`~.session.SynthesisSession`
— e.g. the ablation experiments could drop a plugin instead of
threading feature flags, and a DSL could ship its own strategy.
"""

from __future__ import annotations

from dataclasses import dataclass
from time import perf_counter
from typing import Callable, Dict, Iterable, List, Optional

from ..expr import Expr

StrategyFn = Callable[..., Optional[Expr]]


@dataclass(frozen=True)
class StrategyEntry:
    name: str
    fn: StrategyFn
    stage: str = "round"  # "startup" | "round"
    order: int = 100
    final: bool = False
    span: Optional[str] = None


class StrategyRegistry:
    """Named synthesis-strategy plugins, ordered within stages."""

    def __init__(self, entries: Iterable[StrategyEntry] = ()):
        self._entries: Dict[str, StrategyEntry] = {}
        for entry in entries:
            self._entries[entry.name] = entry

    def register(
        self,
        name: str,
        fn: StrategyFn,
        *,
        stage: str = "round",
        order: int = 100,
        final: bool = False,
        span: Optional[str] = None,
        replace: bool = False,
    ) -> StrategyFn:
        if stage not in ("startup", "round"):
            raise ValueError(f"unknown stage {stage!r}")
        if name in self._entries and not replace:
            raise ValueError(f"strategy {name!r} already registered")
        self._entries[name] = StrategyEntry(name, fn, stage, order, final, span)
        return fn

    def unregister(self, name: str) -> None:
        self._entries.pop(name, None)

    def get(self, name: str) -> Optional[StrategyEntry]:
        return self._entries.get(name)

    def names(self) -> List[str]:
        return sorted(self._entries)

    def for_stage(
        self, stage: str, final_only: bool = False
    ) -> List[StrategyEntry]:
        out = [
            entry
            for entry in self._entries.values()
            if entry.stage == stage and (entry.final or not final_only)
        ]
        out.sort(key=lambda entry: (entry.order, entry.name))
        return out

    def clone(self) -> "StrategyRegistry":
        return StrategyRegistry(self._entries.values())

    def run(
        self,
        stage: str,
        session,
        budget,
        tracer,
        *,
        final_only: bool = False,
    ) -> Optional[Expr]:
        """Run a stage's plugins in order; return the first program found.

        This is the single driver both DBS paths (serial and the
        concurrent loop-strategy thread) go through, so per-strategy
        cost accounting lives here and nowhere else: when the run
        records detailed metrics, each plugin call lands in the
        ``prof.strategy.*`` labeled instruments (wall seconds, runs,
        solves) that the ``report-trace --hotspots`` strategy table
        aggregates. Serial startup plugins are additionally wrapped in
        their registered span (``entry.span`` or
        ``dbs.strategy.<name>``); round plugins manage their own spans.
        """
        registry = session.stats.registry
        detailed = registry.detailed
        for entry in self.for_stage(stage, final_only=final_only):
            t0 = perf_counter()
            if stage == "startup":
                span_name = entry.span or f"dbs.strategy.{entry.name}"
                with tracer.span(span_name) as span:
                    program = entry.fn(session, budget, tracer)
                    span.set(
                        candidates=session.stats.loop_candidates,
                        solved=program is not None,
                    )
            else:
                program = entry.fn(session, budget, tracer)
            if detailed:
                registry.histogram("prof.strategy.seconds").observe(
                    perf_counter() - t0, strategy=entry.name
                )
                registry.counter("prof.strategy.runs").inc(
                    1, strategy=entry.name
                )
                if program is not None:
                    registry.counter("prof.strategy.solved").inc(
                        1, strategy=entry.name
                    )
            if program is not None:
                return program
        return None


# -- the built-in plugins ---------------------------------------------


def loops_plugin(session, budget, tracer) -> Optional[Expr]:
    """§5.3 loop strategies: hypothesize loop structure from the
    examples, synthesize bodies via sub-DBS calls, test the assemblies."""
    del tracer  # run_loop_strategies uses the thread's current tracer
    options, dsl = session.options, session.dsl
    if not options.enable_loops or not dsl.loops:
        return None
    from ..loops import make_body_synthesizer, run_loop_strategies

    synthesize_body = make_body_synthesizer(
        dsl,
        options,
        budget,
        session.lasy_fns,
        session.lasy_signatures,
        cancel=session.cancel,
    )
    candidates = run_loop_strategies(
        dsl, session.signature, session.examples, synthesize_body
    )
    session.stats.loop_candidates += len(candidates)
    for candidate in candidates:
        if session.cancelled():
            return None
        if session.tester.passes_all(candidate.program):
            return candidate.program
    return None


def composition_plugin(session, budget, tracer) -> Optional[Expr]:
    """§5.4 composition strategies: goal-directed candidates assembled
    from the pool, tested through the same contexts."""
    pool = session.pool
    pool.guard_sets = [g.true_set for g in session.store.guards]
    with tracer.span("dbs.strategies") as span:
        offered_before = budget.expressions
        tried = 0
        try:
            for strategy in session.dsl.composition_strategies:
                if session.cancelled():
                    return None
                budget.check_deadline()
                candidates = strategy(
                    pool, session.examples, session.signature, session.dsl
                )
                if not candidates:
                    continue
                tried += len(candidates)
                program = session.test_batch(candidates)
                if program is not None:
                    span.set(solved=True)
                    return program
                for candidate in candidates:
                    pool.offer_external(candidate)
        finally:
            span.set(
                candidates=tried,
                offered=budget.expressions - offered_before,
            )
    return None


def conditionals_plugin(session, budget, tracer) -> Optional[Expr]:
    """§5.2 conditional synthesis from the recorded T(p)/B(g) sets
    (Algorithm 2, line 7); skipped when the store hasn't grown."""
    del tracer  # solve_with_buckets opens its own dbs.conditionals span
    from ..conditionals import solve_with_buckets

    options = session.options
    if not (
        options.enable_conditionals
        and session.max_branches > 1
        and session.dsl.conditionals
    ):
        return None
    store = session.store
    store_size = (len(store.programs), len(store.guards))
    if store_size == session.last_store_size:
        return None
    session.last_store_size = store_size
    session.stats.conditional_attempts += 1
    candidate = solve_with_buckets(
        store,
        session.dsl,
        session.all_set,
        session.max_branches,
        session.root_nt,
        budget,
    )
    if candidate is not None and session.tester.passes_all(candidate):
        return candidate
    return None


def default_registry() -> StrategyRegistry:
    """The stock Algorithm 2 strategy set."""
    registry = StrategyRegistry()
    registry.register(
        "loops", loops_plugin, stage="startup", order=10, span="dbs.loops"
    )
    registry.register(
        "composition", composition_plugin, stage="round", order=50, final=True
    )
    registry.register("conditionals", conditionals_plugin, stage="round", order=60)
    return registry
