"""The paper's contribution: TDS (Algorithm 1) over DBS (Algorithm 2)."""

from .budget import Budget, BudgetExhausted, default_budget
from .components import ComponentPool, PoolOptions
from .contexts import Context, contexts_of, subexpressions_of, trivial_context
from .dbs import DbsOptions, DbsResult, DbsStats, dbs
from .dsl_parser import DslParseError, parse_dsl
from .engine import (
    Enumerator,
    PoolStore,
    StrategyRegistry,
    SynthesisSession,
    default_registry,
)
from .dsl import (
    ConditionalRule,
    Dsl,
    DslBuilder,
    DslError,
    Example,
    LambdaSpec,
    LoopRule,
    NtRef,
    Production,
    Signature,
)
from .evaluator import Env, EvaluationError, run_program, try_run
from .expr import (
    Call,
    Const,
    Expr,
    Foreach,
    ForLoop,
    Function,
    Hole,
    If,
    Lambda,
    LasyCall,
    Param,
    Recurse,
    Var,
    count_branches,
)
from .program import LookupFunction, SynthesizedFunction
from .rewrite import (
    PCall,
    PConst,
    PVar,
    RewriteRule,
    Rewriter,
    parse_rule,
)
from .angelic import angelic_prune
from .incremental import WarmTdsSession, repair, resynthesize
from .tds import TdsOptions, TdsResult, TdsSession, TdsStep, tds
from .types import (
    ANY,
    BOOL,
    CHAR,
    INT,
    STRING,
    TABLE,
    XML,
    Type,
    fun,
    fun_n,
    list_of,
    parse_type,
)

__all__ = [
    "ANY", "BOOL", "Budget", "BudgetExhausted", "CHAR", "Call",
    "ComponentPool", "ConditionalRule", "Const", "Context", "DbsOptions",
    "DbsResult", "DbsStats", "Dsl", "DslBuilder", "DslError", "DslParseError", "parse_dsl", "Env",
    "EvaluationError", "Example", "Expr", "Foreach", "ForLoop", "Function",
    "Enumerator", "Hole", "INT", "If", "Lambda", "LambdaSpec", "LasyCall",
    "LookupFunction", "LoopRule", "NtRef", "PCall", "PConst", "PVar",
    "Param", "PoolOptions", "PoolStore", "Production", "Recurse",
    "RewriteRule", "Rewriter", "STRING", "Signature", "StrategyRegistry",
    "SynthesisSession", "SynthesizedFunction", "TABLE",
    "TdsOptions", "TdsResult", "TdsSession", "TdsStep",
    "default_registry",
    "WarmTdsSession", "angelic_prune", "repair", "resynthesize", "Type", "Var", "XML",
    "contexts_of", "count_branches", "dbs", "default_budget", "fun",
    "fun_n", "list_of", "parse_rule", "parse_type", "run_program",
    "subexpressions_of", "tds", "trivial_context", "try_run",
]
