"""repro — a reproduction of "Test-Driven Synthesis" (PLDI 2014).

The package implements LaSy: the TDS iterative synthesis methodology
(Algorithm 1), the DSL-based one-shot synthesizer DBS (Algorithm 2), the
LaSy front-end language, the paper's four evaluation domains (strings,
tables, XML, Pex4Fun), the comparison baselines, and the experiment
harness regenerating every table and figure of the evaluation section.
"""

__version__ = "0.1.0"

from .core import (  # noqa: F401
    Budget,
    DbsOptions,
    Dsl,
    DslBuilder,
    Example,
    Signature,
    SynthesizedFunction,
    TdsOptions,
    TdsResult,
    dbs,
    tds,
)
