"""Turn a JSONL trace into a per-phase attribution report.

The report answers the two questions a timed-out synthesis raises:
*where did the time go* and *where did the expression budget go*. Time
is attributed by **self-time** — each span's duration minus its direct
children's — so the rows sum to the traced total even with nested
spans (a loop sub-synthesis's enumeration counts as enumeration, not as
"loops"). Expressions are attributed from the ``offered`` attribute the
enumeration and strategy spans carry.

Totals are reconciled against the ``dbs.metrics`` events each DBS run
emits on exit: ``total_seconds``/``total_expressions`` must agree with
the sum of ``DbsStats.elapsed``/``DbsStats.expressions`` over the
top-level runs (nested loop-body sub-syntheses run on their own spawned
budgets and are excluded from the totals, though their time still
attributes to phases).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Sequence, Tuple, Union


class TraceParseError(ValueError):
    """A trace line was not a valid event record."""


# span name -> phase label in the attribution table
_PHASES = {
    "dbs": "dbs dispatch/other",
    "dbs.enumerate": "enumerate",
    # Batched value-vector enumeration (REPRO_ENUM=batched, the
    # default); a separate phase so batched-vs-classic time splits show
    # directly in the report.
    "dbs.enum.batched": "enum",
    # Warm-pool extension between TDS iterations (widening cached value
    # vectors, reviving shadows, re-seeding atoms).
    "pool.extend": "pool",
    # Example-scheduling decisions (engine.schedule): ordering the
    # pending queue, representative skip probes. Self-time only — the
    # admission the decision leads to is attributed to its own phases.
    "tds.schedule": "schedule",
    "dbs.test": "test",
    "dbs.strategies": "strategies",
    "dbs.conditionals": "conditionals",
    "dbs.loops": "loops",
    "dbs.loops.rule": "loops",
    # Loop strategies racing enumeration on a helper thread
    # (DbsOptions.concurrent_loops); self-time overlaps enumeration
    # wall-clock rather than adding to it.
    "dbs.loops.concurrent": "loops",
}


def load_events(source: Union[str, IO[str], Iterable[str]]) -> List[dict]:
    """Parse a JSONL trace (path, file object, or iterable of lines).

    A torn *final* line — a run killed mid-write (crash recovery,
    per-task timeout) — is dropped rather than rejected, the same
    tolerance the checkpoint journal and ``absorb_shard`` apply; every
    complete span before it is still reported. Corruption anywhere else
    raises :class:`TraceParseError`.
    """
    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            return load_events(handle)
    lines = list(source)
    events: List[dict] = []
    for lineno, line in enumerate(lines, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            if all(not rest.strip() for rest in lines[lineno:]):
                break  # torn tail: the interrupted final write
            raise TraceParseError(f"line {lineno}: not JSON: {exc}") from exc
        if not isinstance(record, dict) or "kind" not in record or "name" not in record:
            raise TraceParseError(
                f"line {lineno}: not a trace record: {line[:80]!r}"
            )
        events.append(record)
    return events


@dataclass
class PhaseRow:
    """One row of the attribution table."""

    phase: str
    calls: int = 0
    seconds: float = 0.0  # self-time
    expressions: int = 0  # budget charged inside this phase's spans


@dataclass
class ProductionRow:
    """Enumeration cost of one grammar production."""

    production: str
    calls: int = 0
    seconds: float = 0.0
    offered: int = 0
    added: int = 0
    sig_rejected: int = 0


# One aggregated profiler sample bucket:
# (worker tag or None, open-span path, frame stack) -> sample count.
SampleKey = Tuple[Optional[str], Tuple[str, ...], Tuple[str, ...]]

# Stacks parked in these leaves are waiting, not working: with jobs>1
# the driver blocks in selectors:select on worker pipes for most of the
# run (and a worker between tasks waits the same way), which used to
# bury the real worker-side hotspots under ~46% driver wait. Hotspot
# tables report them as one "idle" bucket; flame stacks collapse them
# to a single "idle" frame.
_IDLE_LEAVES = frozenset(
    {
        "selectors:select",
        "multiprocessing.connection:wait",
        # The serve front-end: the asyncio event loop parks in
        # selectors:select (covered above); its executor threads park
        # between requests in queue-condition waits inside the thread
        # pool's _worker loop.
        "threading:wait",
        "concurrent.futures.thread:_worker",
    }
)


def is_idle_stack(frames: Tuple[str, ...]) -> bool:
    """Whether a sampled frame stack is a pipe/select wait, not work."""
    return bool(frames) and frames[-1] in _IDLE_LEAVES


@dataclass
class TraceReport:
    phases: List[PhaseRow] = field(default_factory=list)
    productions: List[ProductionRow] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    labels: Dict[str, Dict[str, float]] = field(default_factory=dict)
    actions: Dict[str, int] = field(default_factory=dict)  # tds outcomes
    samples: Dict[SampleKey, int] = field(default_factory=dict)
    sample_count: int = 0  # profiler wake-ups across all shards
    sample_interval: float = 0.0  # seconds between wake-ups
    dbs_runs: int = 0
    nested_runs: int = 0
    total_seconds: float = 0.0  # top-level dbs spans
    total_expressions: int = 0  # top-level dbs budgets
    wall_seconds: float = 0.0
    n_spans: int = 0
    n_events: int = 0


def build_report(events: Sequence[dict]) -> TraceReport:
    report = TraceReport()
    phases: Dict[str, PhaseRow] = {}
    productions: Dict[str, ProductionRow] = {}
    # Children are written before their parent closes, so one forward
    # pass can pay each span's child time back to it.
    child_time: Dict[Optional[int], float] = {}

    for record in events:
        kind = record.get("kind")
        name = record.get("name", "")
        attrs = record.get("attrs") or {}
        if kind == "event":
            report.n_events += 1
            if name in ("dbs.metrics", "exec.metrics"):
                # exec.metrics carries the fault-tolerance counters
                # (exec.retries, exec.quarantined, ...) from parallel_map.
                _merge_metrics(report, attrs)
            elif name == "profile.samples":
                _merge_samples(report, attrs)
            continue
        if kind != "span":
            continue
        report.n_spans += 1
        span_id = record.get("id")
        dur = float(record.get("dur", 0.0))
        ts = float(record.get("ts", 0.0))
        report.wall_seconds = max(report.wall_seconds, ts + dur)
        self_time = dur - child_time.pop(span_id, 0.0)
        parent = record.get("parent")
        child_time[parent] = child_time.get(parent, 0.0) + dur

        if name.startswith("dbs") or name in _PHASES:
            phase = _PHASES.get(name, name)
            row = phases.get(phase)
            if row is None:
                row = phases[phase] = PhaseRow(phase)
            row.calls += 1
            row.seconds += max(self_time, 0.0)
            row.expressions += int(attrs.get("offered", 0) or 0)
        if name == "dbs":
            if attrs.get("nested"):
                report.nested_runs += 1
            else:
                report.dbs_runs += 1
                report.total_seconds += dur
        if name in ("dbs.enumerate", "dbs.enum.batched"):
            label = str(attrs.get("production", "?"))
            prow = productions.get(label)
            if prow is None:
                prow = productions[label] = ProductionRow(label)
            prow.calls += 1
            prow.seconds += dur
            prow.offered += int(attrs.get("offered", 0) or 0)
            prow.added += int(attrs.get("added", 0) or 0)
        if name in ("tds.example", "tds.retry"):
            action = str(attrs.get("action", "?"))
            report.actions[action] = report.actions.get(action, 0) + 1

    # Per-production signature rejections come from the labeled
    # prof.production.sig_rejected counter (dbs.metrics events), not
    # from span attrs; fold them into the span-derived rows.
    for key, value in report.labels.get(
        "prof.production.sig_rejected", {}
    ).items():
        label = _label_value(key, "production")
        if label is None:
            continue
        row = productions.get(label)
        if row is None:
            row = productions[label] = ProductionRow(label)
        row.sig_rejected += int(value)

    report.phases = sorted(
        phases.values(), key=lambda r: r.seconds, reverse=True
    )
    report.productions = sorted(
        productions.values(), key=lambda r: r.seconds, reverse=True
    )
    return report


def _label_value(display_key: str, label: str) -> Optional[str]:
    """The value of ``label`` in a rendered label key like
    ``"index=3"`` or ``"production=e<-Concat,reason=size"``."""
    for part in display_key.split(","):
        k, sep, v = part.partition("=")
        if sep and k == label:
            return v
    return None


def _merge_samples(report: TraceReport, attrs: Dict[str, Any]) -> None:
    """Fold one ``profile.samples`` event (parent or spliced worker
    shard) into the report's aggregated sample buckets."""
    report.sample_count += int(attrs.get("count", 0) or 0)
    interval = float(attrs.get("interval_s", 0.0) or 0.0)
    if interval:
        report.sample_interval = interval
    worker = attrs.get("worker")
    samples = report.samples
    for triple in attrs.get("samples") or ():
        try:
            path, frames, count = triple
        except (TypeError, ValueError):
            continue
        key = (worker, tuple(path), tuple(frames))
        samples[key] = samples.get(key, 0) + int(count)


def _merge_metrics(report: TraceReport, attrs: Dict[str, Any]) -> None:
    metrics = attrs.get("metrics") or {}
    nested = bool(attrs.get("nested"))
    if not nested:
        expressions = metrics.get("dbs.expressions", {})
        if isinstance(expressions, dict):
            report.total_expressions += int(expressions.get("value", 0))
    for name, snap in metrics.items():
        if not isinstance(snap, dict):
            continue
        value = snap.get("value")
        if value is None:
            value = snap.get("total", 0.0)
        if isinstance(value, (int, float)):
            report.counters[name] = report.counters.get(name, 0) + value
        for label, lvalue in (snap.get("labels") or {}).items():
            if isinstance(lvalue, dict):  # histogram bucket
                lvalue = lvalue.get("total", 0.0)
            if isinstance(lvalue, (int, float)):
                bucket = report.labels.setdefault(name, {})
                bucket[label] = bucket.get(label, 0) + lvalue


# ---------------------------------------------------------------------
# Rendering


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    rendered = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered)
    return "\n".join(lines)


def render_text(report: TraceReport, top_productions: int = 12) -> str:
    """The human-readable per-phase attribution report."""
    out: List[str] = []
    total = report.total_seconds or report.wall_seconds or 1.0
    out.append(
        f"trace: {report.n_spans} spans, {report.n_events} events, "
        f"{report.wall_seconds:.2f}s wall"
    )
    out.append(
        f"dbs runs: {report.dbs_runs} top-level"
        + (f" (+{report.nested_runs} nested)" if report.nested_runs else "")
        + f", {report.total_seconds:.2f}s, "
        f"{report.total_expressions} expressions"
    )
    if report.actions:
        summary = ", ".join(
            f"{action}={count}"
            for action, count in sorted(report.actions.items())
        )
        out.append(f"tds steps: {summary}")
    out.append("")
    out.append("Per-phase attribution (self-time):")
    out.append(
        _table(
            ("phase", "calls", "seconds", "%", "expressions"),
            [
                (
                    row.phase,
                    row.calls,
                    f"{row.seconds:.3f}",
                    f"{100.0 * row.seconds / total:.1f}",
                    row.expressions or "",
                )
                for row in report.phases
            ],
        )
    )
    if report.productions:
        out.append("")
        out.append(f"Top productions by enumeration time:")
        out.append(
            _table(
                ("production", "calls", "seconds", "offered", "added"),
                [
                    (
                        row.production,
                        row.calls,
                        f"{row.seconds:.3f}",
                        row.offered,
                        row.added,
                    )
                    for row in report.productions[:top_productions]
                ],
            )
        )
    if report.counters:
        out.append("")
        out.append("Counters (all runs):")
        out.append(
            _table(
                ("counter", "value"),
                [
                    (name, f"{value:g}")
                    for name, value in sorted(report.counters.items())
                ],
            )
        )
    return "\n".join(out)


def to_json(report: TraceReport) -> Dict[str, Any]:
    """JSON-serializable form of the report (round-trips the numbers)."""
    return {
        "dbs_runs": report.dbs_runs,
        "nested_runs": report.nested_runs,
        "total_seconds": report.total_seconds,
        "total_expressions": report.total_expressions,
        "wall_seconds": report.wall_seconds,
        "n_spans": report.n_spans,
        "n_events": report.n_events,
        "actions": report.actions,
        "phases": [
            {
                "phase": row.phase,
                "calls": row.calls,
                "seconds": row.seconds,
                "expressions": row.expressions,
            }
            for row in report.phases
        ],
        "productions": [
            {
                "production": row.production,
                "calls": row.calls,
                "seconds": row.seconds,
                "offered": row.offered,
                "added": row.added,
                "sig_rejected": row.sig_rejected,
            }
            for row in report.productions
        ],
        "counters": report.counters,
        "labels": report.labels,
    }


def render_json(report: TraceReport) -> str:
    return json.dumps(to_json(report), indent=2, sort_keys=True)


def report_from_file(path: str) -> TraceReport:
    """Convenience: load + build in one step (the CLI entry point)."""
    return build_report(load_events(path))


# ---------------------------------------------------------------------
# Hotspots (report-trace --hotspots)


@dataclass
class StrategyRow:
    """Cost of one strategy plugin (prof.strategy.* instruments)."""

    strategy: str
    runs: int = 0
    solved: int = 0
    seconds: float = 0.0


@dataclass
class ExampleRow:
    """Tester cost attributed to one TDS example index."""

    index: int
    evals: int = 0
    seconds: float = 0.0
    rejections: int = 0


@dataclass
class FunctionRow:
    """One sampled Python function (module:name)."""

    function: str
    self_samples: int = 0
    total_samples: int = 0


@dataclass
class HotspotReport:
    """Top-N cost attribution across all four hotspot dimensions."""

    sort: str = "time"
    top: int = 12
    phases: List[PhaseRow] = field(default_factory=list)
    productions: List[ProductionRow] = field(default_factory=list)
    strategies: List[StrategyRow] = field(default_factory=list)
    examples: List[ExampleRow] = field(default_factory=list)
    functions: List[FunctionRow] = field(default_factory=list)
    sample_count: int = 0
    sample_interval: float = 0.0
    idle_samples: int = 0  # select/pipe waits excluded from functions


def _labeled_map(
    report: TraceReport, metric: str, label: str
) -> Dict[str, float]:
    """``{label value: total}`` for one labeled metric in the report."""
    out: Dict[str, float] = {}
    for key, value in report.labels.get(metric, {}).items():
        name = _label_value(key, label)
        if name is not None:
            out[name] = out.get(name, 0) + value
    return out


def build_hotspots(
    report: TraceReport, top: int = 12, sort: str = "time"
) -> HotspotReport:
    """The --hotspots tables: productions and strategies sorted by
    ``sort`` (``"time"`` = self-seconds, ``"budget"`` = expressions
    offered), examples by seconds, sampled functions by self-samples."""
    if sort not in ("time", "budget"):
        raise ValueError(f"unknown hotspot sort {sort!r}")
    hs = HotspotReport(
        sort=sort,
        top=top,
        sample_count=report.sample_count,
        sample_interval=report.sample_interval,
    )

    # report.phases is already sorted by self-seconds; re-sort only for
    # the budget view so the two sorts mean the same thing everywhere.
    phase_key = (
        (lambda r: r.seconds) if sort == "time" else (lambda r: r.expressions)
    )
    hs.phases = sorted(report.phases, key=phase_key, reverse=True)[:top]

    prod_key = (
        (lambda r: r.seconds) if sort == "time" else (lambda r: r.offered)
    )
    hs.productions = sorted(report.productions, key=prod_key, reverse=True)[
        :top
    ]

    seconds = _labeled_map(report, "prof.strategy.seconds", "strategy")
    runs = _labeled_map(report, "prof.strategy.runs", "strategy")
    solved = _labeled_map(report, "prof.strategy.solved", "strategy")
    strategies = [
        StrategyRow(
            strategy=name,
            runs=int(runs.get(name, 0)),
            solved=int(solved.get(name, 0)),
            seconds=seconds.get(name, 0.0),
        )
        for name in sorted(set(seconds) | set(runs) | set(solved))
    ]
    strat_key = (
        (lambda r: r.seconds) if sort == "time" else (lambda r: r.runs)
    )
    hs.strategies = sorted(strategies, key=strat_key, reverse=True)[:top]

    ex_seconds = _labeled_map(report, "prof.example.seconds", "index")
    ex_evals = _labeled_map(report, "prof.example.evals", "index")
    ex_rejections = _labeled_map(report, "prof.example.rejections", "index")
    examples = []
    for name in set(ex_seconds) | set(ex_evals) | set(ex_rejections):
        try:
            index = int(name)
        except ValueError:
            continue
        examples.append(
            ExampleRow(
                index=index,
                evals=int(ex_evals.get(name, 0)),
                seconds=ex_seconds.get(name, 0.0),
                rejections=int(ex_rejections.get(name, 0)),
            )
        )
    hs.examples = sorted(examples, key=lambda r: r.seconds, reverse=True)[
        :top
    ]

    self_counts: Dict[str, int] = {}
    total_counts: Dict[str, int] = {}
    for (_worker, _path, frames), count in report.samples.items():
        if not frames:
            continue
        if is_idle_stack(frames):
            hs.idle_samples += count
            continue
        leaf = frames[-1]
        self_counts[leaf] = self_counts.get(leaf, 0) + count
        for fn in set(frames):
            total_counts[fn] = total_counts.get(fn, 0) + count
    functions = [
        FunctionRow(
            function=fn,
            self_samples=self_counts.get(fn, 0),
            total_samples=total,
        )
        for fn, total in total_counts.items()
    ]
    hs.functions = sorted(
        functions,
        key=lambda r: (r.self_samples, r.total_samples),
        reverse=True,
    )[:top]
    return hs


def render_hotspots(hs: HotspotReport) -> str:
    out: List[str] = []
    by = "self-time" if hs.sort == "time" else "expression budget"
    out.append(f"Hotspots (top {hs.top} by {by}):")
    if hs.phases:
        out.append("")
        out.append("Phases:")
        out.append(
            _table(
                ("phase", "calls", "seconds", "expressions"),
                [
                    (
                        row.phase,
                        row.calls,
                        f"{row.seconds:.3f}",
                        row.expressions or "",
                    )
                    for row in hs.phases
                ],
            )
        )
    if hs.productions:
        out.append("")
        out.append("Productions:")
        out.append(
            _table(
                (
                    "production",
                    "calls",
                    "seconds",
                    "offered",
                    "admitted",
                    "sig-rejected",
                ),
                [
                    (
                        row.production,
                        row.calls,
                        f"{row.seconds:.3f}",
                        row.offered,
                        row.added,
                        row.sig_rejected or "",
                    )
                    for row in hs.productions
                ],
            )
        )
    if hs.strategies:
        out.append("")
        out.append("Strategies:")
        out.append(
            _table(
                ("strategy", "runs", "solved", "seconds"),
                [
                    (row.strategy, row.runs, row.solved, f"{row.seconds:.3f}")
                    for row in hs.strategies
                ],
            )
        )
    if hs.examples:
        out.append("")
        out.append("Examples (tester attribution):")
        out.append(
            _table(
                ("index", "evals", "seconds", "rejections"),
                [
                    (
                        row.index,
                        row.evals,
                        f"{row.seconds:.3f}",
                        row.rejections or "",
                    )
                    for row in hs.examples
                ],
            )
        )
    if hs.functions:
        est = (
            f" ({hs.sample_count} wake-ups @ "
            f"{1.0 / hs.sample_interval:.0f}Hz)"
            if hs.sample_interval
            else ""
        )
        out.append("")
        out.append(f"Sampled functions{est}:")
        rows = []
        for row in hs.functions:
            seconds = (
                f"{row.self_samples * hs.sample_interval:.2f}"
                if hs.sample_interval
                else ""
            )
            rows.append(
                (row.function, row.self_samples, row.total_samples, seconds)
            )
        out.append(_table(("function", "self", "total", "~seconds"), rows))
    if hs.idle_samples:
        out.append(
            f"  idle (select/pipe wait): {hs.idle_samples} samples excluded"
        )
    if len(out) == 1:
        out.append("  (no hotspot data: trace has no detailed metrics "
                   "or profiler samples)")
    return "\n".join(out)


def hotspots_to_json(hs: HotspotReport) -> Dict[str, Any]:
    """Stable JSON schema for --hotspots --json (golden-tested)."""
    return {
        "sort": hs.sort,
        "top": hs.top,
        "sample_count": hs.sample_count,
        "sample_interval": hs.sample_interval,
        "idle_samples": hs.idle_samples,
        "phases": [
            {
                "phase": row.phase,
                "calls": row.calls,
                "seconds": row.seconds,
                "expressions": row.expressions,
            }
            for row in hs.phases
        ],
        "productions": [
            {
                "production": row.production,
                "calls": row.calls,
                "seconds": row.seconds,
                "offered": row.offered,
                "added": row.added,
                "sig_rejected": row.sig_rejected,
            }
            for row in hs.productions
        ],
        "strategies": [
            {
                "strategy": row.strategy,
                "runs": row.runs,
                "solved": row.solved,
                "seconds": row.seconds,
            }
            for row in hs.strategies
        ],
        "examples": [
            {
                "index": row.index,
                "evals": row.evals,
                "seconds": row.seconds,
                "rejections": row.rejections,
            }
            for row in hs.examples
        ],
        "functions": [
            {
                "function": row.function,
                "self_samples": row.self_samples,
                "total_samples": row.total_samples,
            }
            for row in hs.functions
        ],
    }


# ---------------------------------------------------------------------
# Flamegraph export (report-trace --flame)


def flame_lines(events: Sequence[dict]) -> List[str]:
    """Collapsed-stack lines (``frame;frame;... count``) for
    flamegraph.pl / speedscope.

    With profiler samples in the trace, each line is a sampled stack —
    worker tag (if any), then the open span path, then the Python
    frames, weighted by sample count. Without samples (tracing only),
    it falls back to the span tree itself: one line per span path,
    weighted by self-time in milliseconds — coarser, but still a valid
    flamegraph of where the wall-clock went.
    """
    sampled: Dict[Tuple[str, ...], int] = {}
    for record in events:
        if record.get("kind") != "event" or record.get("name") != "profile.samples":
            continue
        attrs = record.get("attrs") or {}
        worker = attrs.get("worker")
        prefix = (f"worker:{worker}",) if worker is not None else ()
        for triple in attrs.get("samples") or ():
            try:
                path, frames, count = triple
            except (TypeError, ValueError):
                continue
            stack_frames = tuple(frames)
            if is_idle_stack(stack_frames):
                # Waits on worker pipes are one flat "idle" frame: the
                # time stays visible in the graph without its selector
                # stack drowning out the actual work.
                stack_frames = ("idle",)
            stack = prefix + tuple(path) + stack_frames
            if not stack:
                continue
            sampled[stack] = sampled.get(stack, 0) + int(count)
    if sampled:
        return [
            ";".join(stack) + f" {count}"
            for stack, count in sorted(sampled.items())
        ]

    # Fallback: span-tree self-time. Spans close children-first, so a
    # first pass indexes every span before parent paths are resolved.
    spans: Dict[Any, dict] = {}
    child_time: Dict[Any, float] = {}
    for record in events:
        if record.get("kind") != "span":
            continue
        span_id = record.get("id")
        spans[span_id] = record
        parent = record.get("parent")
        child_time[parent] = child_time.get(parent, 0.0) + float(
            record.get("dur", 0.0)
        )

    def span_path(record: dict) -> Tuple[str, ...]:
        path: List[str] = []
        seen = set()
        node: Optional[dict] = record
        while node is not None:
            node_id = node.get("id")
            if node_id in seen:  # defensive: corrupt parent loop
                break
            seen.add(node_id)
            path.append(str(node.get("name", "?")))
            worker = (node.get("attrs") or {}).get("worker")
            node = spans.get(node.get("parent"))
            if node is None and worker is not None:
                path.append(f"worker:{worker}")
        path.reverse()
        return tuple(path)

    collapsed: Dict[Tuple[str, ...], int] = {}
    for span_id, record in spans.items():
        self_ms = int(
            (float(record.get("dur", 0.0)) - child_time.get(span_id, 0.0))
            * 1000
        )
        if self_ms <= 0:
            continue
        stack = span_path(record)
        collapsed[stack] = collapsed.get(stack, 0) + self_ms
    return [
        ";".join(stack) + f" {count}"
        for stack, count in sorted(collapsed.items())
    ]


# ---------------------------------------------------------------------
# Trace diffing (report-trace --diff old.jsonl new.jsonl)


def diff_reports(old: TraceReport, new: TraceReport) -> Dict[str, Any]:
    """Structured per-phase / per-hotspot deltas between two traces
    (the bench-regression gate's and the e2e-gap investigation's tool).
    Rows are sorted by absolute seconds delta, largest movers first."""

    def rows(
        old_map: Dict[str, float], new_map: Dict[str, float], key_name: str
    ) -> List[Dict[str, Any]]:
        out = []
        # Iterate in name order so ties on |delta| keep a stable,
        # process-independent order (set iteration is hash-seeded).
        for name in sorted(set(old_map) | set(new_map)):
            o = old_map.get(name, 0.0)
            n = new_map.get(name, 0.0)
            out.append(
                {key_name: name, "old": o, "new": n, "delta": n - o}
            )
        out.sort(key=lambda r: abs(r["delta"]), reverse=True)
        return out

    def totals(o: float, n: float) -> Dict[str, float]:
        return {"old": o, "new": n, "delta": n - o}

    return {
        "totals": {
            "total_seconds": totals(old.total_seconds, new.total_seconds),
            "total_expressions": totals(
                old.total_expressions, new.total_expressions
            ),
            "wall_seconds": totals(old.wall_seconds, new.wall_seconds),
            "dbs_runs": totals(old.dbs_runs, new.dbs_runs),
        },
        "phases": rows(
            {r.phase: r.seconds for r in old.phases},
            {r.phase: r.seconds for r in new.phases},
            "phase",
        ),
        "phase_expressions": rows(
            {r.phase: float(r.expressions) for r in old.phases},
            {r.phase: float(r.expressions) for r in new.phases},
            "phase",
        ),
        "productions": rows(
            {r.production: r.seconds for r in old.productions},
            {r.production: r.seconds for r in new.productions},
            "production",
        ),
        "counters": rows(old.counters, new.counters, "counter"),
    }


def _fmt_delta(value: float, digits: int = 3) -> str:
    text = f"{value:+.{digits}f}".rstrip("0").rstrip(".")
    return text if text not in ("+", "-", "") else "+0"


def render_diff(diff: Dict[str, Any], top: int = 12) -> str:
    out: List[str] = []
    out.append("Trace diff (new - old):")
    out.append("")
    out.append(
        _table(
            ("total", "old", "new", "delta"),
            [
                (
                    name,
                    f"{entry['old']:g}",
                    f"{entry['new']:g}",
                    _fmt_delta(entry["delta"]),
                )
                for name, entry in diff["totals"].items()
            ],
        )
    )
    for section, key_name in (
        ("phases", "phase"),
        ("productions", "production"),
        ("counters", "counter"),
    ):
        entries = diff.get(section) or []
        if not entries:
            continue
        out.append("")
        out.append(f"{section.capitalize()} (top movers):")
        out.append(
            _table(
                (key_name, "old", "new", "delta"),
                [
                    (
                        entry[key_name],
                        f"{entry['old']:g}",
                        f"{entry['new']:g}",
                        _fmt_delta(entry["delta"]),
                    )
                    for entry in entries[:top]
                ],
            )
        )
    return "\n".join(out)
