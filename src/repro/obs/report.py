"""Turn a JSONL trace into a per-phase attribution report.

The report answers the two questions a timed-out synthesis raises:
*where did the time go* and *where did the expression budget go*. Time
is attributed by **self-time** — each span's duration minus its direct
children's — so the rows sum to the traced total even with nested
spans (a loop sub-synthesis's enumeration counts as enumeration, not as
"loops"). Expressions are attributed from the ``offered`` attribute the
enumeration and strategy spans carry.

Totals are reconciled against the ``dbs.metrics`` events each DBS run
emits on exit: ``total_seconds``/``total_expressions`` must agree with
the sum of ``DbsStats.elapsed``/``DbsStats.expressions`` over the
top-level runs (nested loop-body sub-syntheses run on their own spawned
budgets and are excluded from the totals, though their time still
attributes to phases).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, IO, Iterable, List, Optional, Sequence, Tuple, Union


class TraceParseError(ValueError):
    """A trace line was not a valid event record."""


# span name -> phase label in the attribution table
_PHASES = {
    "dbs": "dbs dispatch/other",
    "dbs.enumerate": "enumerate",
    # Batched value-vector enumeration (REPRO_ENUM=batched, the
    # default); a separate phase so batched-vs-classic time splits show
    # directly in the report.
    "dbs.enum.batched": "enum",
    # Warm-pool extension between TDS iterations (widening cached value
    # vectors, reviving shadows, re-seeding atoms).
    "pool.extend": "pool",
    "dbs.test": "test",
    "dbs.strategies": "strategies",
    "dbs.conditionals": "conditionals",
    "dbs.loops": "loops",
    "dbs.loops.rule": "loops",
    # Loop strategies racing enumeration on a helper thread
    # (DbsOptions.concurrent_loops); self-time overlaps enumeration
    # wall-clock rather than adding to it.
    "dbs.loops.concurrent": "loops",
}


def load_events(source: Union[str, IO[str], Iterable[str]]) -> List[dict]:
    """Parse a JSONL trace (path, file object, or iterable of lines)."""
    if isinstance(source, str):
        with open(source, encoding="utf-8") as handle:
            return load_events(handle)
    events: List[dict] = []
    for lineno, line in enumerate(source, 1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise TraceParseError(f"line {lineno}: not JSON: {exc}") from exc
        if not isinstance(record, dict) or "kind" not in record or "name" not in record:
            raise TraceParseError(
                f"line {lineno}: not a trace record: {line[:80]!r}"
            )
        events.append(record)
    return events


@dataclass
class PhaseRow:
    """One row of the attribution table."""

    phase: str
    calls: int = 0
    seconds: float = 0.0  # self-time
    expressions: int = 0  # budget charged inside this phase's spans


@dataclass
class ProductionRow:
    """Enumeration cost of one grammar production."""

    production: str
    calls: int = 0
    seconds: float = 0.0
    offered: int = 0
    added: int = 0


@dataclass
class TraceReport:
    phases: List[PhaseRow] = field(default_factory=list)
    productions: List[ProductionRow] = field(default_factory=list)
    counters: Dict[str, float] = field(default_factory=dict)
    labels: Dict[str, Dict[str, float]] = field(default_factory=dict)
    actions: Dict[str, int] = field(default_factory=dict)  # tds outcomes
    dbs_runs: int = 0
    nested_runs: int = 0
    total_seconds: float = 0.0  # top-level dbs spans
    total_expressions: int = 0  # top-level dbs budgets
    wall_seconds: float = 0.0
    n_spans: int = 0
    n_events: int = 0


def build_report(events: Sequence[dict]) -> TraceReport:
    report = TraceReport()
    phases: Dict[str, PhaseRow] = {}
    productions: Dict[str, ProductionRow] = {}
    # Children are written before their parent closes, so one forward
    # pass can pay each span's child time back to it.
    child_time: Dict[Optional[int], float] = {}

    for record in events:
        kind = record.get("kind")
        name = record.get("name", "")
        attrs = record.get("attrs") or {}
        if kind == "event":
            report.n_events += 1
            if name in ("dbs.metrics", "exec.metrics"):
                # exec.metrics carries the fault-tolerance counters
                # (exec.retries, exec.quarantined, ...) from parallel_map.
                _merge_metrics(report, attrs)
            continue
        if kind != "span":
            continue
        report.n_spans += 1
        span_id = record.get("id")
        dur = float(record.get("dur", 0.0))
        ts = float(record.get("ts", 0.0))
        report.wall_seconds = max(report.wall_seconds, ts + dur)
        self_time = dur - child_time.pop(span_id, 0.0)
        parent = record.get("parent")
        child_time[parent] = child_time.get(parent, 0.0) + dur

        if name.startswith("dbs") or name in _PHASES:
            phase = _PHASES.get(name, name)
            row = phases.get(phase)
            if row is None:
                row = phases[phase] = PhaseRow(phase)
            row.calls += 1
            row.seconds += max(self_time, 0.0)
            row.expressions += int(attrs.get("offered", 0) or 0)
        if name == "dbs":
            if attrs.get("nested"):
                report.nested_runs += 1
            else:
                report.dbs_runs += 1
                report.total_seconds += dur
        if name in ("dbs.enumerate", "dbs.enum.batched"):
            label = str(attrs.get("production", "?"))
            prow = productions.get(label)
            if prow is None:
                prow = productions[label] = ProductionRow(label)
            prow.calls += 1
            prow.seconds += dur
            prow.offered += int(attrs.get("offered", 0) or 0)
            prow.added += int(attrs.get("added", 0) or 0)
        if name in ("tds.example", "tds.retry"):
            action = str(attrs.get("action", "?"))
            report.actions[action] = report.actions.get(action, 0) + 1

    report.phases = sorted(
        phases.values(), key=lambda r: r.seconds, reverse=True
    )
    report.productions = sorted(
        productions.values(), key=lambda r: r.seconds, reverse=True
    )
    return report


def _merge_metrics(report: TraceReport, attrs: Dict[str, Any]) -> None:
    metrics = attrs.get("metrics") or {}
    nested = bool(attrs.get("nested"))
    if not nested:
        expressions = metrics.get("dbs.expressions", {})
        if isinstance(expressions, dict):
            report.total_expressions += int(expressions.get("value", 0))
    for name, snap in metrics.items():
        if not isinstance(snap, dict):
            continue
        value = snap.get("value")
        if value is None:
            value = snap.get("total", 0.0)
        if isinstance(value, (int, float)):
            report.counters[name] = report.counters.get(name, 0) + value
        for label, lvalue in (snap.get("labels") or {}).items():
            if isinstance(lvalue, dict):  # histogram bucket
                lvalue = lvalue.get("total", 0.0)
            if isinstance(lvalue, (int, float)):
                bucket = report.labels.setdefault(name, {})
                bucket[label] = bucket.get(label, 0) + lvalue


# ---------------------------------------------------------------------
# Rendering


def _table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    rendered = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))

    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered)
    return "\n".join(lines)


def render_text(report: TraceReport, top_productions: int = 12) -> str:
    """The human-readable per-phase attribution report."""
    out: List[str] = []
    total = report.total_seconds or report.wall_seconds or 1.0
    out.append(
        f"trace: {report.n_spans} spans, {report.n_events} events, "
        f"{report.wall_seconds:.2f}s wall"
    )
    out.append(
        f"dbs runs: {report.dbs_runs} top-level"
        + (f" (+{report.nested_runs} nested)" if report.nested_runs else "")
        + f", {report.total_seconds:.2f}s, "
        f"{report.total_expressions} expressions"
    )
    if report.actions:
        summary = ", ".join(
            f"{action}={count}"
            for action, count in sorted(report.actions.items())
        )
        out.append(f"tds steps: {summary}")
    out.append("")
    out.append("Per-phase attribution (self-time):")
    out.append(
        _table(
            ("phase", "calls", "seconds", "%", "expressions"),
            [
                (
                    row.phase,
                    row.calls,
                    f"{row.seconds:.3f}",
                    f"{100.0 * row.seconds / total:.1f}",
                    row.expressions or "",
                )
                for row in report.phases
            ],
        )
    )
    if report.productions:
        out.append("")
        out.append(f"Top productions by enumeration time:")
        out.append(
            _table(
                ("production", "calls", "seconds", "offered", "added"),
                [
                    (
                        row.production,
                        row.calls,
                        f"{row.seconds:.3f}",
                        row.offered,
                        row.added,
                    )
                    for row in report.productions[:top_productions]
                ],
            )
        )
    if report.counters:
        out.append("")
        out.append("Counters (all runs):")
        out.append(
            _table(
                ("counter", "value"),
                [
                    (name, f"{value:g}")
                    for name, value in sorted(report.counters.items())
                ],
            )
        )
    return "\n".join(out)


def to_json(report: TraceReport) -> Dict[str, Any]:
    """JSON-serializable form of the report (round-trips the numbers)."""
    return {
        "dbs_runs": report.dbs_runs,
        "nested_runs": report.nested_runs,
        "total_seconds": report.total_seconds,
        "total_expressions": report.total_expressions,
        "wall_seconds": report.wall_seconds,
        "n_spans": report.n_spans,
        "n_events": report.n_events,
        "actions": report.actions,
        "phases": [
            {
                "phase": row.phase,
                "calls": row.calls,
                "seconds": row.seconds,
                "expressions": row.expressions,
            }
            for row in report.phases
        ],
        "productions": [
            {
                "production": row.production,
                "calls": row.calls,
                "seconds": row.seconds,
                "offered": row.offered,
                "added": row.added,
            }
            for row in report.productions
        ],
        "counters": report.counters,
        "labels": report.labels,
    }


def render_json(report: TraceReport) -> str:
    return json.dumps(to_json(report), indent=2, sort_keys=True)


def report_from_file(path: str) -> TraceReport:
    """Convenience: load + build in one step (the CLI entry point)."""
    return build_report(load_events(path))
