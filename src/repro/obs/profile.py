"""Hotspot attribution: sampling wall-clock profiler + progress heartbeats.

The per-phase trace report says *which phase* a second went to; this
module resolves it two levels further down:

* :class:`SamplingProfiler` — a daemon thread walking
  ``sys._current_frames()`` at ~100 Hz, so phase time resolves to
  *Python function* hotspots without instrumenting every call. Each
  sample is tagged with the sampled thread's currently open span path
  (:func:`repro.obs.trace.current_span_path`), so a frame stack like
  ``values:freeze`` is attributed to ``dbs > dbs.enum.batched`` rather
  than floating free. Samples are aggregated in the profiler thread's
  own dict and emitted as one ``profile.samples`` trace event when the
  profiler stops — the tracer is never touched from the daemon thread
  (tracers are not thread-safe). ``report-trace --flame`` turns the
  samples into collapsed-stack flamegraph input; ``--hotspots`` into a
  per-function table.

* :class:`ProgressEmitter` — rate-limited ``progress`` heartbeat events
  (generation, pool size, cand/s, deadline remaining) driven from the
  enumerator's inner loop, rendered live by :class:`TtyStatusLine`
  (CLI ``--live``) and recorded in the trace for post-hoc liveness
  analysis. The enumerator's guard is ``get_progress() is not None``
  plus a cheap :meth:`ProgressEmitter.due` check, so synthesis with no
  emitter installed pays one ``is not None`` test per guarded site.

Both are off by default, zero-dependency, and deterministic in tests:
the profiler takes an injectable ``clock``/``frames`` and can be driven
one :meth:`SamplingProfiler.sample_once` at a time without starting the
thread; the emitter takes an injectable ``clock``.
"""

from __future__ import annotations

import sys
import threading
from time import monotonic, perf_counter
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from .trace import Tracer, current_span_path, get_tracer

StackKey = Tuple[Tuple[str, ...], Tuple[str, ...]]  # (span path, frames)


def format_frames(frame, max_depth: int = 50) -> Tuple[str, ...]:
    """A frame chain as ``module:function`` strings, root first,
    truncated at ``max_depth`` frames counted from the leaf."""
    out: List[str] = []
    while frame is not None and len(out) < max_depth:
        code = frame.f_code
        module = frame.f_globals.get("__name__", "?")
        out.append(f"{module}:{code.co_name}")
        frame = frame.f_back
    out.reverse()
    return tuple(out)


class SamplingProfiler:
    """Low-overhead wall-clock sampler over ``sys._current_frames()``.

    Usage::

        profiler = SamplingProfiler(hz=100)
        profiler.start()
        ...                      # the workload, on any thread
        profiler.stop()
        profiler.emit(tracer)    # one profile.samples event

    The daemon thread sleeps ``1/hz`` between samples; each sample walks
    every live thread's stack except the profiler's own. Overhead is
    proportional to stack depth × thread count × hz, independent of the
    workload's call rate — the point of sampling over instrumenting.

    Determinism hooks: ``clock`` stamps elapsed time; ``frames`` (a
    callable returning ``{thread_ident: frame}``) replaces
    ``sys._current_frames``; :meth:`sample_once` takes an explicit
    frames mapping so tests can feed synthetic stacks without threads.
    """

    def __init__(
        self,
        hz: float = 100.0,
        max_depth: int = 50,
        clock: Callable[[], float] = monotonic,
        frames: Optional[Callable[[], Mapping[int, Any]]] = None,
    ):
        if hz <= 0:
            raise ValueError("hz must be positive")
        self.interval_s = 1.0 / hz
        self.max_depth = max_depth
        self._clock = clock
        self._frames = frames or sys._current_frames
        self._samples: Dict[StackKey, int] = {}
        self.sample_count = 0
        self._stop_event = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._started_at: Optional[float] = None
        self.elapsed_s = 0.0

    # -- sampling ------------------------------------------------------

    def sample_once(
        self, frames: Optional[Mapping[int, Any]] = None
    ) -> int:
        """Take one sample over ``frames`` (default: the live threads).
        Returns the number of thread stacks recorded."""
        if frames is None:
            frames = self._frames()
        own = threading.get_ident()
        samples = self._samples
        recorded = 0
        for ident, frame in frames.items():
            if ident == own:
                continue
            key = (
                current_span_path(ident),
                format_frames(frame, self.max_depth),
            )
            samples[key] = samples.get(key, 0) + 1
            recorded += 1
        self.sample_count += 1
        return recorded

    def _loop(self) -> None:
        while not self._stop_event.wait(self.interval_s):
            try:
                self.sample_once()
            except Exception:  # pragma: no cover - sampling must not kill
                pass

    # -- lifecycle -----------------------------------------------------

    def start(self) -> "SamplingProfiler":
        if self._thread is not None:
            raise RuntimeError("profiler already started")
        self._started_at = self._clock()
        self._stop_event.clear()
        self._thread = threading.Thread(
            target=self._loop, name="obs-sampling-profiler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> "SamplingProfiler":
        """Stop the daemon thread (idempotent; safe if never started)."""
        if self._thread is not None:
            self._stop_event.set()
            self._thread.join(timeout=5.0)
            self._thread = None
        if self._started_at is not None:
            self.elapsed_s += self._clock() - self._started_at
            self._started_at = None
        return self

    def __enter__(self) -> "SamplingProfiler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False

    # -- output --------------------------------------------------------

    def samples(self) -> Dict[StackKey, int]:
        return dict(self._samples)

    def to_payload(self) -> Dict[str, Any]:
        """The ``profile.samples`` event attrs: JSON-able, sorted for
        determinism. ``samples`` is a list of ``[span_path, frames,
        count]`` triples."""
        return {
            "count": self.sample_count,
            "interval_s": self.interval_s,
            "elapsed_s": round(self.elapsed_s, 6),
            "samples": [
                [list(path), list(frames), count]
                for (path, frames), count in sorted(self._samples.items())
            ],
        }

    def emit(self, tracer: Optional[Tracer] = None) -> bool:
        """Write the aggregated samples as one ``profile.samples`` event
        on ``tracer`` (default: the installed tracer). Call from the
        thread that owns the tracer, after :meth:`stop`. Returns whether
        anything was written."""
        tracer = tracer if tracer is not None else get_tracer()
        if not tracer.enabled or not self._samples:
            return False
        tracer.event("profile.samples", **self.to_payload())
        return True


# ---------------------------------------------------------------------
# Progress heartbeats


class ProgressEmitter:
    """Rate-limited synthesis progress heartbeats.

    The enumerator calls :meth:`due` (cheap: one clock read) and, when
    due, :meth:`tick` with the current search state. A tick computes the
    candidate rate since the previous tick, writes a ``progress`` trace
    event when a tracer is installed, and fans the payload out to any
    listeners (the ``--live`` TTY status line).
    """

    def __init__(
        self,
        interval_s: float = 0.5,
        clock: Callable[[], float] = monotonic,
        listener: Optional[Callable[[Dict[str, Any]], None]] = None,
    ):
        self.interval_s = interval_s
        self._clock = clock
        self._listeners: List[Callable[[Dict[str, Any]], None]] = []
        if listener is not None:
            self._listeners.append(listener)
        self._last_at: Optional[float] = None
        self._last_candidates = 0
        self.emitted = 0

    def add_listener(
        self, listener: Callable[[Dict[str, Any]], None]
    ) -> None:
        self._listeners.append(listener)

    def due(self) -> bool:
        last = self._last_at
        return last is None or self._clock() - last >= self.interval_s

    def tick(
        self,
        *,
        generation: int,
        pool_size: int,
        candidates: int,
        deadline_s: Optional[float] = None,
        phase: str = "enum",
        force: bool = False,
    ) -> Optional[Dict[str, Any]]:
        """Emit one heartbeat (rate-limited unless ``force``)."""
        now = self._clock()
        last = self._last_at
        if not force and last is not None and now - last < self.interval_s:
            return None
        rate: Optional[float] = None
        if last is not None and now > last:
            rate = (candidates - self._last_candidates) / (now - last)
        self._last_at = now
        self._last_candidates = candidates
        payload: Dict[str, Any] = {
            "phase": phase,
            "generation": generation,
            "pool": pool_size,
            "candidates": candidates,
        }
        if rate is not None:
            payload["cands_per_s"] = round(rate, 1)
        if deadline_s is not None:
            payload["deadline_s"] = round(deadline_s, 3)
        tracer = get_tracer()
        if tracer.enabled:
            tracer.event("progress", **payload)
        for listener in self._listeners:
            listener(payload)
        self.emitted += 1
        return payload


class TtyStatusLine:
    """Renders progress payloads as a single rewritten terminal line."""

    def __init__(self, stream=None):
        self.stream = stream if stream is not None else sys.stderr
        self._width = 0

    def __call__(self, payload: Mapping[str, Any]) -> None:
        parts = [
            f"gen {payload.get('generation', '?')}",
            f"pool {payload.get('pool', '?')}",
            f"cands {payload.get('candidates', '?')}",
        ]
        rate = payload.get("cands_per_s")
        if rate is not None:
            parts.append(f"{rate:g}/s")
        deadline = payload.get("deadline_s")
        if deadline is not None:
            parts.append(f"{max(deadline, 0.0):.1f}s left")
        line = "synthesizing: " + "  ".join(parts)
        pad = max(self._width - len(line), 0)
        self._width = len(line)
        try:
            self.stream.write("\r" + line + " " * pad)
            self.stream.flush()
        except (OSError, ValueError):  # closed/broken stream: go quiet
            pass

    def clear(self) -> None:
        if not self._width:
            return
        try:
            self.stream.write("\r" + " " * self._width + "\r")
            self.stream.flush()
        except (OSError, ValueError):
            pass
        self._width = 0


# The installed progress emitter (None = heartbeats off, the default).
# Like the tracer it is process-global; unlike the tracer it is safe to
# leave installed across threads — tick() only appends to per-emitter
# state and worst-cases at a duplicated heartbeat under a race.
_PROGRESS: Optional[ProgressEmitter] = None


def get_progress() -> Optional[ProgressEmitter]:
    return _PROGRESS


def set_progress(
    emitter: Optional[ProgressEmitter],
) -> Optional[ProgressEmitter]:
    """Install ``emitter`` (None = off); returns the previous emitter."""
    global _PROGRESS
    previous = _PROGRESS
    _PROGRESS = emitter
    return previous


# Re-exported for call sites that want wall-clock stamps consistent
# with span durations.
__all__ = [
    "ProgressEmitter",
    "SamplingProfiler",
    "TtyStatusLine",
    "format_frames",
    "get_progress",
    "perf_counter",
    "set_progress",
]
