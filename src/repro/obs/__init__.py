"""Observability for the synthesis stack: tracing, metrics, reports,
hotspot profiling.

Zero-dependency. See docs/observability.md for the event schema and a
worked profiling example.

    from repro.obs import JsonlTracer, tracing

    with tracing(JsonlTracer("out.jsonl")):
        synthesize(source)

    from repro.obs import report_from_file, render_text
    print(render_text(report_from_file("out.jsonl")))
"""

from .metrics import Counter, Gauge, Histogram, Registry, format_label_key
from .profile import (
    ProgressEmitter,
    SamplingProfiler,
    TtyStatusLine,
    get_progress,
    set_progress,
)
from .report import (
    HotspotReport,
    TraceParseError,
    TraceReport,
    build_hotspots,
    build_report,
    diff_reports,
    flame_lines,
    hotspots_to_json,
    load_events,
    render_diff,
    render_hotspots,
    render_json,
    render_text,
    report_from_file,
    to_json,
)
from .trace import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    Span,
    Tracer,
    current_span_path,
    get_tracer,
    set_thread_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "HotspotReport",
    "JsonlTracer",
    "NULL_TRACER",
    "NullTracer",
    "ProgressEmitter",
    "Registry",
    "SamplingProfiler",
    "Span",
    "TraceParseError",
    "TraceReport",
    "Tracer",
    "TtyStatusLine",
    "build_hotspots",
    "build_report",
    "current_span_path",
    "diff_reports",
    "flame_lines",
    "format_label_key",
    "get_progress",
    "get_tracer",
    "hotspots_to_json",
    "load_events",
    "render_diff",
    "render_hotspots",
    "render_json",
    "render_text",
    "report_from_file",
    "set_progress",
    "set_thread_tracer",
    "set_tracer",
    "to_json",
    "tracing",
]
