"""Observability for the synthesis stack: tracing, metrics, reports.

Zero-dependency. See docs/observability.md for the event schema and a
worked profiling example.

    from repro.obs import JsonlTracer, tracing

    with tracing(JsonlTracer("out.jsonl")):
        synthesize(source)

    from repro.obs import report_from_file, render_text
    print(render_text(report_from_file("out.jsonl")))
"""

from .metrics import Counter, Gauge, Histogram, Registry, format_label_key
from .report import (
    TraceParseError,
    TraceReport,
    build_report,
    load_events,
    render_json,
    render_text,
    report_from_file,
    to_json,
)
from .trace import (
    NULL_TRACER,
    JsonlTracer,
    NullTracer,
    Span,
    Tracer,
    get_tracer,
    set_thread_tracer,
    set_tracer,
    tracing,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "JsonlTracer",
    "NULL_TRACER",
    "NullTracer",
    "Registry",
    "Span",
    "TraceParseError",
    "TraceReport",
    "Tracer",
    "build_report",
    "format_label_key",
    "get_tracer",
    "load_events",
    "render_json",
    "render_text",
    "report_from_file",
    "set_thread_tracer",
    "set_tracer",
    "to_json",
    "tracing",
]
