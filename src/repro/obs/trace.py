"""Structured tracing for the synthesis stack.

The synthesizer is a search: almost every interesting performance
question ("where did the 234k expressions go?") is a question about how
wall-clock time and expression budget distribute over *phases* —
enumeration per grammar production, candidate testing, conditional
cover search, loop sub-syntheses. This module provides the spans those
questions are answered with:

* :class:`NullTracer` — the default. Tracing off costs one attribute
  check (``tracer.enabled``) per guarded site plus a no-op span object
  shared across all ``span()`` calls; nothing is allocated per event.
* :class:`JsonlTracer` — streams one JSON object per line to a file as
  each span *closes* (children before parents, so a crashed run still
  has every finished span on disk). :mod:`repro.obs.report` turns the
  stream into a per-phase attribution table.

Instrumented code never imports a concrete tracer; it calls
:func:`get_tracer` and uses whatever is installed::

    from repro.obs.trace import get_tracer

    with get_tracer().span("dbs.enumerate", production="Concatenate") as sp:
        batch = expand()
        sp.set(added=len(batch))

Span nesting is tracked by the tracer itself (a stack), so spans must be
closed in LIFO order — guaranteed by ``with``. The tracers are not
thread-safe; one tracer per worker is the intended sharding model.
"""

from __future__ import annotations

import json
import threading
from contextlib import contextmanager
from time import perf_counter
from typing import (
    Any,
    Dict,
    IO,
    Iterable,
    Iterator,
    List,
    Optional,
    Protocol,
    Tuple,
    Union,
)


class Span(Protocol):
    """A timed, attributed region of work (context manager)."""

    def __enter__(self) -> "Span": ...

    def __exit__(self, exc_type, exc, tb) -> bool: ...

    def set(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-span (e.g. an outcome)."""
        ...


class Tracer(Protocol):
    """The tracing interface instrumentation codes against.

    ``enabled`` is the hot-path guard: expensive attribute computation
    should hide behind ``if tracer.enabled``.
    """

    enabled: bool

    def span(self, name: str, **attrs: Any) -> Span: ...

    def event(self, name: str, **attrs: Any) -> None: ...

    def close(self) -> None: ...


class _NullSpan:
    """Shared, stateless no-op span (safe to reenter/nest)."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def set(self, **attrs: Any) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Tracing disabled: every operation is a near-zero no-op."""

    enabled = False

    def span(self, name: str, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        pass

    def close(self) -> None:
        pass


NULL_TRACER = NullTracer()


# Per-thread span-*name* stacks, readable across threads: the sampling
# profiler (repro.obs.profile) walks ``sys._current_frames()`` from its
# own daemon thread and tags each thread's stack sample with that
# thread's currently open span path. Tracers register their name stack
# here on span entry (a dict assignment under the GIL — safe to read
# concurrently; a torn read worst-cases as a one-sample-stale path).
_SPAN_PATHS: Dict[int, List[str]] = {}


def current_span_path(ident: int) -> Tuple[str, ...]:
    """The open span-name path of the thread with ``ident`` (root
    first), or () when that thread traces nothing."""
    return tuple(_SPAN_PATHS.get(ident, ()))


class _JsonlSpan:
    """One open span of a :class:`JsonlTracer`."""

    __slots__ = ("tracer", "name", "attrs", "span_id", "parent", "start")

    def __init__(
        self,
        tracer: "JsonlTracer",
        name: str,
        attrs: Dict[str, Any],
        span_id: int,
        parent: Optional[int],
    ):
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = span_id
        self.parent = parent
        self.start = 0.0

    def __enter__(self) -> "_JsonlSpan":
        tracer = self.tracer
        tracer._stack.append(self.span_id)
        names = tracer._names
        names.append(self.name)
        ident = threading.get_ident()
        if _SPAN_PATHS.get(ident) is not names:
            _SPAN_PATHS[ident] = names
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        end = perf_counter()
        stack = self.tracer._stack
        if stack and stack[-1] == self.span_id:
            stack.pop()
        names = self.tracer._names
        if names and names[-1] == self.name:
            names.pop()
        if exc_type is not None:
            self.attrs.setdefault("error", exc_type.__name__)
        self.tracer._write(
            {
                "kind": "span",
                "name": self.name,
                "id": self.span_id,
                "parent": self.parent,
                "ts": self.start - self.tracer._epoch,
                "dur": end - self.start,
                "attrs": self.attrs,
            }
        )
        return False

    def set(self, **attrs: Any) -> None:
        self.attrs.update(attrs)


class JsonlTracer:
    """Streams span/event records as JSON lines.

    Record schema (one object per line; see docs/observability.md):

    * spans — ``{"kind": "span", "name", "id", "parent", "ts", "dur",
      "attrs": {...}}``; ``ts`` is seconds since the tracer was created,
      ``dur`` the span's duration, ``parent`` the enclosing span's id
      (``null`` at top level). Written when the span closes.
    * events — ``{"kind": "event", "name", "parent", "ts",
      "attrs": {...}}``; instantaneous, written immediately.
    """

    enabled = True

    def __init__(self, sink: Union[str, IO[str]], mode: str = "w"):
        if isinstance(sink, str):
            self._file: IO[str] = open(sink, mode, encoding="utf-8")
            self._owns_file = True
        else:
            self._file = sink
            self._owns_file = False
        self._epoch = perf_counter()
        self._stack: List[int] = []
        self._names: List[str] = []
        self._next_id = 0

    def span(self, name: str, **attrs: Any) -> _JsonlSpan:
        span_id = self._next_id
        self._next_id += 1
        parent = self._stack[-1] if self._stack else None
        return _JsonlSpan(self, name, attrs, span_id, parent)

    def event(self, name: str, **attrs: Any) -> None:
        self._write(
            {
                "kind": "event",
                "name": name,
                "parent": self._stack[-1] if self._stack else None,
                "ts": perf_counter() - self._epoch,
                "attrs": attrs,
            }
        )

    def _write(self, record: Dict[str, Any]) -> None:
        if self._file.closed:
            return
        self._file.write(json.dumps(record, default=str) + "\n")

    def flush(self) -> None:
        """Push buffered records to disk (workers call this after each
        task so completed work survives an unclean pool shutdown)."""
        if not self._file.closed:
            self._file.flush()

    def absorb_shard(
        self, source: Union[str, Iterable[str]], worker: Optional[str] = None
    ) -> int:
        """Splice a worker tracer's records into this stream.

        This is the merge half of the one-tracer-per-worker sharding
        model: span ids are offset past this tracer's id space (so the
        merged stream stays collision-free), shard-root spans are
        re-parented under this tracer's currently open span, and every
        record is tagged with ``worker`` when given. ``source`` is a
        shard file path or any iterable of JSONL lines (e.g. an
        in-memory buffer from a helper thread's tracer). Returns the
        number of records absorbed.

        Shard timestamps are relative to the *worker's* epoch and are
        left untouched — within a shard they order correctly, across
        shards they are not comparable (durations, which the report
        aggregates, always are).
        """
        if isinstance(source, str):
            with open(source, encoding="utf-8") as fh:
                return self.absorb_shard(fh, worker=worker)
        offset = self._next_id
        top = self._stack[-1] if self._stack else None
        count = 0
        max_id = -1
        for line in source:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                # A worker killed mid-write (crash recovery, per-task
                # timeout) leaves a torn final line; everything after it
                # is the tail of the same interrupted write.
                break
            span_id = record.get("id")
            if span_id is not None:
                record["id"] = span_id + offset
                if record["id"] > max_id:
                    max_id = record["id"]
            if record.get("parent") is None:
                record["parent"] = top
            else:
                record["parent"] = record["parent"] + offset
            if worker is not None:
                record.setdefault("attrs", {})["worker"] = worker
            self._write(record)
            count += 1
        if max_id >= self._next_id:
            self._next_id = max_id + 1
        return count

    def close(self) -> None:
        if not self._file.closed:
            self._file.flush()
            if self._owns_file:
                self._file.close()


# ---------------------------------------------------------------------
# The installed tracer.
#
# Process-global with an optional per-thread override: tracers are not
# thread-safe (LIFO span stack), so a helper thread that must not
# interleave spans into the main thread's stream — e.g. the concurrent
# loop-strategy thread in dbs — installs its own (usually Null) tracer
# with :func:`set_thread_tracer`.

_current: Tracer = NULL_TRACER
_thread_local = threading.local()


def get_tracer() -> Tracer:
    """The installed tracer: the calling thread's override if one is
    set, else the process-global tracer (default :data:`NULL_TRACER`)."""
    override = getattr(_thread_local, "tracer", None)
    if override is not None:
        return override
    return _current


def set_tracer(tracer: Optional[Tracer]) -> Tracer:
    """Install ``tracer`` globally; ``None`` restores the null tracer."""
    global _current
    _current = tracer if tracer is not None else NULL_TRACER
    return _current


def set_thread_tracer(tracer: Optional[Tracer]) -> None:
    """Install ``tracer`` for the calling thread only; ``None`` removes
    the override (the thread sees the process-global tracer again)."""
    _thread_local.tracer = tracer


@contextmanager
def tracing(tracer: Tracer) -> Iterator[Tracer]:
    """Install ``tracer`` for the duration of the block, then restore
    the previous tracer and close ``tracer``."""
    previous = _current
    set_tracer(tracer)
    try:
        yield tracer
    finally:
        set_tracer(previous)
        tracer.close()
