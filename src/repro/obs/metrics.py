"""Typed counters, gauges and histograms for the synthesis stack.

A :class:`Registry` owns a flat namespace of named instruments. The
conventions mirror what search-heavy synthesizers need:

* **counters** — monotone totals (expressions offered, dedup hits,
  evaluator calls). The scalar total lives in ``counter.value`` — a
  plain attribute so hot loops can do ``counter.value += 1`` with no
  call overhead. Labeled breakdowns (``counter.label(nt="e", size=5)``)
  bucket the same total by dimension; they cost a dict update per call,
  so they are recorded only when the registry runs *detailed* (tracing
  on), and call sites guard with ``registry.detailed``.
* **gauges** — last-written values (elapsed seconds, pool size).
* **histograms** — count/total/min/max summaries of a sample stream
  (batch sizes, per-generation times).

Each DBS invocation owns a fresh registry (reachable as
``DbsResult.stats.registry``); :class:`~repro.core.dbs.DbsStats` is a
backward-compatible property view over it. Module-level registries
(e.g. the evaluator's) are process-global; consumers snapshot deltas.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

LabelKey = Tuple[Tuple[str, Any], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


def format_label_key(key: LabelKey) -> str:
    """Render a label key as ``k1=v1,k2=v2`` (stable order)."""
    return ",".join(f"{k}={v}" for k, v in key)


def _parse_label_key(text: str) -> LabelKey:
    """Inverse of :func:`format_label_key`, up to value stringification
    (an int-valued label comes back as a string; it re-renders to the
    same display key, which is all merged breakdowns are used for)."""
    pairs = []
    for part in text.split(","):
        k, _, v = part.partition("=")
        pairs.append((k, v))
    return tuple(sorted(pairs))


def _merge_histogram_state(hist: "Histogram", snap: Dict[str, Any]) -> None:
    hist.count += snap.get("count", 0)
    hist.total += snap.get("total", 0.0)
    for attr, pick in (("min", min), ("max", max)):
        incoming = snap.get(attr)
        if incoming is None:
            continue
        current = getattr(hist, attr)
        setattr(hist, attr, incoming if current is None else pick(current, incoming))


class Counter:
    """A monotone counter with optional labeled breakdown.

    ``merged`` records how much of ``value`` was absorbed from other
    registries (worker processes) via :meth:`Registry.merge`, so local
    delta-attribution (``value - merged``) stays immune to merges that
    land between a caller's before/after reads.
    """

    __slots__ = ("name", "value", "merged", "labeled")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.merged = 0
        self.labeled: Dict[LabelKey, int] = {}

    def inc(self, n: int = 1, **labels: Any) -> None:
        """Add ``n`` to the total (and to the labeled bucket if labels
        are given). Hot paths skip the call: ``counter.value += 1``."""
        self.value += n
        if labels:
            key = _label_key(labels)
            self.labeled[key] = self.labeled.get(key, 0) + n

    def label(self, n: int = 1, **labels: Any) -> None:
        """Record only the labeled bucket (total already counted)."""
        key = _label_key(labels)
        self.labeled[key] = self.labeled.get(key, 0) + n

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": "counter", "value": self.value}
        if self.labeled:
            # Accumulate, don't overwrite: locally-recorded label values
            # keep their Python types while merged ones come back as
            # strings (_parse_label_key), so two distinct tuple keys can
            # render to the same display key — e.g. size=5 (int) merged
            # with size=5 (str). A dict comprehension would silently
            # drop one of the buckets.
            labels: Dict[str, int] = {}
            for k, v in sorted(
                self.labeled.items(), key=lambda kv: format_label_key(kv[0])
            ):
                key = format_label_key(k)
                labels[key] = labels.get(key, 0) + v
            out["labels"] = labels
        return out


class Gauge:
    """A last-value-wins instrument."""

    __slots__ = ("name", "value", "labeled")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self.labeled: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        if labels:
            self.labeled[_label_key(labels)] = value
        else:
            self.value = value

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": "gauge", "value": self.value}
        if self.labeled:
            out["labels"] = {
                format_label_key(k): v
                for k, v in sorted(
                    self.labeled.items(),
                    key=lambda kv: format_label_key(kv[0]),
                )
            }
        return out


class Histogram:
    """Count/total/min/max summary of an observed sample stream."""

    __slots__ = ("name", "count", "total", "min", "max", "labeled")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.labeled: Dict[LabelKey, "Histogram"] = {}

    def observe(self, value: float, **labels: Any) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if labels:
            key = _label_key(labels)
            child = self.labeled.get(key)
            if child is None:
                child = Histogram(self.name)
                self.labeled[key] = child
            child.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }
        if self.labeled:
            # Same duplicate-display-key accumulation as
            # Counter.snapshot: merge buckets whose keys collide after
            # value stringification instead of overwriting.
            labels: Dict[str, Dict[str, Any]] = {}
            for k, h in sorted(
                self.labeled.items(), key=lambda kv: format_label_key(kv[0])
            ):
                key = format_label_key(k)
                bucket = labels.get(key)
                if bucket is None:
                    labels[key] = {
                        "count": h.count,
                        "total": h.total,
                        "min": h.min,
                        "max": h.max,
                    }
                else:
                    bucket["count"] += h.count
                    bucket["total"] += h.total
                    for attr, pick in (("min", min), ("max", max)):
                        incoming = getattr(h, attr)
                        if incoming is None:
                            continue
                        current = bucket[attr]
                        bucket[attr] = (
                            incoming
                            if current is None
                            else pick(current, incoming)
                        )
            out["labels"] = labels
        return out


class Registry:
    """A namespace of instruments.

    ``detailed`` gates labeled (per-grammar-symbol, per-size) recording;
    scalar totals are always live. One registry per DBS run keeps the
    counters attributable to a single search.
    """

    def __init__(self, detailed: bool = False):
        self.detailed = detailed
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def value(self, name: str, default: float = 0) -> float:
        """The scalar value of a counter/gauge (histograms: total)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.total
        return metric.value

    def local_value(self, name: str, default: float = 0) -> float:
        """Like :meth:`value` but excluding counts absorbed via
        :meth:`merge`. Delta-attribution around a region of interest
        (``before = local_value(); ...; after = local_value()``) must use
        this form on process-global registries, or a worker-snapshot
        merge landing inside the region double-counts the worker's runs.
        Gauges and histograms have no merged component and fall back to
        :meth:`value`.
        """
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Counter):
            return metric.value - metric.merged
        if isinstance(metric, Histogram):
            return metric.total
        return metric.value

    def merge(self, snapshot: Dict[str, Dict[str, Any]]) -> None:
        """Absorb a :meth:`snapshot` produced by another registry
        (typically a worker process's delta shipped back over the
        process boundary — snapshots are plain JSON-able dicts, so they
        pickle cheaply).

        Counters and histograms accumulate; gauges are last-write-wins,
        so the incoming value overwrites. Counter totals absorbed here
        are tracked in ``Counter.merged`` and excluded from
        :meth:`local_value`.
        """
        for name, snap in snapshot.items():
            kind = snap.get("type")
            if kind == "counter":
                counter = self.counter(name)
                n = int(snap.get("value", 0))
                counter.value += n
                counter.merged += n
                for key, v in snap.get("labels", {}).items():
                    parsed = _parse_label_key(key)
                    counter.labeled[parsed] = counter.labeled.get(parsed, 0) + v
            elif kind == "gauge":
                gauge = self.gauge(name)
                gauge.value = snap.get("value", 0.0)
                for key, v in snap.get("labels", {}).items():
                    gauge.labeled[_parse_label_key(key)] = v
            elif kind == "histogram":
                hist = self.histogram(name)
                _merge_histogram_state(hist, snap)
                for key, sub in snap.get("labels", {}).items():
                    parsed = _parse_label_key(key)
                    child = hist.labeled.get(parsed)
                    if child is None:
                        child = Histogram(name)
                        hist.labeled[parsed] = child
                    _merge_histogram_state(child, sub)

    def names(self) -> Iterable[str]:
        return self._metrics.keys()

    def reset(self) -> None:
        """Zero every instrument **in place** (identities survive, so
        module-level bindings like the evaluator's ``_RUNS`` stay live).
        Forked workers call this before each task: the fork inherits the
        parent's totals, and the per-task snapshot shipped back to the
        parent must contain only the task's own work."""
        for metric in self._metrics.values():
            if isinstance(metric, Counter):
                metric.value = 0
                metric.merged = 0
                metric.labeled.clear()
            elif isinstance(metric, Gauge):
                metric.value = 0.0
                metric.labeled.clear()
            elif isinstance(metric, Histogram):
                metric.count = 0
                metric.total = 0.0
                metric.min = None
                metric.max = None
                metric.labeled.clear()

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Full nested snapshot (labels included), JSON-serializable."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }

    def snapshot_flat(self) -> Dict[str, float]:
        """Scalar totals only — the cheap form embedded in trace events."""
        out: Dict[str, float] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = metric.total
            else:
                out[name] = metric.value
        return out


# A process-global registry for code with no per-run registry in reach
# (the evaluator). Consumers read deltas around a region of interest.
GLOBAL = Registry()
