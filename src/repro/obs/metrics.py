"""Typed counters, gauges and histograms for the synthesis stack.

A :class:`Registry` owns a flat namespace of named instruments. The
conventions mirror what search-heavy synthesizers need:

* **counters** — monotone totals (expressions offered, dedup hits,
  evaluator calls). The scalar total lives in ``counter.value`` — a
  plain attribute so hot loops can do ``counter.value += 1`` with no
  call overhead. Labeled breakdowns (``counter.label(nt="e", size=5)``)
  bucket the same total by dimension; they cost a dict update per call,
  so they are recorded only when the registry runs *detailed* (tracing
  on), and call sites guard with ``registry.detailed``.
* **gauges** — last-written values (elapsed seconds, pool size).
* **histograms** — count/total/min/max summaries of a sample stream
  (batch sizes, per-generation times).

Each DBS invocation owns a fresh registry (reachable as
``DbsResult.stats.registry``); :class:`~repro.core.dbs.DbsStats` is a
backward-compatible property view over it. Module-level registries
(e.g. the evaluator's) are process-global; consumers snapshot deltas.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Optional, Tuple

LabelKey = Tuple[Tuple[str, Any], ...]


def _label_key(labels: Dict[str, Any]) -> LabelKey:
    return tuple(sorted(labels.items()))


def format_label_key(key: LabelKey) -> str:
    """Render a label key as ``k1=v1,k2=v2`` (stable order)."""
    return ",".join(f"{k}={v}" for k, v in key)


class Counter:
    """A monotone counter with optional labeled breakdown."""

    __slots__ = ("name", "value", "labeled")

    def __init__(self, name: str):
        self.name = name
        self.value = 0
        self.labeled: Dict[LabelKey, int] = {}

    def inc(self, n: int = 1, **labels: Any) -> None:
        """Add ``n`` to the total (and to the labeled bucket if labels
        are given). Hot paths skip the call: ``counter.value += 1``."""
        self.value += n
        if labels:
            key = _label_key(labels)
            self.labeled[key] = self.labeled.get(key, 0) + n

    def label(self, n: int = 1, **labels: Any) -> None:
        """Record only the labeled bucket (total already counted)."""
        key = _label_key(labels)
        self.labeled[key] = self.labeled.get(key, 0) + n

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": "counter", "value": self.value}
        if self.labeled:
            out["labels"] = {
                format_label_key(k): v for k, v in sorted(self.labeled.items())
            }
        return out


class Gauge:
    """A last-value-wins instrument."""

    __slots__ = ("name", "value", "labeled")

    def __init__(self, name: str):
        self.name = name
        self.value: float = 0.0
        self.labeled: Dict[LabelKey, float] = {}

    def set(self, value: float, **labels: Any) -> None:
        if labels:
            self.labeled[_label_key(labels)] = value
        else:
            self.value = value

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {"type": "gauge", "value": self.value}
        if self.labeled:
            out["labels"] = {
                format_label_key(k): v for k, v in sorted(self.labeled.items())
            }
        return out


class Histogram:
    """Count/total/min/max summary of an observed sample stream."""

    __slots__ = ("name", "count", "total", "min", "max", "labeled")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.labeled: Dict[LabelKey, "Histogram"] = {}

    def observe(self, value: float, **labels: Any) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if labels:
            key = _label_key(labels)
            child = self.labeled.get(key)
            if child is None:
                child = Histogram(self.name)
                self.labeled[key] = child
            child.observe(value)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def snapshot(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "type": "histogram",
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
        }
        if self.labeled:
            out["labels"] = {
                format_label_key(k): {
                    "count": h.count,
                    "total": h.total,
                    "min": h.min,
                    "max": h.max,
                }
                for k, h in sorted(self.labeled.items())
            }
        return out


class Registry:
    """A namespace of instruments.

    ``detailed`` gates labeled (per-grammar-symbol, per-size) recording;
    scalar totals are always live. One registry per DBS run keeps the
    counters attributable to a single search.
    """

    def __init__(self, detailed: bool = False):
        self.detailed = detailed
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls):
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(metric).__name__}, not {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(name, Histogram)

    def value(self, name: str, default: float = 0) -> float:
        """The scalar value of a counter/gauge (histograms: total)."""
        metric = self._metrics.get(name)
        if metric is None:
            return default
        if isinstance(metric, Histogram):
            return metric.total
        return metric.value

    def names(self) -> Iterable[str]:
        return self._metrics.keys()

    def snapshot(self) -> Dict[str, Dict[str, Any]]:
        """Full nested snapshot (labels included), JSON-serializable."""
        return {
            name: metric.snapshot()
            for name, metric in sorted(self._metrics.items())
        }

    def snapshot_flat(self) -> Dict[str, float]:
        """Scalar totals only — the cheap form embedded in trace events."""
        out: Dict[str, float] = {}
        for name, metric in sorted(self._metrics.items()):
            if isinstance(metric, Histogram):
                out[name] = metric.total
            else:
                out[name] = metric.value
        return out


# A process-global registry for code with no per-run registry in reach
# (the evaluator). Consumers read deltas around a region of interest.
GLOBAL = Registry()
