"""F10 — §6.4 the CDF of all DBS execution times.

"This chart shows that DBS is quite efficient with a median running
time of approximately 2 seconds and running in under 10 seconds around
75% of the time", with a flat tail that justifies the timeout choice.
This driver collects the DBS timings of every TDS step across the three
end-user suites (and optionally the Pex4Fun games) and reports the CDF
plus the paper's two summary statistics (scaled to this host's budgets).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from ..suites import ALL_SUITES
from .common import ExperimentConfig, FAST, format_table, run_suite


@dataclass
class CdfResult:
    times: List[float] = field(default_factory=list)

    def percentile(self, q: float) -> float:
        if not self.times:
            return 0.0
        ordered = sorted(self.times)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def fraction_under(self, bound: float) -> float:
        if not self.times:
            return 0.0
        return sum(1 for t in self.times if t < bound) / len(self.times)

    def curve(self, points: int = 12) -> List[Tuple[float, float]]:
        """(time, cumulative fraction) pairs for plotting."""
        if not self.times:
            return []
        ordered = sorted(self.times)
        out: List[Tuple[float, float]] = []
        for i in range(1, points + 1):
            index = min(len(ordered) - 1, int(i * len(ordered) / points) - 1)
            out.append((ordered[index], (index + 1) / len(ordered)))
        return out


def run(
    config: Optional[ExperimentConfig] = None,
    suites: Optional[Sequence[str]] = None,
) -> CdfResult:
    config = config or FAST
    result = CdfResult()
    for name in suites if suites is not None else list(ALL_SUITES):
        outcomes = run_suite(ALL_SUITES[name], config)
        for outcome in outcomes:
            result.times.extend(outcome.dbs_times)
    return result


def report(result: CdfResult) -> str:
    curve = format_table(
        ["t(s)", "CDF"],
        [[f"{t:.2f}", f"{frac:.2f}"] for t, frac in result.curve()],
    )
    return "\n".join(
        [
            "F10 — CDF of all DBS run times (§6.4)",
            curve,
            f"n={len(result.times)}  median={result.percentile(0.5):.2f}s  "
            f"p75={result.percentile(0.75):.2f}s  "
            f"frac<10s={result.fraction_under(10.0):.2f}",
            "(paper: median ≈2s, ~75% under 10s on 2009 hardware)",
        ]
    )


def main() -> None:  # pragma: no cover - manual driver
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
