"""E3 — §6.1.3 XML transformations.

Per-benchmark TDS outcome and timing, plus the Sketch-like baseline
("we also implemented the DSL and benchmarks in Sketch, which was unable
to synthesize any of them within 10 minutes").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..baselines.sketch import sketch_synthesize
from ..core.budget import Budget
from ..domains.registry import get_domain
from ..lasy.parser import parse_lasy
from ..lasy.runner import _coerce_example
from ..suites.xml_suite import XML_BENCHMARKS
from .common import ExperimentConfig, FAST, format_table, run_suite


@dataclass
class XmlRow:
    name: str
    n_examples: int
    tds_solved: bool
    tds_holdout: bool
    tds_seconds: float
    sketch_solved: bool


def run(
    config: Optional[ExperimentConfig] = None,
    include_sketch: bool = True,
    sketch_seconds: float = 10.0,
) -> List[XmlRow]:
    config = config or FAST
    outcomes = run_suite(XML_BENCHMARKS, config)
    rows: List[XmlRow] = []
    for outcome in outcomes:
        benchmark = outcome.benchmark
        sketch_solved = False
        if include_sketch:
            program = parse_lasy(benchmark.source)
            domain = get_domain("xml")
            primary = next(
                d for d in program.declarations if not d.is_lookup
            )
            examples = [
                _coerce_example(domain, primary.signature, stmt)
                for stmt in program.examples
                if stmt.func_name == primary.name
            ]
            sketch_solved = sketch_synthesize(
                primary.signature,
                examples,
                domain.dsl(),
                budget=Budget(max_seconds=sketch_seconds),
            ).solved
        rows.append(
            XmlRow(
                name=benchmark.name,
                n_examples=benchmark.n_examples(),
                tds_solved=outcome.success,
                tds_holdout=outcome.holdout_ok,
                tds_seconds=outcome.elapsed,
                sketch_solved=sketch_solved,
            )
        )
    return rows


def report(rows: List[XmlRow]) -> str:
    table = format_table(
        ["benchmark", "#ex", "TDS", "t(s)", "holdout", "Sketch-like"],
        [
            [
                r.name,
                r.n_examples,
                "yes" if r.tds_solved else "NO",
                f"{r.tds_seconds:.2f}",
                "ok" if r.tds_holdout else "-",
                "yes" if r.sketch_solved else "timeout",
            ]
            for r in rows
        ],
    )
    solved = sum(r.tds_solved for r in rows)
    sk = sum(r.sketch_solved for r in rows)
    return "\n".join(
        [
            "E3 — XML transformations (§6.1.3)",
            table,
            f"TDS solved {solved}/{len(rows)}; Sketch-like {sk}/{len(rows)}.",
        ]
    )


def main() -> None:  # pragma: no cover - manual driver
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
