"""A1 — the §5.1 DSL-size claim.

"In practice, around 40-50 grammar rules seems to be the limit for DBS
… An earlier version of DBS without the optimizations described below
could not handle more than around 20-30 grammar rules." This driver
builds synthetic arithmetic DSLs of increasing rule count (each extra
rule is a distinct distractor function) and measures, with the §5.1
optimizations on and off, the largest DSL in which a fixed target is
still synthesized within the budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

from ..core.budget import Budget
from ..core.dbs import DbsOptions, dbs
from ..core.dsl import DslBuilder, Example, Signature
from ..core.types import INT
from .common import ExperimentConfig, FAST, format_table


def make_arith_dsl(n_rules: int):
    """An int DSL with a useful core plus ``n_rules - 6`` distractors."""
    b = DslBuilder(f"arith{n_rules}", start="e")
    b.nt("e", INT)
    b.param("e")
    b.constant("e")
    b.fn("e", "Add", ["e", "e"], lambda x, y: x + y)
    b.fn("e", "Sub", ["e", "e"], lambda x, y: x - y)
    b.fn("e", "Mul", ["e", "e"], lambda x, y: x * y)
    b.fn("e", "Neg", ["e"], lambda x: -x)

    def make_distractor(k: int):
        def distractor(x: int, y: int) -> int:
            return (x * (k + 2) - y * (k % 7)) % (k + 11)

        return distractor

    for k in range(max(0, n_rules - 6)):
        b.fn("e", f"D{k}", ["e", "e"], make_distractor(k))
    b.constants_from(lambda examples: {"e": [0, 1, 2]})
    return b.build()


# The fixed target: f(a, b) = (a + b) * (a - b), size 7.
_TARGET_EXAMPLES = [
    Example((3, 1), 8),
    Example((5, 2), 21),
    Example((4, 4), 0),
    Example((2, 5), -21),
]
_SIGNATURE = Signature("f", (("a", INT), ("b", INT)), INT)


@dataclass
class DslSizePoint:
    n_rules: int
    optimized_solved: bool
    optimized_expressions: int
    unoptimized_solved: bool
    unoptimized_expressions: int


@dataclass
class DslSizeResult:
    points: List[DslSizePoint] = field(default_factory=list)

    def limit(self, optimized: bool) -> int:
        best = 0
        for point in self.points:
            solved = (
                point.optimized_solved if optimized else point.unoptimized_solved
            )
            if solved:
                best = max(best, point.n_rules)
        return best


def _attempt(n_rules: int, semantic_dedup: bool, budget: Budget) -> Tuple[bool, int]:
    dsl = make_arith_dsl(n_rules)
    options = DbsOptions(semantic_dedup=semantic_dedup)
    if not semantic_dedup:
        # The "earlier version" also lacked the rewrite canonicalization;
        # our synthetic DSL has no rewrite rules, so dedup is the lever.
        options.max_generations = 8
    result = dbs(
        contexts=[],
        examples=_TARGET_EXAMPLES,
        seeds=[],
        dsl=dsl,
        signature=_SIGNATURE,
        budget=budget,
        options=options,
    )
    return result.program is not None, result.stats.expressions


def run(
    config: Optional[ExperimentConfig] = None,
    sizes: Tuple[int, ...] = (6, 12, 20, 30, 40, 50),
) -> DslSizeResult:
    config = config or FAST
    result = DslSizeResult()
    for n_rules in sizes:
        opt_solved, opt_exprs = _attempt(
            n_rules, True, config.budget_factory()()
        )
        raw_solved, raw_exprs = _attempt(
            n_rules, False, config.budget_factory()()
        )
        result.points.append(
            DslSizePoint(n_rules, opt_solved, opt_exprs, raw_solved, raw_exprs)
        )
    return result


def report(result: DslSizeResult) -> str:
    table = format_table(
        ["rules", "optimized", "exprs", "no-dedup", "exprs"],
        [
            [
                p.n_rules,
                "yes" if p.optimized_solved else "no",
                p.optimized_expressions,
                "yes" if p.unoptimized_solved else "no",
                p.unoptimized_expressions,
            ]
            for p in result.points
        ],
    )
    return "\n".join(
        [
            "A1 — usable DSL size with/without the §5.1 optimizations",
            table,
            f"largest solved: optimized {result.limit(True)} rules, "
            f"no-dedup {result.limit(False)} rules "
            "(paper: 40-50 vs. 20-30).",
        ]
    )


def main() -> None:  # pragma: no cover - manual driver
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
