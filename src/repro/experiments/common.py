"""Shared machinery for the experiment drivers (one per table/figure)."""

from __future__ import annotations

import contextlib
import functools
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.budget import Budget
from ..core.tds import TdsOptions
from ..suites.benchmark import Benchmark, BenchmarkOutcome


@dataclass
class ExperimentConfig:
    """Budgets for one experiment run.

    ``fast`` budgets keep the whole harness runnable in CI; ``full``
    budgets approximate the paper's 3-minute DBS timeout scaled to this
    host. Shapes (who wins, buckets, crossovers) are stable across the
    two; absolute times are not comparable with the paper's 2009 hardware
    (see EXPERIMENTS.md).

    ``trace_path``, when set, streams span/metric events for the whole
    suite to that JSONL file (``repro report-trace`` reads it back).

    ``jobs`` fans independent suite tasks out over that many worker
    processes (``repro.exec.parallel_map``); 1 keeps everything
    in-process. Worker traces and evaluator metrics are merged back, so
    reports look the same either way (see docs/performance.md).
    """

    budget_seconds: float = 20.0
    budget_expressions: int = 250_000
    hard_multiplier: float = 2.0
    trace_path: Optional[str] = None
    jobs: int = 1
    _trace_started: bool = field(default=False, repr=False, compare=False)

    def budget_factory(self, hard: bool = False) -> Callable[[], Budget]:
        scale = self.hard_multiplier if hard else 1.0
        return lambda: Budget(
            max_seconds=self.budget_seconds * scale,
            max_expressions=int(self.budget_expressions * scale),
        )

    def tracing(self):
        """Context manager: installs a JsonlTracer when configured.

        Drivers that run several suites in one process (ablation, cdf)
        append to the same trace file after the first suite truncates it.
        """
        if not self.trace_path:
            return contextlib.nullcontext()
        from ..obs import JsonlTracer, tracing

        mode = "a" if self._trace_started else "w"
        self._trace_started = True
        return tracing(JsonlTracer(self.trace_path, mode=mode))


FAST = ExperimentConfig(
    budget_seconds=12.0, budget_expressions=150_000, hard_multiplier=3.0
)
FULL = ExperimentConfig(budget_seconds=45.0, budget_expressions=600_000)


def run_benchmark(
    benchmark: Benchmark,
    config: ExperimentConfig,
    options: Optional[TdsOptions] = None,
) -> BenchmarkOutcome:
    from ..obs import get_tracer

    start = time.monotonic()
    with get_tracer().span("benchmark", benchmark=benchmark.name) as span:
        try:
            result = benchmark.run(
                budget_factory=config.budget_factory(benchmark.hard),
                options=options,
            )
            success = result.success
            holdout = success and benchmark.check_holdout(result)
            dbs_times = result.dbs_times
        except Exception:
            success = False
            holdout = False
            dbs_times = []
        span.set(success=success)
    return BenchmarkOutcome(
        benchmark=benchmark,
        success=success,
        holdout_ok=holdout,
        elapsed=time.monotonic() - start,
        dbs_times=dbs_times,
    )


def run_suite(
    benchmarks: Sequence[Benchmark],
    config: ExperimentConfig,
    options: Optional[TdsOptions] = None,
) -> List[BenchmarkOutcome]:
    benchmarks = list(benchmarks)
    if config.jobs > 1:
        from ..exec import parallel_map

        task = functools.partial(
            run_benchmark, config=config, options=options
        )
        with config.tracing():
            outcome = parallel_map(
                task,
                benchmarks,
                jobs=config.jobs,
                trace_base=config.trace_path,
            )
        return outcome.results
    with config.tracing():
        return [run_benchmark(b, config, options) for b in benchmarks]


def time_buckets(
    outcomes: Sequence[BenchmarkOutcome],
    bounds: Tuple[float, ...] = (1.0, 5.0, 25.0),
) -> List[Tuple[str, int]]:
    """The paper's presentation: how many solved under each bound."""
    rows: List[Tuple[str, int]] = []
    previous = 0.0
    solved = [o for o in outcomes if o.success]
    for bound in bounds:
        count = sum(1 for o in solved if previous <= o.elapsed < bound)
        rows.append((f"{previous:g}-{bound:g}s", count))
        previous = bound
    rows.append((f">={previous:g}s", sum(1 for o in solved if o.elapsed >= previous)))
    rows.append(("unsolved", sum(1 for o in outcomes if not o.success)))
    return rows


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    widths = [len(h) for h in headers]
    rendered = [[str(c) for c in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered)
    return "\n".join(lines)


@dataclass
class SeriesResult:
    """A named series of (x, y) points (for the figure experiments)."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)
