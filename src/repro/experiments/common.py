"""Shared machinery for the experiment drivers (one per table/figure)."""

from __future__ import annotations

import contextlib
import functools
import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from ..core.budget import Budget
from ..core.tds import TdsOptions
from ..suites.benchmark import Benchmark, BenchmarkOutcome


@dataclass
class ExperimentConfig:
    """Budgets for one experiment run.

    ``fast`` budgets keep the whole harness runnable in CI; ``full``
    budgets approximate the paper's 3-minute DBS timeout scaled to this
    host. Shapes (who wins, buckets, crossovers) are stable across the
    two; absolute times are not comparable with the paper's 2009 hardware
    (see EXPERIMENTS.md).

    ``trace_path``, when set, streams span/metric events for the whole
    suite to that JSONL file (``repro report-trace`` reads it back).

    ``jobs`` fans independent suite tasks out over that many worker
    processes (``repro.exec.parallel_map``); 1 keeps everything
    in-process. Worker traces and evaluator metrics are merged back, so
    reports look the same either way (see docs/performance.md).

    ``checkpoint_path`` enables the completed-task journal: each
    benchmark outcome is fsync'd to that JSONL file the moment it
    finishes, and a rerun with ``resume=True`` skips journaled tasks,
    restoring their results and metrics (``--checkpoint``/``--resume``
    on the CLI). ``task_timeout_s`` is the per-benchmark wall limit the
    parallel scheduler enforces by killing and replacing stuck workers;
    see docs/robustness.md.
    """

    budget_seconds: float = 20.0
    budget_expressions: int = 250_000
    hard_multiplier: float = 2.0
    trace_path: Optional[str] = None
    jobs: int = 1
    checkpoint_path: Optional[str] = None
    resume: bool = False
    task_timeout_s: Optional[float] = None
    # Cap each suite at its first N benchmarks (``--limit`` on the
    # CLI): smoke runs and the CI robustness e2e, not for results.
    limit: Optional[int] = None
    # Sampling-profiler rate (``--profile``): samples wall-clock stacks
    # at this Hz in the driver process and in every --jobs worker,
    # emitting profile.samples events into the trace. None = off.
    profile_hz: Optional[float] = None
    # Render progress heartbeats as a live stderr status line.
    live: bool = False
    _trace_started: bool = field(default=False, repr=False, compare=False)
    # Suites run so far through run_suite — the checkpoint key prefix,
    # so a driver running several suites journals them distinctly (and
    # identically across the original and the resumed run).
    _suite_index: int = field(default=0, repr=False, compare=False)

    def budget_factory(self, hard: bool = False) -> Callable[[], Budget]:
        scale = self.hard_multiplier if hard else 1.0
        return lambda: Budget(
            max_seconds=self.budget_seconds * scale,
            max_expressions=int(self.budget_expressions * scale),
        )

    def tracing(self):
        """Context manager wiring up the run's observability: a
        JsonlTracer when ``trace_path`` is set, the sampling profiler
        when ``profile_hz`` is (emitted into the trace on exit), and
        progress heartbeats (``live`` renders them on stderr).

        Drivers that run several suites in one process (ablation, cdf)
        append to the same trace file after the first suite truncates it.
        """
        if not self.trace_path and not self.profile_hz and not self.live:
            return contextlib.nullcontext()
        from ..obs import (
            JsonlTracer,
            ProgressEmitter,
            SamplingProfiler,
            TtyStatusLine,
            set_progress,
            tracing,
        )

        tracer = None
        if self.trace_path:
            mode = "a" if self._trace_started else "w"
            self._trace_started = True
            tracer = JsonlTracer(self.trace_path, mode=mode)

        @contextlib.contextmanager
        def observed():
            with contextlib.ExitStack() as stack:
                if tracer is not None:
                    stack.enter_context(tracing(tracer))
                status = TtyStatusLine() if self.live else None
                emitter = ProgressEmitter(listener=status) if (
                    self.live or tracer is not None
                ) else None
                profiler = (
                    SamplingProfiler(hz=self.profile_hz).start()
                    if self.profile_hz
                    else None
                )
                set_progress(emitter)
                try:
                    yield
                finally:
                    set_progress(None)
                    if status is not None:
                        status.clear()
                    if profiler is not None:
                        # Emit before the ExitStack closes the tracer.
                        profiler.stop().emit()

        return observed()


FAST = ExperimentConfig(
    budget_seconds=12.0, budget_expressions=150_000, hard_multiplier=3.0
)
FULL = ExperimentConfig(budget_seconds=45.0, budget_expressions=600_000)


def run_benchmark(
    benchmark: Benchmark,
    config: ExperimentConfig,
    options: Optional[TdsOptions] = None,
) -> BenchmarkOutcome:
    from ..obs import get_tracer

    start = time.monotonic()
    with get_tracer().span("benchmark", benchmark=benchmark.name) as span:
        try:
            result = benchmark.run(
                budget_factory=config.budget_factory(benchmark.hard),
                options=options,
            )
            success = result.success
            holdout = success and benchmark.check_holdout(result)
            dbs_times = result.dbs_times
        except Exception:
            success = False
            holdout = False
            dbs_times = []
        span.set(success=success)
    return BenchmarkOutcome(
        benchmark=benchmark,
        success=success,
        holdout_ok=holdout,
        elapsed=time.monotonic() - start,
        dbs_times=dbs_times,
    )


def _failure_outcome(benchmark: Benchmark, failure) -> BenchmarkOutcome:
    """A quarantined task's slot, hardened into a failed outcome so the
    experiment tables render normally."""
    return BenchmarkOutcome(
        benchmark=benchmark,
        success=False,
        holdout_ok=False,
        elapsed=0.0,
        dbs_times=[],
    )


def run_suite(
    benchmarks: Sequence[Benchmark],
    config: ExperimentConfig,
    options: Optional[TdsOptions] = None,
) -> List[BenchmarkOutcome]:
    from ..exec import TaskFailure, checkpointed_map, parallel_map

    benchmarks = list(benchmarks)
    if config.limit is not None:
        benchmarks = benchmarks[: config.limit]
    suite_index = config._suite_index
    config._suite_index += 1
    task = functools.partial(run_benchmark, config=config, options=options)

    def harden(results: List[object]) -> List[BenchmarkOutcome]:
        return [
            _failure_outcome(bench, value)
            if isinstance(value, TaskFailure)
            else value
            for bench, value in zip(benchmarks, results)
        ]

    if config.checkpoint_path:
        keys = [f"suite-{suite_index}/{b.name}" for b in benchmarks]
        by_name = {b.name: b for b in benchmarks}
        with config.tracing():
            outcome = checkpointed_map(
                task,
                benchmarks,
                keys,
                config.checkpoint_path,
                resume=config.resume,
                encode=lambda o: o.to_dict(),
                decode=lambda d: BenchmarkOutcome.from_dict(
                    d, by_name[d["name"]]
                ),
                jobs=config.jobs,
                trace_base=config.trace_path if config.jobs > 1 else None,
                task_timeout_s=config.task_timeout_s,
                profile_hz=config.profile_hz,
            )
        return harden(outcome.results)
    if config.jobs > 1:
        with config.tracing():
            outcome = parallel_map(
                task,
                benchmarks,
                jobs=config.jobs,
                trace_base=config.trace_path,
                task_timeout_s=config.task_timeout_s,
                profile_hz=config.profile_hz,
            )
        return harden(outcome.results)
    with config.tracing():
        return [run_benchmark(b, config, options) for b in benchmarks]


def time_buckets(
    outcomes: Sequence[BenchmarkOutcome],
    bounds: Tuple[float, ...] = (1.0, 5.0, 25.0),
) -> List[Tuple[str, int]]:
    """The paper's presentation: how many solved under each bound."""
    rows: List[Tuple[str, int]] = []
    previous = 0.0
    solved = [o for o in outcomes if o.success]
    for bound in bounds:
        count = sum(1 for o in solved if previous <= o.elapsed < bound)
        rows.append((f"{previous:g}-{bound:g}s", count))
        previous = bound
    rows.append((f">={previous:g}s", sum(1 for o in solved if o.elapsed >= previous)))
    rows.append(("unsolved", sum(1 for o in outcomes if not o.success)))
    return rows


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    widths = [len(h) for h in headers]
    rendered = [[str(c) for c in row] for row in rows]
    for row in rendered:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(c.ljust(w) for c, w in zip(cells, widths))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in rendered)
    return "\n".join(lines)


@dataclass
class SeriesResult:
    """A named series of (x, y) points (for the figure experiments)."""

    name: str
    points: List[Tuple[float, float]] = field(default_factory=list)
