"""E1 — §6.1.1 string transformations.

Regenerates the section's reported rows: per-sequence synthesis outcome
and timing bucket for TDS, the FlashFill (VSA) comparison — which solves
the in-scope tasks "in well under a second" and rejects the rest — and
the Sketch-like baseline, which times out across the board.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

from ..baselines.flashfill import try_learn
from ..baselines.sketch import sketch_synthesize
from ..core.budget import Budget
from ..core.values import structurally_equal
from ..domains.registry import get_domain
from ..lasy.parser import parse_lasy
from ..lasy.runner import _coerce_example
from ..suites.strings_suite import STRING_BENCHMARKS
from .common import ExperimentConfig, FAST, format_table, run_suite, time_buckets


@dataclass
class StringRow:
    name: str
    n_examples: int
    tds_solved: bool
    tds_holdout: bool
    tds_seconds: float
    flashfill_solved: bool
    flashfill_seconds: float
    sketch_solved: bool
    sketch_seconds: float


def _primary_examples(benchmark):
    program = parse_lasy(benchmark.source)
    domain = get_domain(benchmark.domain)
    primary = next(
        d for d in program.declarations if not d.is_lookup
    )
    examples = [
        _coerce_example(domain, primary.signature, stmt)
        for stmt in program.examples
        if stmt.func_name == primary.name
    ]
    return primary.signature, examples


def _flashfill_on(benchmark):
    signature, examples = _primary_examples(benchmark)
    start = time.monotonic()
    # FlashFill handles pure string rows (no int params, no helpers).
    if any(ty.name != "str" for ty in signature.param_types):
        return False, time.monotonic() - start
    program = try_learn(examples)
    if program is None:
        return False, time.monotonic() - start
    for example in examples:
        try:
            value = program(*example.args)
        except Exception:
            return False, time.monotonic() - start
        if not structurally_equal(value, example.output):
            return False, time.monotonic() - start
    return True, time.monotonic() - start


def run(
    config: Optional[ExperimentConfig] = None,
    include_sketch: bool = True,
    sketch_seconds: float = 10.0,
) -> List[StringRow]:
    config = config or FAST
    outcomes = run_suite(STRING_BENCHMARKS, config)
    rows: List[StringRow] = []
    for outcome in outcomes:
        benchmark = outcome.benchmark
        ff_solved, ff_time = _flashfill_on(benchmark)
        if include_sketch:
            signature, examples = _primary_examples(benchmark)
            sk = sketch_synthesize(
                signature,
                examples,
                get_domain("strings").dsl(),
                budget=Budget(max_seconds=sketch_seconds),
            )
            sk_solved, sk_time = sk.solved, sk.elapsed
        else:
            sk_solved, sk_time = False, 0.0
        rows.append(
            StringRow(
                name=benchmark.name,
                n_examples=benchmark.n_examples(),
                tds_solved=outcome.success,
                tds_holdout=outcome.holdout_ok,
                tds_seconds=outcome.elapsed,
                flashfill_solved=ff_solved,
                flashfill_seconds=ff_time,
                sketch_solved=sk_solved,
                sketch_seconds=sk_time,
            )
        )
    return rows


def report(rows: List[StringRow]) -> str:
    table = format_table(
        ["sequence", "#ex", "TDS", "t(s)", "holdout", "FlashFill", "t(s)", "Sketch-like"],
        [
            [
                r.name,
                r.n_examples,
                "yes" if r.tds_solved else "NO",
                f"{r.tds_seconds:.2f}",
                "ok" if r.tds_holdout else "-",
                "yes" if r.flashfill_solved else "no",
                f"{r.flashfill_seconds:.3f}",
                "yes" if r.sketch_solved else "timeout",
            ]
            for r in rows
        ],
    )
    solved = sum(r.tds_solved for r in rows)
    ff = sum(r.flashfill_solved for r in rows)
    sk = sum(r.sketch_solved for r in rows)
    lines = [
        "E1 — string transformations (§6.1.1)",
        table,
        f"TDS solved {solved}/{len(rows)}; FlashFill {ff}/{len(rows)} "
        f"(in-scope tasks only, max "
        f"{max((r.flashfill_seconds for r in rows), default=0):.3f}s); "
        f"Sketch-like {sk}/{len(rows)}.",
    ]
    return "\n".join(lines)


def main() -> None:  # pragma: no cover - manual driver
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
