"""F7/F8 — §6.2 example-ordering sensitivity.

The paper reran TDS on randomly reordered copies of the manually-ordered
example sequences. Fig. 7 plots synthesis time (normalized so the
curated order is 1) against the reordering's distance from the curated
order (inversions, normalized so the full reversal is 1); Fig. 8 plots
the failure proportion per distance bucket. Both showed: robust to
small perturbations, increasingly slow/failing as the distance grows.

We reuse the manual Pex4Fun sequences (the paper's hardest cases) plus
the long string sequences.
"""

from __future__ import annotations

import functools
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.dsl import Example, Signature
from ..core.tds import TdsOptions, tds
from ..domains.registry import get_domain
from .common import ExperimentConfig, FAST, format_table
from .pexfun_exp import MANUAL_SEQUENCES
from ..pex.puzzles import PUZZLES


def normalized_inversions(order: Sequence[int]) -> float:
    """Number of out-of-order pairs, normalized so the reversal is 1.0
    (the paper's footnote-3 metric)."""
    n = len(order)
    if n < 2:
        return 0.0
    inversions = sum(
        1
        for i in range(n)
        for j in range(i + 1, n)
        if order[i] > order[j]
    )
    return inversions / (n * (n - 1) / 2)


@dataclass
class OrderingSample:
    sequence: str
    inversions: float
    solved: bool
    time_ratio: float  # synthesis time / curated-order time


@dataclass
class OrderingResult:
    samples: List[OrderingSample] = field(default_factory=list)

    def failure_buckets(
        self, edges: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8, 1.01)
    ) -> List[Tuple[str, int, int]]:
        """Fig. 8: (bucket, failures, total) per inversion range."""
        out: List[Tuple[str, int, int]] = []
        low = 0.0
        for high in edges:
            bucket = [
                s for s in self.samples if low <= s.inversions < high
            ]
            out.append(
                (
                    f"{low:.1f}-{min(high, 1.0):.1f}",
                    sum(1 for s in bucket if not s.solved),
                    len(bucket),
                )
            )
            low = high
        return out

    def geometric_mean_ratios(self) -> List[Tuple[float, float]]:
        """Fig. 7's line: geometric mean of time ratios per distance."""
        groups: Dict[float, List[float]] = {}
        for sample in self.samples:
            if sample.solved and sample.time_ratio > 0:
                key = round(sample.inversions, 1)
                groups.setdefault(key, []).append(sample.time_ratio)
        points = []
        for key in sorted(groups):
            ratios = groups[key]
            product = 1.0
            for r in ratios:
                product *= r
            points.append((key, product ** (1.0 / len(ratios))))
        return points


def _sequences() -> List[Tuple[str, Signature, List[Example]]]:
    by_name = {p.name: p for p in PUZZLES}
    out = []
    for name, examples in MANUAL_SEQUENCES.items():
        puzzle = by_name.get(name)
        if puzzle is not None and len(examples) >= 4:
            out.append((name, puzzle.signature, examples))
    return out


def _run_sequence(
    name: str,
    config: ExperimentConfig,
    reorderings_per_sequence: int,
    seed: int,
    options: Optional[TdsOptions],
) -> List[OrderingSample]:
    """Baseline + reorderings for one sequence (the parallel unit: the
    baseline each ratio normalizes against must run in the same task).

    The RNG is derived from ``(seed, name)`` so the sampled reorderings
    are the same whichever task order — or worker process — runs them.
    """
    entry = next((s for s in _sequences() if s[0] == name), None)
    if entry is None:
        return []
    _, signature, examples = entry
    rng = random.Random(f"{seed}:{name}")
    dsl = get_domain("pexfun").dsl()
    samples: List[OrderingSample] = []
    baseline = tds(
        signature,
        examples,
        dsl,
        budget_factory=config.budget_factory(),
        options=options,
    )
    if not baseline.success or baseline.elapsed <= 0:
        return []  # can't normalize against a failing curated order
    samples.append(OrderingSample(name, 0.0, True, 1.0))
    indexes = list(range(len(examples)))
    # §6.2 also reports the exact reversal ("51 of [60] were also
    # successfully synthesized with those test cases in reverse
    # order"), so sample it deterministically alongside the random
    # reorderings.
    orders = [list(reversed(indexes))]
    for _ in range(reorderings_per_sequence):
        shuffled_order = indexes[:]
        rng.shuffle(shuffled_order)
        orders.append(shuffled_order)
    for order in orders:
        shuffled = [examples[i] for i in order]
        outcome = tds(
            signature,
            shuffled,
            dsl,
            budget_factory=config.budget_factory(),
            options=options,
        )
        samples.append(
            OrderingSample(
                sequence=name,
                inversions=normalized_inversions(order),
                solved=outcome.success,
                time_ratio=(
                    outcome.elapsed / baseline.elapsed
                    if outcome.success
                    else 0.0
                ),
            )
        )
    return samples


def run(
    config: Optional[ExperimentConfig] = None,
    reorderings_per_sequence: int = 6,
    seed: int = 7,
    options: Optional[TdsOptions] = None,
) -> OrderingResult:
    config = config or FAST
    names = [name for name, _, _ in _sequences()]
    task = functools.partial(
        _run_sequence,
        config=config,
        reorderings_per_sequence=reorderings_per_sequence,
        seed=seed,
        options=options,
    )
    result = OrderingResult()
    if config.jobs > 1 and len(names) > 1:
        from ..exec import parallel_map

        with config.tracing():
            outcome = parallel_map(
                task, names, jobs=config.jobs, trace_base=config.trace_path
            )
        groups = outcome.results
    else:
        with config.tracing():
            groups = [task(name) for name in names]
    for group in groups:
        result.samples.extend(group)
    return result


def report(result: OrderingResult) -> str:
    fig7 = format_table(
        ["norm. inversions", "geo-mean time ratio"],
        [[f"{x:.1f}", f"{y:.2f}"] for x, y in result.geometric_mean_ratios()],
    )
    fig8 = format_table(
        ["bucket", "failed", "total"],
        [[b, f, t] for b, f, t in result.failure_buckets()],
    )
    return "\n".join(
        [
            "F7 — normalized time vs. reordering distance (§6.2)",
            fig7,
            "",
            "F8 — failure proportion per distance bucket (§6.2)",
            fig8,
        ]
    )


def main() -> None:  # pragma: no cover - manual driver
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
