"""Experiment drivers, one per table/figure of the paper's evaluation.

=====  =========================================  ====================
Id     Paper artifact                             Module
=====  =========================================  ====================
E1     §6.1.1 string transformations              strings_exp
E2     §6.1.2 table transformations               tables_exp
E3     §6.1.3 XML transformations                 xml_exp
E4     §6.1.4 Pex4Fun game                        pexfun_exp
F7/F8  §6.2 example-ordering sensitivity          ordering
F9     §6.3 ablation                              ablation
F10    §6.4 CDF of DBS run times                  cdf
A1     §5.1 DSL-size limit (extra)                dslsize
=====  =========================================  ====================
"""

from . import (
    ablation,
    cdf,
    dslsize,
    ordering,
    pexfun_exp,
    report_all,
    strings_exp,
    tables_exp,
    xml_exp,
)
from .common import FAST, FULL, ExperimentConfig

__all__ = [
    "ExperimentConfig",
    "FAST",
    "FULL",
    "ablation",
    "cdf",
    "dslsize",
    "ordering",
    "pexfun_exp",
    "report_all",
    "strings_exp",
    "tables_exp",
    "xml_exp",
]
