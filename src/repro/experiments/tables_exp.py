"""E2 — §6.1.2 table transformations.

Per-benchmark TDS outcome and timing plus the specialized
table-synthesizer baseline (which handles the classical layout tasks and
rejects the normalization scenarios the paper's extended grammar adds).
The paper skipped Sketch here ("[11] says Sketch was unable to
synthesize their benchmarks"), and so do we.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..baselines.tablesynth import synthesize_table_transform
from ..core.values import structurally_equal
from ..domains.registry import get_domain
from ..lasy.parser import parse_lasy
from ..lasy.runner import _coerce_example
from ..suites.tables_suite import TABLE_BENCHMARKS
from .common import ExperimentConfig, FAST, format_table, run_suite


@dataclass
class TableRow:
    name: str
    n_examples: int
    tds_solved: bool
    tds_holdout: bool
    tds_seconds: float
    specialized_solved: bool
    specialized_seconds: float


def run(config: Optional[ExperimentConfig] = None) -> List[TableRow]:
    config = config or FAST
    outcomes = run_suite(TABLE_BENCHMARKS, config)
    rows: List[TableRow] = []
    for outcome in outcomes:
        benchmark = outcome.benchmark
        program = parse_lasy(benchmark.source)
        domain = get_domain("tables")
        primary = program.declarations[0]
        examples = [
            _coerce_example(domain, primary.signature, stmt)
            for stmt in program.examples
        ]
        baseline = synthesize_table_transform(examples)
        baseline_ok = baseline.solved
        if baseline_ok and baseline.program is not None:
            for example in examples:
                try:
                    if not structurally_equal(
                        baseline.program(example.args[0]), example.output
                    ):
                        baseline_ok = False
                        break
                except Exception:
                    baseline_ok = False
                    break
        rows.append(
            TableRow(
                name=benchmark.name,
                n_examples=benchmark.n_examples(),
                tds_solved=outcome.success,
                tds_holdout=outcome.holdout_ok,
                tds_seconds=outcome.elapsed,
                specialized_solved=baseline_ok,
                specialized_seconds=baseline.elapsed,
            )
        )
    return rows


def report(rows: List[TableRow]) -> str:
    table = format_table(
        ["benchmark", "#ex", "TDS", "t(s)", "holdout", "specialized", "t(s)"],
        [
            [
                r.name,
                r.n_examples,
                "yes" if r.tds_solved else "NO",
                f"{r.tds_seconds:.2f}",
                "ok" if r.tds_holdout else "-",
                "yes" if r.specialized_solved else "no",
                f"{r.specialized_seconds:.3f}",
            ]
            for r in rows
        ],
    )
    solved = sum(r.tds_solved for r in rows)
    spec = sum(r.specialized_solved for r in rows)
    return "\n".join(
        [
            "E2 — table transformations (§6.1.2)",
            table,
            f"TDS solved {solved}/{len(rows)}; specialized baseline "
            f"{spec}/{len(rows)} (classical layout tasks only).",
        ]
    )


def main() -> None:  # pragma: no cover - manual driver
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
