"""E4 — §6.1.4 the Pex4Fun programming game.

The paper ran 172 (proprietary) puzzles: 72 solved, of which 60 needed
only Pex-generated test sequences and 12 needed manually written
sequences; the rest fell into three named failure categories. This
driver plays our 60-puzzle suite the same way: every puzzle first plays
the live game (≤ 7 oracle iterations); puzzles the game misses are
retried with a curated manual example sequence, mirroring the paper's
fallback.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..core.dsl import Example
from ..pex.game import GameResult, play, play_with_manual_examples
from ..pex.puzzles import PUZZLES, Puzzle
from .common import ExperimentConfig, FAST, format_table

# Manually ordered example sequences for puzzles where the oracle's
# counterexamples make a poor TDS sequence (§6.2: these are exactly the
# sequences whose ordering matters; the ordering experiment reuses them).
MANUAL_SEQUENCES: Dict[str, List[Example]] = {
    "factorial": [
        Example((0,), 1),
        Example((1,), 1),
        Example((2,), 2),
        Example((3,), 6),
        Example((4,), 24),
    ],
    "sum-to-n": [
        Example((0,), 0),
        Example((1,), 1),
        Example((2,), 3),
        Example((3,), 6),
        Example((4,), 10),
    ],
    "parity-name": [
        Example((2,), "even"),
        Example((4,), "even"),
        Example((3,), "odd"),
        Example((5,), "odd"),
        Example((0,), "even"),
        Example((7,), "odd"),
    ],
    "average-floor": [
        Example((2, 4), 3),
        Example((3, 5), 4),
        Example((1, 2), 1),
        Example((10, 0), 5),
    ],
    "sum-of-squares": [
        Example((0,), 0),
        Example((1,), 1),
        Example((2,), 5),
        Example((3,), 14),
    ],
    "grade-pass": [
        Example((80,), "pass"),
        Example((60,), "pass"),
        Example((59,), "fail"),
        Example((0,), "fail"),
        Example((100,), "pass"),
    ],
    "is-palindrome": [
        Example(("aba",), True),
        Example(("ab",), False),
        Example(("xyyx",), True),
        Example(("xyz",), False),
    ],
    "swap-ends": [
        Example(((1, 2),), (2, 1)),
        Example(((1, 2, 3),), (3, 2, 1)),
        Example(((4, 5, 6, 7),), (7, 5, 6, 4)),
    ],
    "delimiter-sum": [
        Example((",\n1,2",), 3),
        Example((",\n1,2,3",), 6),
        Example((";\n4;5",), 9),
    ],
    "sum-csv": [
        Example(("1,2",), 3),
        Example(("1,2,3",), 6),
        Example(("10,20",), 30),
    ],
    "second-line": [
        Example(("a\nb",), "b"),
        Example(("1\n2\n3",), "2"),
    ],
    "word-count": [
        Example(("a",), 1),
        Example(("a b",), 2),
        Example(("a b c",), 3),
    ],
    "last-char": [
        Example(("q",), "q"),
        Example(("abc",), "c"),
        Example(("xyzw",), "w"),
    ],
    "yes-if-long": [
        Example(("hello",), "yes"),
        Example(("hi",), "no"),
        Example(("abcd",), "yes"),
        Example(("abc",), "no"),
        Example(("",), "no"),
    ],
    "set-first-zero": [
        Example(((7,),), (0,)),
        Example(((1, 2),), (0, 2)),
        Example(((5, 6, 7),), (0, 6, 7)),
    ],
    "running-sum": [
        Example(((5,),), (5,)),
        Example(((5, 2),), (5, 7)),
        Example(((5, 2, 3),), (5, 7, 10)),
    ],
}


@dataclass
class PexRow:
    name: str
    category: str
    solved_by_pex: bool
    solved_manually: bool
    iterations: int
    seconds: float

    @property
    def solved(self) -> bool:
        return self.solved_by_pex or self.solved_manually


def _play_one(
    name: str, config: ExperimentConfig, try_manual: bool
) -> PexRow:
    """Play one suite puzzle (looked up by name: a :class:`Puzzle`
    carries its reference implementation — a lambda — so names, not
    puzzles, cross the worker-process boundary)."""
    puzzle = next(p for p in PUZZLES if p.name == name)
    return _play_puzzle(puzzle, config, try_manual)


def run(
    config: Optional[ExperimentConfig] = None,
    puzzles: Optional[Sequence[Puzzle]] = None,
    try_manual: bool = True,
) -> List[PexRow]:
    config = config or FAST
    puzzles = list(puzzles if puzzles is not None else PUZZLES)
    names = [p.name for p in puzzles]
    known = {p.name for p in PUZZLES}
    if config.jobs > 1 and len(puzzles) > 1 and all(n in known for n in names):
        from ..exec import parallel_map

        task = functools.partial(
            _play_one, config=config, try_manual=try_manual
        )
        with config.tracing():
            outcome = parallel_map(
                task, names, jobs=config.jobs, trace_base=config.trace_path
            )
        return outcome.results
    with config.tracing():
        return [
            _play_puzzle(puzzle, config, try_manual) for puzzle in puzzles
        ]


def _play_puzzle(
    puzzle: Puzzle, config: ExperimentConfig, try_manual: bool
) -> PexRow:
    """Play one puzzle: the live game first, then (optionally) the
    curated manual sequence if the game missed."""
    game: GameResult = play(puzzle, budget_factory=config.budget_factory())
    manual = False
    seconds = game.elapsed
    iterations = game.iterations
    if not game.solved and try_manual and puzzle.name in MANUAL_SEQUENCES:
        retry = play_with_manual_examples(
            puzzle,
            MANUAL_SEQUENCES[puzzle.name],
            budget_factory=config.budget_factory(hard=True),
        )
        manual = retry.solved
        seconds += retry.elapsed
    return PexRow(
        name=puzzle.name,
        category=puzzle.category,
        solved_by_pex=game.solved,
        solved_manually=manual,
        iterations=iterations,
        seconds=seconds,
    )


def report(rows: List[PexRow]) -> str:
    table = format_table(
        ["puzzle", "category", "solved", "how", "iters", "t(s)"],
        [
            [
                r.name,
                r.category,
                "yes" if r.solved else "NO",
                "pex" if r.solved_by_pex else ("manual" if r.solved_manually else "-"),
                r.iterations,
                f"{r.seconds:.1f}",
            ]
            for r in rows
        ],
    )
    total = len(rows)
    solved = sum(r.solved for r in rows)
    by_pex = sum(r.solved_by_pex for r in rows)
    manual = sum(r.solved_manually for r in rows)
    return "\n".join(
        [
            "E4 — Pex4Fun (§6.1.4)",
            table,
            f"solved {solved}/{total} ({by_pex} with Pex-generated tests, "
            f"{manual} needing manual sequences); paper: 72/172 "
            f"(60 Pex + 12 manual).",
        ]
    )


def main() -> None:  # pragma: no cover - manual driver
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
