"""Run every experiment and emit one consolidated report.

``python -m repro.experiments.report_all [--full]`` regenerates all the
paper's tables and figures in sequence and prints the combined report —
the source for EXPERIMENTS.md's "measured" column.
"""

from __future__ import annotations

import sys
import time
from typing import List

from . import (
    ablation,
    cdf,
    dslsize,
    ordering,
    pexfun_exp,
    strings_exp,
    tables_exp,
    xml_exp,
)
from .common import FAST, FULL, ExperimentConfig, time_buckets


def run_all(config: ExperimentConfig) -> str:
    sections: List[str] = []

    def add(title: str, body: str, started: float) -> None:
        sections.append(
            f"{'=' * 72}\n{title}  ({time.monotonic() - started:.0f}s)\n"
            f"{'=' * 72}\n{body}"
        )

    t = time.monotonic()
    rows = strings_exp.run(config, include_sketch=True, sketch_seconds=6)
    buckets = "; ".join(
        f"{name}: {count}"
        for name, count in time_buckets(
            [_as_outcome(r) for r in rows]
        )
    )
    add("E1 strings", strings_exp.report(rows) + f"\nbuckets: {buckets}", t)

    t = time.monotonic()
    add("E2 tables", tables_exp.report(tables_exp.run(config)), t)

    t = time.monotonic()
    add(
        "E3 xml",
        xml_exp.report(xml_exp.run(config, include_sketch=True, sketch_seconds=6)),
        t,
    )

    t = time.monotonic()
    add("E4 pexfun", pexfun_exp.report(pexfun_exp.run(config)), t)

    t = time.monotonic()
    add(
        "F7/F8 ordering",
        ordering.report(ordering.run(config, reorderings_per_sequence=4)),
        t,
    )

    t = time.monotonic()
    add("F9 ablation", ablation.report(ablation.run(config)), t)

    t = time.monotonic()
    add("F10 cdf", cdf.report(cdf.run(config)), t)

    t = time.monotonic()
    add("A1 dsl size", dslsize.report(dslsize.run(config)), t)

    return "\n\n".join(sections)


def _as_outcome(row):
    from ..suites.benchmark import Benchmark, BenchmarkOutcome

    return BenchmarkOutcome(
        benchmark=Benchmark(row.name, "", "strings"),
        success=row.tds_solved,
        holdout_ok=row.tds_holdout,
        elapsed=row.tds_seconds,
        dbs_times=[],
    )


def main() -> None:  # pragma: no cover - manual driver
    config = FULL if "--full" in sys.argv else FAST
    print(run_all(config))


if __name__ == "__main__":  # pragma: no cover
    main()
