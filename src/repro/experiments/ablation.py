"""F9 — §6.3 significance of the algorithm's parts.

"In order to evaluate the usefulness of the different parts of our
algorithm, we ran our benchmarks with parts of it disabled": the
contexts and the subexpressions from the previous program (TDS's two
information channels), individually and together, and the DSL guidance
inside DBS. The figure counts how many benchmarks each configuration
still synthesizes, per benchmark set.

The Pex4Fun configuration has no "no DSL" bar — its DSL already encodes
only the types, so that configuration is identical to "full" (we run a
reduced puzzle sample under the TDS ablations only).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence

from ..core.dbs import DbsOptions
from ..core.tds import TdsOptions
from ..pex.puzzles import PUZZLES
from ..suites import ALL_SUITES
from .common import ExperimentConfig, FAST, format_table, run_suite
from .pexfun_exp import MANUAL_SEQUENCES

CONFIGURATIONS: Dict[str, TdsOptions] = {
    "full": TdsOptions(),
    "no contexts": TdsOptions(use_contexts=False),
    "no subexprs": TdsOptions(use_subexpressions=False),
    "neither": TdsOptions(use_contexts=False, use_subexpressions=False),
    "no DSL": TdsOptions(dbs=DbsOptions(use_dsl=False)),
    # Our §7-inspired extension: angelic context pruning on top of the
    # full algorithm (the paper suggests it as future preprocessing).
    "angelic": TdsOptions(angelic_pruning=True),
}


@dataclass
class AblationResult:
    # counts[suite][configuration] = number synthesized
    counts: Dict[str, Dict[str, int]] = field(default_factory=dict)
    totals: Dict[str, int] = field(default_factory=dict)


def run(
    config: Optional[ExperimentConfig] = None,
    suites: Optional[Sequence[str]] = None,
    pexfun_sample: int = 10,
) -> AblationResult:
    config = config or FAST
    result = AblationResult()
    chosen = suites if suites is not None else list(ALL_SUITES) + ["pexfun"]
    for suite_name in chosen:
        result.counts[suite_name] = {}
        if suite_name == "pexfun":
            puzzles = [
                p for p in PUZZLES if p.expressible
            ][:pexfun_sample]
            result.totals[suite_name] = len(puzzles)
            for conf_name, options in CONFIGURATIONS.items():
                if conf_name == "no DSL":
                    continue  # identical to full for the type-only DSL
                from ..pex.game import play, play_with_manual_examples

                solved = 0
                for puzzle in puzzles:
                    game = play(
                        puzzle,
                        budget_factory=config.budget_factory(),
                        options=options,
                    )
                    if game.solved:
                        solved += 1
                    elif puzzle.name in MANUAL_SEQUENCES:
                        retry = play_with_manual_examples(
                            puzzle,
                            MANUAL_SEQUENCES[puzzle.name],
                            budget_factory=config.budget_factory(),
                            options=options,
                        )
                        solved += retry.solved
                result.counts[suite_name][conf_name] = solved
            continue
        benchmarks = ALL_SUITES[suite_name]
        result.totals[suite_name] = len(benchmarks)
        for conf_name, options in CONFIGURATIONS.items():
            outcomes = run_suite(benchmarks, config, options=options)
            result.counts[suite_name][conf_name] = sum(
                1 for o in outcomes if o.success
            )
    return result


def report(result: AblationResult) -> str:
    configurations = list(CONFIGURATIONS)
    rows = []
    for suite, counts in result.counts.items():
        rows.append(
            [suite]
            + [
                f"{counts[c]}/{result.totals[suite]}" if c in counts else "n/a"
                for c in configurations
            ]
        )
    return "\n".join(
        [
            "F9 — synthesized per benchmark set × configuration (§6.3)",
            format_table(["suite"] + configurations, rows),
        ]
    )


def main() -> None:  # pragma: no cover - manual driver
    print(report(run()))


if __name__ == "__main__":  # pragma: no cover
    main()
