"""Command-line interface: ``python -m repro``.

Subcommands:

* ``synthesize FILE.lasy`` (alias ``synth``) — parse and synthesize a
  LaSy program, print the synthesized functions (and optionally
  generated source);
* ``experiment NAME`` — run one of the paper's experiment drivers
  (e1 strings, e2 tables, e3 xml, e4 pexfun, f7f8 ordering, f9 ablation,
  f10 cdf, a1 dslsize) and print its table/series. ``--checkpoint
  JOURNAL.jsonl`` journals each completed benchmark durably;
  ``--resume`` restarts an interrupted run from the journal;
  ``--task-timeout S`` bounds each benchmark's wall clock (stuck
  workers are killed and retried — see docs/robustness.md);
* ``report-trace FILE.jsonl`` — render the per-phase attribution report
  for a trace captured with the global ``--trace`` option;
* ``serve`` — run the synthesis service: an asyncio JSON-lines server
  multiplexing requests over a warm session cache (``--journal`` makes
  the cache survive restarts; see docs/service.md);
* ``request FILE.lasy`` — send one synthesis request to a running
  server and print the result;
* ``domains`` — list the registered LaSy domains;
* ``puzzles`` — list the Pex4Fun puzzle suite.

The global ``--trace OUT.jsonl`` option streams span/metric events from
the whole run to a JSONL file (see docs/observability.md):

    python -m repro --trace out.jsonl synth task.lasy
    python -m repro report-trace out.jsonl
"""

from __future__ import annotations

import argparse
import contextlib
import sys
from typing import List, Optional

from .core.budget import Budget


def _budget_factory(args):
    return lambda: Budget(
        max_seconds=args.timeout, max_expressions=args.max_expressions
    )


class CliError(Exception):
    """A user-facing CLI failure (bad path, bad input)."""


def _profile_hz(args) -> Optional[float]:
    if not getattr(args, "profile", False):
        return None
    return getattr(args, "profile_hz", 100.0)


def _maybe_tracing(args):
    """Context manager wiring up the observability the flags ask for:
    a JsonlTracer (--trace), the sampling profiler (--profile, emitted
    into the trace on exit), and progress heartbeats (--live renders
    them as a TTY status line; with --trace they are recorded even
    without --live)."""
    trace_path = getattr(args, "trace", None)
    profile_hz = _profile_hz(args)
    live = getattr(args, "live", False)
    if not trace_path and not profile_hz and not live:
        return contextlib.nullcontext()
    if profile_hz and not trace_path:
        raise CliError("--profile needs --trace OUT.jsonl to emit into")
    from .obs import (
        JsonlTracer,
        ProgressEmitter,
        SamplingProfiler,
        TtyStatusLine,
        set_progress,
        tracing,
    )

    tracer = None
    if trace_path:
        try:
            tracer = JsonlTracer(trace_path)
        except OSError as exc:
            raise CliError(f"cannot open trace file {trace_path!r}: {exc}")

    @contextlib.contextmanager
    def observed():
        with contextlib.ExitStack() as stack:
            if tracer is not None:
                stack.enter_context(tracing(tracer))
            status = TtyStatusLine() if live else None
            emitter = ProgressEmitter(listener=status) if (
                live or tracer is not None
            ) else None
            profiler = (
                SamplingProfiler(hz=profile_hz).start() if profile_hz else None
            )
            set_progress(emitter)
            try:
                yield
            finally:
                set_progress(None)
                if status is not None:
                    status.clear()
                if profiler is not None:
                    # Emit while the tracer is still installed (the
                    # ExitStack has not unwound yet).
                    profiler.stop().emit()

    return observed()


def cmd_synthesize(args) -> int:
    from .lasy import parse_lasy, run_lasy, to_csharp, to_python

    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()
    program = parse_lasy(source)
    from .core.dbs import DbsOptions
    from .core.tds import TdsOptions

    options = TdsOptions(
        # One synthesis can't fan out over benchmarks; what it can do is
        # run loop strategies on a thread beside enumeration (§5.3's
        # "concurrently with the DBS algorithm").
        dbs=DbsOptions(
            concurrent_loops=args.jobs > 1,
            enum_mode=getattr(args, "enum", None),
            shard_jobs=getattr(args, "dbs_jobs", 0),
        ),
        reuse_pool=not args.no_pool_reuse,
        schedule=getattr(args, "schedule", None),
    )
    with _maybe_tracing(args):
        result = run_lasy(
            program, budget_factory=_budget_factory(args), options=options
        )
    status = "ok" if result.success else "FAILED"
    print(f"{status}  ({result.elapsed:.1f}s, language={program.language})")
    for name, fn in result.functions.items():
        print(f"\n== {name} ==")
        print(f"  {fn}")
        body = getattr(fn, "body", None)
        if body is not None and args.emit in ("python", "both"):
            print(to_python(fn.signature, body))
        if body is not None and args.emit in ("csharp", "both"):
            print(to_csharp(fn.signature, body))
    if args.trace:
        print(f"\ntrace written to {args.trace}; inspect with:")
        print(f"  python -m repro report-trace {args.trace}")
    return 0 if result.success else 1


def cmd_serve(args) -> int:
    import asyncio

    from .serve.server import ServerConfig, SynthesisServer

    from .core.tds import TdsOptions

    config = ServerConfig(
        host=args.host,
        port=args.port,
        max_workers=max(1, args.max_workers),
        queue_depth=max(1, args.queue_depth),
        cache_size=max(1, args.cache_size),
        journal_path=args.journal,
        default_timeout_s=(
            None if args.default_timeout <= 0 else args.default_timeout
        ),
        budget_factory=_budget_factory(args),
        options=TdsOptions(schedule=getattr(args, "schedule", None)),
    )

    async def serve() -> None:
        server = SynthesisServer(config)
        await server.start()
        host, port = server.address
        restored = server.cache.stats().get("restored", 0)
        # Parseable: the smoke tests and scripts scan for this line.
        print(f"serving on {host}:{port}", flush=True)
        if restored:
            print(f"restored {restored} warm sessions from journal",
                  flush=True)
        try:
            await server.serve_until_shutdown()
        except asyncio.CancelledError:
            await server.aclose()
            raise

    with _maybe_tracing(args):
        try:
            asyncio.run(serve())
        except KeyboardInterrupt:
            print("interrupted; cache journaled", file=sys.stderr)
    return 0


def cmd_request(args) -> int:
    import json as _json

    from .serve.client import request

    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()
    payload = {"id": args.file, "op": "synthesize", "program": source}
    if args.request_timeout is not None:
        payload["timeout_s"] = (
            None if args.request_timeout <= 0 else args.request_timeout
        )
    if getattr(args, "schedule", None):
        payload["schedule"] = args.schedule
    try:
        response = request(
            payload, host=args.host, port=args.port, timeout=args.wait
        )
    except (ConnectionError, OSError) as exc:
        raise CliError(f"cannot reach server at {args.host}:{args.port}: "
                       f"{exc}")
    if args.json:
        print(_json.dumps(response, indent=2, sort_keys=True))
    else:
        if not response.get("ok"):
            error = response.get("error") or {}
            print(f"error [{error.get('code')}]: {error.get('message')}",
                  file=sys.stderr)
        else:
            status = "ok" if response.get("success") else "FAILED"
            print(f"{status}  ({response.get('elapsed', 0.0):.3f}s)")
            for name, info in (response.get("functions") or {}).items():
                hit = (response.get("cache") or {}).get(name, {})
                tag = ""
                if hit:
                    tag = (
                        f"  [cache hit, {hit.get('reused_examples', 0)} "
                        "examples reused]"
                        if hit.get("hit")
                        else "  [cold]"
                    )
                body = info.get("program")
                if body is None and info.get("lookup"):
                    body = "lookup"
                print(f"  {name}: {body}{tag}")
    if not response.get("ok"):
        return 2
    if args.expect_cache_hit:
        cache = response.get("cache") or {}
        if not cache or not all(v.get("hit") for v in cache.values()):
            print("expected a cache hit but the run was cold",
                  file=sys.stderr)
            return 1
    return 0 if response.get("success") else 1


_EXPERIMENTS = {
    "e1": ("strings_exp", "E1 §6.1.1 string transformations"),
    "e2": ("tables_exp", "E2 §6.1.2 table transformations"),
    "e3": ("xml_exp", "E3 §6.1.3 XML transformations"),
    "e4": ("pexfun_exp", "E4 §6.1.4 Pex4Fun"),
    "f7f8": ("ordering", "F7/F8 §6.2 example ordering"),
    "f9": ("ablation", "F9 §6.3 ablation"),
    "f10": ("cdf", "F10 §6.4 DBS time CDF"),
    "a1": ("dslsize", "A1 §5.1 DSL size limit"),
}


def cmd_experiment(args) -> int:
    import importlib

    from .experiments.common import ExperimentConfig

    if args.name not in _EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; choose from "
              f"{', '.join(sorted(_EXPERIMENTS))}", file=sys.stderr)
        return 2
    module_name, _ = _EXPERIMENTS[args.name]
    module = importlib.import_module(f".experiments.{module_name}", "repro")
    if args.trace:
        # Fail before hours of benchmarks, not after: the tracer itself
        # only opens the file once the first suite starts.
        try:
            open(args.trace, "w", encoding="utf-8").close()
        except OSError as exc:
            raise CliError(f"cannot open trace file {args.trace!r}: {exc}")
    if args.resume and not args.checkpoint:
        raise CliError("--resume requires --checkpoint JOURNAL.jsonl")
    if args.profile and not args.trace:
        raise CliError("--profile needs --trace OUT.jsonl to emit into")
    config = ExperimentConfig(
        budget_seconds=args.timeout,
        budget_expressions=args.max_expressions,
        trace_path=args.trace,
        jobs=max(1, args.jobs),
        checkpoint_path=args.checkpoint,
        resume=args.resume,
        task_timeout_s=args.task_timeout,
        limit=args.limit,
        profile_hz=_profile_hz(args),
        live=args.live,
    )
    result = module.run(config)
    print(module.report(result))
    return 0


def cmd_report_trace(args) -> int:
    import json as _json

    from .obs import (
        TraceParseError,
        build_hotspots,
        build_report,
        diff_reports,
        flame_lines,
        hotspots_to_json,
        load_events,
        render_diff,
        render_hotspots,
        render_json,
        render_text,
        to_json,
    )

    if args.diff and len(args.files) != 2:
        print("--diff needs exactly two trace files: OLD.jsonl NEW.jsonl",
              file=sys.stderr)
        return 2
    if not args.diff and len(args.files) != 1:
        print("report-trace takes one trace file (two with --diff)",
              file=sys.stderr)
        return 2

    loaded = []
    for path in args.files:
        try:
            events = load_events(path)
        except FileNotFoundError:
            print(f"no such trace file: {path}", file=sys.stderr)
            return 2
        except OSError as exc:
            print(f"cannot read trace file {path!r}: {exc}", file=sys.stderr)
            return 2
        except TraceParseError as exc:
            print(f"bad trace file {path}: {exc}", file=sys.stderr)
            return 2
        if not events:
            print(f"empty trace file (no complete records): {path}",
                  file=sys.stderr)
            return 2
        loaded.append(events)

    if args.diff:
        diff = diff_reports(build_report(loaded[0]), build_report(loaded[1]))
        if args.json:
            print(_json.dumps(diff, indent=2, sort_keys=True))
        else:
            print(render_diff(diff, top=args.top))
        return 0

    events = loaded[0]
    if args.flame:
        lines = flame_lines(events)
        if not lines:
            print("trace has no samples or timed spans to collapse",
                  file=sys.stderr)
            return 2
        print("\n".join(lines))
        return 0

    report = build_report(events)
    if args.hotspots:
        hotspots = build_hotspots(report, top=args.top, sort=args.sort)
        if args.json:
            print(_json.dumps(hotspots_to_json(hotspots), indent=2,
                              sort_keys=True))
        else:
            print(render_hotspots(hotspots))
        return 0
    if args.json:
        print(render_json(report))
    else:
        print(render_text(report, top_productions=args.top))
    return 0


def cmd_domains(args) -> int:
    from .domains import known_domains

    for name, domain in sorted(known_domains().items()):
        dsl = domain.dsl()
        print(f"{name:10s} {dsl.num_rules:3d} rules  {domain.description}")
    return 0


def cmd_puzzles(args) -> int:
    from .pex import PUZZLES

    for puzzle in PUZZLES:
        flag = "" if puzzle.expressible else "  (out of DSL scope)"
        print(f"{puzzle.name:22s} [{puzzle.category}] "
              f"{puzzle.signature}{flag}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Test-Driven Synthesis (PLDI 2014) reproduction",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-DBS wall-clock budget in seconds (default 30)",
    )
    parser.add_argument(
        "--max-expressions",
        type=int,
        default=300_000,
        help="per-DBS expression budget (default 300000)",
    )
    parser.add_argument(
        "--trace",
        metavar="OUT.jsonl",
        default=None,
        help="stream span/metric events to a JSONL trace file "
        "(read back with the report-trace subcommand)",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="sample wall-clock stacks (default 100 Hz; see "
        "--profile-hz) and emit them into the --trace file; inspect "
        "with report-trace --hotspots / --flame",
    )
    parser.add_argument(
        "--profile-hz",
        type=float,
        default=100.0,
        metavar="HZ",
        help="sampling rate for --profile (default 100)",
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help="render synthesis progress heartbeats as a live status "
        "line on stderr",
    )
    parser.add_argument(
        "--enum",
        choices=("batched", "classic"),
        default=None,
        help="enumeration path: batched value-vector candidates "
        "(default) or the classic per-expression pipeline "
        "(equivalent to REPRO_ENUM; mainly for A/B timing)",
    )
    parser.add_argument(
        "--schedule",
        choices=("fifo", "adaptive", "representative"),
        default=None,
        help="example scheduler: fifo (caller order, the default), "
        "adaptive (cheap-first ordering, timeout deferral, escalating "
        "per-iteration deadlines) or representative (admit only "
        "failing examples, verify the skipped ones) "
        "(equivalent to REPRO_TDS_SCHEDULE; see docs/scheduling.md)",
    )
    parser.add_argument(
        "--no-pool-reuse",
        action="store_true",
        help="rebuild the component pool from scratch on every TDS "
        "iteration instead of extending the previous iteration's pool "
        "(the pre-engine behavior; mainly for A/B timing)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes for experiment suites (traces and "
        "metrics are merged back); for synthesize, N>1 runs loop "
        "strategies concurrently with enumeration (default 1)",
    )
    parser.add_argument(
        "--dbs-jobs",
        type=int,
        default=0,
        metavar="N",
        help="shard each DBS generation's enumeration across N worker "
        "processes (deterministic: identical pool and programs as a "
        "serial run; equivalent to REPRO_DBS_JOBS; default serial)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser(
        "synthesize", aliases=["synth"], help="synthesize a .lasy file"
    )
    p.add_argument("file")
    p.add_argument(
        "--emit",
        choices=("none", "python", "csharp", "both"),
        default="python",
        help="emit generated source for synthesized functions",
    )
    p.set_defaults(fn=cmd_synthesize)

    p = sub.add_parser("experiment", help="run a paper experiment")
    p.add_argument("name", help=", ".join(sorted(_EXPERIMENTS)))
    p.add_argument(
        "--checkpoint",
        metavar="JOURNAL.jsonl",
        default=None,
        help="journal each completed benchmark to this JSONL file "
        "(durable: fsync per record); combine with --resume to pick "
        "an interrupted run back up",
    )
    p.add_argument(
        "--resume",
        action="store_true",
        help="skip benchmarks already recorded in the --checkpoint "
        "journal, restoring their results and metrics",
    )
    p.add_argument(
        "--task-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-benchmark wall limit; with --jobs > 1 a stuck worker "
        "is killed and the benchmark retried on a fresh one",
    )
    p.add_argument(
        "--limit",
        type=int,
        default=None,
        metavar="N",
        help="run only the first N benchmarks of each suite (smoke "
        "runs and CI; not for reported results)",
    )
    p.set_defaults(fn=cmd_experiment)

    p = sub.add_parser(
        "report-trace",
        help="render per-phase / hotspot reports from a trace file",
    )
    p.add_argument(
        "files",
        nargs="+",
        metavar="FILE.jsonl",
        help="trace file (two files with --diff: OLD NEW)",
    )
    p.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p.add_argument(
        "--top",
        type=int,
        default=12,
        help="rows per table (default 12)",
    )
    p.add_argument(
        "--hotspots",
        action="store_true",
        help="top-N productions/strategies/examples/functions by cost",
    )
    p.add_argument(
        "--sort",
        choices=("time", "budget"),
        default="time",
        help="hotspot ordering: self-time or expression budget "
        "(default time)",
    )
    p.add_argument(
        "--flame",
        action="store_true",
        help="emit collapsed-stack flamegraph lines "
        "(flamegraph.pl / speedscope)",
    )
    p.add_argument(
        "--diff",
        action="store_true",
        help="diff two traces: per-phase/per-hotspot deltas (new - old)",
    )
    p.set_defaults(fn=cmd_report_trace)

    p = sub.add_parser(
        "serve",
        help="run the synthesis service (JSON-lines over TCP)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port",
        type=int,
        default=7337,
        help="TCP port (0 = let the OS pick; the bound port is printed)",
    )
    p.add_argument(
        "--max-workers",
        type=int,
        default=2,
        metavar="N",
        help="synthesis worker threads (default 2; use 1 to capture "
        "synthesis spans with --trace)",
    )
    p.add_argument(
        "--queue-depth",
        type=int,
        default=8,
        metavar="N",
        help="admission control: max synthesize requests in flight "
        "before new ones are rejected as overloaded (default 8)",
    )
    p.add_argument(
        "--cache-size",
        type=int,
        default=8,
        metavar="N",
        help="warm sessions kept in the LRU cache (default 8)",
    )
    p.add_argument(
        "--journal",
        metavar="JOURNAL.jsonl",
        default=None,
        help="persist the session cache to this journal (durable: "
        "fsync per record); a restarted server restores it and comes "
        "back warm",
    )
    p.add_argument(
        "--default-timeout",
        type=float,
        default=20.0,
        metavar="SECONDS",
        help="hard wall per request when the request names none "
        "(default 20; <= 0 = unbounded)",
    )
    p.set_defaults(fn=cmd_serve)

    p = sub.add_parser(
        "request",
        help="send one .lasy file to a running synthesis server",
    )
    p.add_argument("file")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=7337)
    p.add_argument(
        "--request-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="hard wall for this request (overrides the server "
        "default; <= 0 = unbounded)",
    )
    p.add_argument(
        "--wait",
        type=float,
        default=120.0,
        metavar="SECONDS",
        help="client-side round-trip timeout (default 120)",
    )
    p.add_argument(
        "--json", action="store_true", help="print the raw response"
    )
    p.add_argument(
        "--expect-cache-hit",
        action="store_true",
        help="exit 1 unless every function warm-hit the session cache "
        "(CI smoke checks)",
    )
    p.set_defaults(fn=cmd_request)

    p = sub.add_parser("domains", help="list registered domains")
    p.set_defaults(fn=cmd_domains)

    p = sub.add_parser("puzzles", help="list the Pex4Fun puzzles")
    p.set_defaults(fn=cmd_puzzles)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if getattr(args, "enum", None):
        # Set both the in-process switch and the environment so --jobs
        # worker processes inherit the same enumeration path.
        import os

        from .core.engine.enumerator import set_enum_mode

        os.environ["REPRO_ENUM"] = args.enum
        set_enum_mode(args.enum)
    if getattr(args, "schedule", None):
        # Experiment workers and nested tds() calls resolve the
        # scheduler through the environment, same as REPRO_ENUM.
        import os

        os.environ["REPRO_TDS_SCHEDULE"] = args.schedule
    try:
        return args.fn(args)
    except CliError as exc:
        print(str(exc), file=sys.stderr)
        return 2
    except BrokenPipeError:
        # report-trace output is meant to be piped (`... | head`); when
        # the reader closes early, exit quietly like other Unix filters
        # instead of tracebacking. Re-point stdout at devnull so the
        # interpreter's exit-time flush doesn't raise again.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
