"""Command-line interface: ``python -m repro``.

Subcommands:

* ``synthesize FILE.lasy`` — parse and synthesize a LaSy program, print
  the synthesized functions (and optionally generated source);
* ``experiment NAME`` — run one of the paper's experiment drivers
  (e1 strings, e2 tables, e3 xml, e4 pexfun, f7f8 ordering, f9 ablation,
  f10 cdf, a1 dslsize) and print its table/series;
* ``domains`` — list the registered LaSy domains;
* ``puzzles`` — list the Pex4Fun puzzle suite.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .core.budget import Budget


def _budget_factory(args):
    return lambda: Budget(
        max_seconds=args.timeout, max_expressions=args.max_expressions
    )


def cmd_synthesize(args) -> int:
    from .lasy import parse_lasy, run_lasy, to_csharp, to_python

    with open(args.file, encoding="utf-8") as handle:
        source = handle.read()
    program = parse_lasy(source)
    result = run_lasy(program, budget_factory=_budget_factory(args))
    status = "ok" if result.success else "FAILED"
    print(f"{status}  ({result.elapsed:.1f}s, language={program.language})")
    for name, fn in result.functions.items():
        print(f"\n== {name} ==")
        print(f"  {fn}")
        body = getattr(fn, "body", None)
        if body is not None and args.emit in ("python", "both"):
            print(to_python(fn.signature, body))
        if body is not None and args.emit in ("csharp", "both"):
            print(to_csharp(fn.signature, body))
    return 0 if result.success else 1


_EXPERIMENTS = {
    "e1": ("strings_exp", "E1 §6.1.1 string transformations"),
    "e2": ("tables_exp", "E2 §6.1.2 table transformations"),
    "e3": ("xml_exp", "E3 §6.1.3 XML transformations"),
    "e4": ("pexfun_exp", "E4 §6.1.4 Pex4Fun"),
    "f7f8": ("ordering", "F7/F8 §6.2 example ordering"),
    "f9": ("ablation", "F9 §6.3 ablation"),
    "f10": ("cdf", "F10 §6.4 DBS time CDF"),
    "a1": ("dslsize", "A1 §5.1 DSL size limit"),
}


def cmd_experiment(args) -> int:
    import importlib

    from .experiments.common import ExperimentConfig

    if args.name not in _EXPERIMENTS:
        print(f"unknown experiment {args.name!r}; choose from "
              f"{', '.join(sorted(_EXPERIMENTS))}", file=sys.stderr)
        return 2
    module_name, _ = _EXPERIMENTS[args.name]
    module = importlib.import_module(f".experiments.{module_name}", "repro")
    config = ExperimentConfig(
        budget_seconds=args.timeout,
        budget_expressions=args.max_expressions,
    )
    result = module.run(config)
    print(module.report(result))
    return 0


def cmd_domains(args) -> int:
    from .domains import known_domains

    for name, domain in sorted(known_domains().items()):
        dsl = domain.dsl()
        print(f"{name:10s} {dsl.num_rules:3d} rules  {domain.description}")
    return 0


def cmd_puzzles(args) -> int:
    from .pex import PUZZLES

    for puzzle in PUZZLES:
        flag = "" if puzzle.expressible else "  (out of DSL scope)"
        print(f"{puzzle.name:22s} [{puzzle.category}] "
              f"{puzzle.signature}{flag}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Test-Driven Synthesis (PLDI 2014) reproduction",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=30.0,
        help="per-DBS wall-clock budget in seconds (default 30)",
    )
    parser.add_argument(
        "--max-expressions",
        type=int,
        default=300_000,
        help="per-DBS expression budget (default 300000)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("synthesize", help="synthesize a .lasy file")
    p.add_argument("file")
    p.add_argument(
        "--emit",
        choices=("none", "python", "csharp", "both"),
        default="python",
        help="emit generated source for synthesized functions",
    )
    p.set_defaults(fn=cmd_synthesize)

    p = sub.add_parser("experiment", help="run a paper experiment")
    p.add_argument("name", help=", ".join(sorted(_EXPERIMENTS)))
    p.set_defaults(fn=cmd_experiment)

    p = sub.add_parser("domains", help="list registered domains")
    p.set_defaults(fn=cmd_domains)

    p = sub.add_parser("puzzles", help="list the Pex4Fun puzzles")
    p.set_defaults(fn=cmd_puzzles)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
