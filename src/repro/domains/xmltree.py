"""An immutable XML tree for the XML-transformation domain (§6.1.3).

The paper's XML benchmarks use .NET's ``XDocument``/``XElement``. We
build our own small tree — the synthesizer needs hashable, structurally
comparable values (``.Equals()`` semantics for ``require``), which the
standard library's ``xml.etree`` elements are not.

The parser covers the fragment the benchmarks exercise: elements,
attributes (single- or double-quoted), text, self-closing tags,
comments, and an optional XML declaration. Insignificant whitespace
between elements is dropped (matching how the paper's examples are
written across multiple lines); text content inside a mixed element is
preserved verbatim.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field
from typing import Iterator, List, Tuple, Union

Child = Union["XmlNode", str]


class XmlParseError(ValueError):
    """Malformed XML input."""


@dataclass(frozen=True, eq=False)
class XmlNode:
    """An XML element: tag, sorted attribute pairs, children.

    Children are elements or text strings. Nodes are hashable and
    compare structurally; attribute order is canonicalized so two
    documents differing only in attribute order are equal.
    """

    tag: str
    attrs: Tuple[Tuple[str, str], ...] = ()
    children: Tuple[Child, ...] = ()
    _hash: int = field(init=False, repr=False)

    def __post_init__(self) -> None:
        object.__setattr__(self, "attrs", tuple(sorted(self.attrs)))
        # Canonical children: adjacent text runs coalesce and empty text
        # disappears, so structurally identical documents compare equal
        # regardless of how their text was chunked.
        canonical: list = []
        for child in self.children:
            if isinstance(child, str):
                if not child:
                    continue
                if canonical and isinstance(canonical[-1], str):
                    canonical[-1] += child
                    continue
            canonical.append(child)
        object.__setattr__(self, "children", tuple(canonical))
        object.__setattr__(
            self, "_hash", hash((self.tag, self.attrs, self.children))
        )

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if self is other:
            return True
        if not isinstance(other, XmlNode):
            return NotImplemented
        return (
            self._hash == other._hash
            and self.tag == other.tag
            and self.attrs == other.attrs
            and self.children == other.children
        )

    # -- queries -------------------------------------------------------

    def attr(self, name: str) -> str:
        for key, value in self.attrs:
            if key == name:
                return value
        raise KeyError(name)

    def has_attr(self, name: str) -> bool:
        return any(key == name for key, _ in self.attrs)

    def elements(self) -> Tuple["XmlNode", ...]:
        """Child elements (text children skipped)."""
        return tuple(c for c in self.children if isinstance(c, XmlNode))

    def text(self) -> str:
        """Concatenated text content of the whole subtree."""
        out: List[str] = []
        for child in self.children:
            if isinstance(child, str):
                out.append(child)
            else:
                out.append(child.text())
        return "".join(out)

    def descendants(self) -> Iterator["XmlNode"]:
        """All descendant elements, preorder, excluding self."""
        for child in self.elements():
            yield child
            yield from child.descendants()

    def find_all(self, tag: str) -> Tuple["XmlNode", ...]:
        return tuple(n for n in self.descendants() if n.tag == tag)

    # -- functional updates ---------------------------------------------

    def with_attr(self, name: str, value: str) -> "XmlNode":
        kept = tuple((k, v) for k, v in self.attrs if k != name)
        return XmlNode(self.tag, kept + ((name, value),), self.children)

    def without_attr(self, name: str) -> "XmlNode":
        kept = tuple((k, v) for k, v in self.attrs if k != name)
        return XmlNode(self.tag, kept, self.children)

    def with_children(self, children: Tuple[Child, ...]) -> "XmlNode":
        return XmlNode(self.tag, self.attrs, tuple(children))

    def with_tag(self, tag: str) -> "XmlNode":
        return XmlNode(tag, self.attrs, self.children)

    def append(self, child: Child) -> "XmlNode":
        return XmlNode(self.tag, self.attrs, self.children + (child,))

    # -- rendering -------------------------------------------------------

    def __str__(self) -> str:
        return serialize(self)

    def __repr__(self) -> str:
        return f"XmlNode({serialize(self)!r})"


def _escape_text(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attr(text: str) -> str:
    return _escape_text(text).replace('"', "&quot;")


def _unescape(text: str) -> str:
    return (
        text.replace("&lt;", "<")
        .replace("&gt;", ">")
        .replace("&quot;", '"')
        .replace("&apos;", "'")
        .replace("&amp;", "&")
    )


def serialize(node: XmlNode) -> str:
    """Compact serialization: no added whitespace, self-closing empties,
    attributes in canonical (sorted) order."""
    attrs = "".join(f' {k}="{_escape_attr(v)}"' for k, v in node.attrs)
    if not node.children:
        return f"<{node.tag}{attrs}/>"
    inner = "".join(
        _escape_text(c) if isinstance(c, str) else serialize(c)
        for c in node.children
    )
    return f"<{node.tag}{attrs}>{inner}</{node.tag}>"


_TAG_OPEN = re.compile(
    r"<([A-Za-z_][\w.\-]*)((?:\s+[\w.\-:]+\s*=\s*(?:\"[^\"]*\"|'[^']*'))*)\s*(/?)>"
)
_ATTR = re.compile(r"([\w.\-:]+)\s*=\s*(\"[^\"]*\"|'[^']*')")


def parse_xml(source: str) -> XmlNode:
    """Parse an XML document (or fragment with one root element).

    >>> node = parse_xml('<doc><p class="a">hi</p></doc>')
    >>> node.tag, node.elements()[0].attr('class'), node.text()
    ('doc', 'a', 'hi')
    """
    node, pos = _parse_element(source, _skip_prolog(source))
    rest = source[pos:].strip()
    if rest:
        raise XmlParseError(f"trailing content after root element: {rest[:40]!r}")
    return node


def _skip_prolog(source: str) -> int:
    pos = 0
    while True:
        while pos < len(source) and source[pos].isspace():
            pos += 1
        if source.startswith("<?", pos):
            end = source.find("?>", pos)
            if end < 0:
                raise XmlParseError("unterminated XML declaration")
            pos = end + 2
        elif source.startswith("<!--", pos):
            end = source.find("-->", pos)
            if end < 0:
                raise XmlParseError("unterminated comment")
            pos = end + 3
        else:
            return pos


def _parse_element(source: str, pos: int) -> Tuple[XmlNode, int]:
    match = _TAG_OPEN.match(source, pos)
    if match is None:
        raise XmlParseError(f"expected an element at {source[pos:pos + 40]!r}")
    tag = match.group(1)
    attrs = tuple(
        (name, _unescape(raw[1:-1]))
        for name, raw in _ATTR.findall(match.group(2) or "")
    )
    pos = match.end()
    if match.group(3) == "/":
        return XmlNode(tag, attrs), pos
    children: List[Child] = []
    text_buffer: List[str] = []

    def flush_text() -> None:
        if text_buffer:
            text = "".join(text_buffer)
            if text.strip():
                children.append(_unescape(text))
            text_buffer.clear()

    while True:
        if pos >= len(source):
            raise XmlParseError(f"unterminated element <{tag}>")
        if source.startswith("</", pos):
            end = source.find(">", pos)
            if end < 0:
                raise XmlParseError(f"unterminated close tag for <{tag}>")
            closing = source[pos + 2:end].strip()
            if closing != tag:
                raise XmlParseError(
                    f"mismatched close tag </{closing}> for <{tag}>"
                )
            flush_text()
            return XmlNode(tag, attrs, tuple(children)), end + 1
        if source.startswith("<!--", pos):
            end = source.find("-->", pos)
            if end < 0:
                raise XmlParseError("unterminated comment")
            pos = end + 3
            continue
        if source[pos] == "<":
            flush_text()
            child, pos = _parse_element(source, pos)
            children.append(child)
            continue
        next_tag = source.find("<", pos)
        if next_tag < 0:
            raise XmlParseError(f"unterminated element <{tag}>")
        text_buffer.append(source[pos:next_tag])
        pos = next_tag
