"""Domain substrates: the paper's four evaluation domains plus the
registry LaSy uses to resolve ``language <name>;`` declarations."""

from .registry import Domain, get_domain, known_domains, register_domain

__all__ = ["Domain", "get_domain", "known_domains", "register_domain"]
