"""The Pex4Fun domain (§6.1.4).

"We use a single DSL with a set of 40 simple string and int functions
which may be combined in any type-safe way" — unlike the other domains
this grammar is deliberately shallow: one nonterminal per type, every
function a rule, so the grammar adds no information beyond the types
(which is why the §6.3 ablation has no "no DSL" bar for Pex4Fun).

The DSL was written without looking at the puzzles, so — like the
paper's — it is missing pieces some puzzles need (bitwise operations,
large polynomial arithmetic), which is part of what the experiment
measures.
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..core.dsl import Dsl, DslBuilder, Example
from ..core.evaluator import EvaluationError
from ..core.types import ANY, BOOL, INT, STRING, Type, list_of
from .registry import Domain, register_domain

STRS = list_of(STRING)
INTS = list_of(INT)


def _int(value: Any) -> int:
    if not isinstance(value, int) or isinstance(value, bool):
        raise EvaluationError("expected an int")
    return value


def _str(value: Any) -> str:
    if not isinstance(value, str):
        raise EvaluationError("expected a string")
    return value


def _strs(value: Any) -> Tuple[str, ...]:
    if not isinstance(value, tuple) or not all(
        isinstance(v, str) for v in value
    ):
        raise EvaluationError("expected a string array")
    return value


def _ints(value: Any) -> Tuple[int, ...]:
    if not isinstance(value, tuple) or not all(
        isinstance(v, int) and not isinstance(v, bool) for v in value
    ):
        raise EvaluationError("expected an int array")
    return value


# -- int components ---------------------------------------------------------


def add(a, b):
    return _int(a) + _int(b)


def sub(a, b):
    return _int(a) - _int(b)


def mul(a, b):
    return _int(a) * _int(b)


def div(a, b):
    if _int(b) == 0:
        raise EvaluationError("division by zero")
    return int(_int(a) / _int(b))  # C# truncating division


def mod(a, b):
    if _int(b) == 0:
        raise EvaluationError("division by zero")
    a, b = _int(a), _int(b)
    return a - b * int(a / b)  # C# remainder semantics


def neg(a):
    return -_int(a)


def abs_int(a):
    return abs(_int(a))


def min_int(a, b):
    return min(_int(a), _int(b))


def max_int(a, b):
    return max(_int(a), _int(b))


def str_length(s):
    return len(_str(s))


def parse_int(s):
    s = _str(s).strip()
    try:
        return int(s)
    except ValueError as exc:
        raise EvaluationError(f"not an int: {s!r}") from exc


def index_of(s, sub_s):
    return _str(s).find(_str(sub_s))


def arr_length_i(xs):
    return len(_ints(xs))


def arr_length_s(xs):
    return len(_strs(xs))


def sum_ints(xs):
    return sum(_ints(xs))


def elem_at_i(xs, i):
    xs, i = _ints(xs), _int(i)
    if not -len(xs) <= i < len(xs):
        raise EvaluationError("index out of range")
    return xs[i]


# -- string components --------------------------------------------------------


def concat(a, b):
    return _str(a) + _str(b)


def substring(s, start, length):
    s, start, length = _str(s), _int(start), _int(length)
    if start < 0 or length < 0 or start + length > len(s):
        raise EvaluationError("substring out of range")  # C# semantics
    return s[start:start + length]


def substring_from(s, start):
    s, start = _str(s), _int(start)
    if start < 0 or start > len(s):
        raise EvaluationError("substring out of range")
    return s[start:]


def char_at(s, i):
    s, i = _str(s), _int(i)
    if not 0 <= i < len(s):
        raise EvaluationError("index out of range")
    return s[i]


def to_upper(s):
    return _str(s).upper()


def to_lower(s):
    return _str(s).lower()


def trim(s):
    return _str(s).strip()


def replace(s, old, new):
    if _str(old) == "":
        raise EvaluationError("empty search string")
    return _str(s).replace(old, _str(new))


def reverse_str(s):
    return _str(s)[::-1]


def repeat(s, k):
    k = _int(k)
    if k < 0 or k > 100:
        raise EvaluationError("repeat count out of range")
    return _str(s) * k


def int_to_str(a):
    return str(_int(a))


def join_strs(sep, xs):
    return _str(sep).join(_strs(xs))


def split_str(s, sep):
    if _str(sep) == "":
        raise EvaluationError("empty separator")
    return tuple(_str(s).split(sep))


def first_line(s):
    return _str(s).split("\n")[0]


def elem_at_s(xs, i):
    xs, i = _strs(xs), _int(i)
    if not -len(xs) <= i < len(xs):
        raise EvaluationError("index out of range")
    return xs[i]


def first_elem_s(xs):
    xs = _strs(xs)
    if not xs:
        raise EvaluationError("empty array")
    return xs[0]


def last_elem_s(xs):
    xs = _strs(xs)
    if not xs:
        raise EvaluationError("empty array")
    return xs[-1]


# -- array components ----------------------------------------------------------


def arr_set_i(xs, i, v):
    xs, i = _ints(xs), _int(i)
    if not 0 <= i < len(xs):
        raise EvaluationError("index out of range")
    return xs[:i] + (_int(v),) + xs[i + 1:]


def arr_set_s(xs, i, v):
    xs, i = _strs(xs), _int(i)
    if not 0 <= i < len(xs):
        raise EvaluationError("index out of range")
    return xs[:i] + (_str(v),) + xs[i + 1:]


def to_ints(xs):
    out: List[int] = []
    for piece in _strs(xs):
        piece = piece.strip()
        try:
            out.append(int(piece))
        except ValueError as exc:
            raise EvaluationError(f"not an int: {piece!r}") from exc
    return tuple(out)


def skip_strs(xs, k):
    xs, k = _strs(xs), _int(k)
    if k < 0 or k > len(xs):
        raise EvaluationError("skip out of range")
    return xs[k:]


def sort_ints(xs):
    return tuple(sorted(_ints(xs)))


# -- bool components -------------------------------------------------------------


def lt(a, b):
    return _int(a) < _int(b)


def le(a, b):
    return _int(a) <= _int(b)


def eq_i(a, b):
    return _int(a) == _int(b)


def eq_s(a, b):
    return _str(a) == _str(b)


def contains(s, sub_s):
    return _str(sub_s) in _str(s)


def starts_with(s, prefix):
    return _str(s).startswith(_str(prefix))


def ends_with(s, suffix):
    return _str(s).endswith(_str(suffix))


def is_empty(s):
    return _str(s) == ""


def not_b(a):
    if not isinstance(a, bool):
        raise EvaluationError("expected a bool")
    return not a


# -- constants ---------------------------------------------------------------------


def pexfun_constants(examples: Sequence[Example]) -> Dict[str, List[Any]]:
    ints = [0, 1, 2, -1, 10]
    strings: List[str] = ["", " ", ",", "\n", "-"]
    outputs: List[str] = []
    for example in examples:
        for value in list(example.args) + [example.output]:
            if isinstance(value, int) and not isinstance(value, bool):
                if -100 <= value <= 100 and value not in ints:
                    ints.append(value)
            elif isinstance(value, str):
                if len(value) <= 12 and value not in strings:
                    strings.append(value)
                if value is example.output:
                    outputs.append(value)
    # Common output affixes are likely constant pieces ("Hello, ").
    if outputs:
        prefix = outputs[0]
        suffix = outputs[0]
        for text in outputs[1:]:
            while prefix and not text.startswith(prefix):
                prefix = prefix[:-1]
            while suffix and not text.endswith(suffix):
                suffix = suffix[:-1]
        for affix in (prefix, suffix):
            if 0 < len(affix) <= 12 and affix not in strings:
                strings.append(affix)
    return {"int": ints[:12], "str": strings[:14]}


# -- the DSL --------------------------------------------------------------------------


def make_pexfun_dsl() -> Dsl:
    """The type-directed Pex4Fun DSL (~40 string/int components)."""
    b = DslBuilder("pexfun", start="P")
    b.nt("P", ANY)
    b.nt("int", INT)
    b.nt("str", STRING)
    b.nt("bool", BOOL)
    b.nt("strs", STRS)
    b.nt("ints", INTS)

    for nt in ("int", "str", "bool", "strs", "ints"):
        b.unit("P", nt)
        b.param(nt)

    b.constant("int")
    b.constant("str")

    # Conditionals and loop strategies on the value-producing types.
    for nt in ("int", "str", "strs", "ints"):
        b.conditional(nt, guard_nt="bool", branch_nt=nt)
    b.for_loop("int", body_nt="int")
    b.for_loop("str", body_nt="str")
    b.foreach("ints", body_nt="int")
    b.foreach("strs", body_nt="str")

    # int
    b.fn("int", "Add", ["int", "int"], add)
    b.fn("int", "Sub", ["int", "int"], sub)
    b.fn("int", "Mul", ["int", "int"], mul)
    b.fn("int", "Div", ["int", "int"], div)
    b.fn("int", "Mod", ["int", "int"], mod)
    b.fn("int", "Neg", ["int"], neg)
    b.fn("int", "Abs", ["int"], abs_int)
    b.fn("int", "Min", ["int", "int"], min_int)
    b.fn("int", "Max", ["int", "int"], max_int)
    b.fn("int", "Length", ["str"], str_length)
    b.fn("int", "ParseInt", ["str"], parse_int)
    b.fn("int", "IndexOf", ["str", "str"], index_of)
    b.fn("int", "ArrLengthI", ["ints"], arr_length_i)
    b.fn("int", "ArrLengthS", ["strs"], arr_length_s)
    b.fn("int", "Sum", ["ints"], sum_ints)
    b.fn("int", "ElemAtI", ["ints", "int"], elem_at_i)

    # str
    b.fn("str", "Concat", ["str", "str"], concat)
    b.fn("str", "Substring", ["str", "int", "int"], substring)
    b.fn("str", "SubstringFrom", ["str", "int"], substring_from)
    b.fn("str", "CharAt", ["str", "int"], char_at)
    b.fn("str", "ToUpper", ["str"], to_upper)
    b.fn("str", "ToLower", ["str"], to_lower)
    b.fn("str", "Trim", ["str"], trim)
    b.fn("str", "Replace", ["str", "str", "str"], replace)
    b.fn("str", "Reverse", ["str"], reverse_str)
    b.fn("str", "Repeat", ["str", "int"], repeat)
    b.fn("str", "IntToStr", ["int"], int_to_str)
    b.fn("str", "Join", ["str", "strs"], join_strs)
    b.fn("str", "FirstLine", ["str"], first_line)
    b.fn("str", "ElemAtS", ["strs", "int"], elem_at_s)
    b.fn("str", "FirstElem", ["strs"], first_elem_s)
    b.fn("str", "LastElem", ["strs"], last_elem_s)

    # arrays
    b.fn("strs", "Split", ["str", "str"], split_str)
    b.fn("strs", "ArrSetS", ["strs", "int", "str"], arr_set_s)
    b.fn("strs", "SkipStrs", ["strs", "int"], skip_strs)
    b.fn("ints", "ArrSetI", ["ints", "int", "int"], arr_set_i)
    b.fn("ints", "ToInts", ["strs"], to_ints)
    b.fn("ints", "SortInts", ["ints"], sort_ints)

    # bool
    b.fn("bool", "Lt", ["int", "int"], lt)
    b.fn("bool", "Le", ["int", "int"], le)
    b.fn("bool", "EqI", ["int", "int"], eq_i)
    b.fn("bool", "EqS", ["str", "str"], eq_s)
    b.fn("bool", "Contains", ["str", "str"], contains)
    b.fn("bool", "StartsWith", ["str", "str"], starts_with)
    b.fn("bool", "EndsWith", ["str", "str"], ends_with)
    b.fn("bool", "IsEmpty", ["str"], is_empty)
    b.fn("bool", "Not", ["bool"], not_b)

    # _RECURSE on the common unary-int shape (e.g. recursively defined
    # sequences); arity/type checks make it a no-op for other signatures.
    b.recurse("int", ["int"])
    b.recurse("str", ["str"])

    b.constants_from(pexfun_constants)
    from ..core.strategies import make_concat_strategy

    b.composition_strategy(
        make_concat_strategy("Concat", piece_nt="str", out_nt="str")
    )
    return b.build()


def coerce_pexfun(ty: Type, value: Any) -> Any:
    del ty
    return value


PEXFUN_DOMAIN = register_domain(
    Domain(
        name="pexfun",
        make_dsl=make_pexfun_dsl,
        coerce=coerce_pexfun,
        description="Type-directed string/int DSL for Pex4Fun puzzles",
    )
)
