"""The strings domain: the extended FlashFill DSL of Fig. 6.

The component library reimplements the core of Gulwani's POPL'11 string
transformation language: token-sequence regexes, position expressions
(``CPos``/``Pos``/``RelPos``), substring extraction, concatenation, the
``Loop`` construct over a loop variable ``w``, and ``SplitAndMerge``.
The bolded extensions from Fig. 6 are included: nested substrings
(``SubStr`` over ``f``), positions dependent on the loop variable and on
integer parameters, ``Trim``, calls to other LaSy functions
(``_LASY_FN``) and recursion (``_RECURSE``).

Positions and regexes are first-class *data* (tagged tuples), not
closures, so the §5.1 semantic deduplication applies to them: a position
expression's observable behaviour on the example inputs is the data
itself plus how ``SubStr``/``GetPosition`` resolve it.
"""

from __future__ import annotations

import re
from functools import lru_cache
from typing import Any, Dict, List, Sequence, Tuple

from ..core.dsl import Dsl, DslBuilder, Example, LambdaSpec
from ..core.evaluator import EvaluationError
from ..core.rewrite import parse_rule
from ..core.types import BOOL, INT, STRING, Type
from ..core.values import ERROR
from .registry import Domain, register_domain

# Regexes/positions are opaque domain data to the type system.
REGEX = Type("regex")
POSITION = Type("position")
TOKEN = Type("token")

# ---------------------------------------------------------------------
# Tokens and token-sequence regexes

TOKEN_PATTERNS: Dict[str, str] = {
    "Alpha": r"[A-Za-z]+",
    "Num": r"[0-9]+",
    "Alnum": r"[A-Za-z0-9]+",
    "Upper": r"[A-Z]+",
    "Lower": r"[a-z]+",
    "Space": r" +",
    "Whitespace": r"\s+",
    "Comma": r",",
    "Dot": r"\.",
    "Hyphen": r"-",
    "Slash": r"/",
    "Colon": r":",
    "Semicolon": r";",
    "LParen": r"\(",
    "RParen": r"\)",
    "Quote": r"\"",
    "Newline": r"\n",
    "Underscore": r"_",
    "At": r"@",
    "Start": r"^",
    "End": r"$",
}

# The empty token sequence ε matches the empty string at any boundary.
EPSILON: Tuple[str, ...] = ()


def token_seq(*tokens: str) -> Tuple[str, ...]:
    for token in tokens:
        if token not in TOKEN_PATTERNS:
            raise EvaluationError(f"unknown token {token!r}")
    return tuple(tokens)


@lru_cache(maxsize=4096)
def _compiled(tokens: Tuple[str, ...]) -> "re.Pattern[str]":
    return re.compile("".join(TOKEN_PATTERNS[t] for t in tokens))


@lru_cache(maxsize=65536)
def _boundary_positions(
    value: str, left: Tuple[str, ...], right: Tuple[str, ...]
) -> Tuple[int, ...]:
    """All positions p in ``value`` where a suffix of ``value[:p]``
    matches ``left`` and a prefix of ``value[p:]`` matches ``right``
    (FlashFill's Pos semantics)."""
    positions: List[int] = []
    left_re = _compiled(left) if left else None
    right_re = _compiled(right) if right else None
    for p in range(len(value) + 1):
        if left_re is not None:
            before = value[:p]
            # A suffix of `before` must match `left`, ending exactly at p.
            if not any(
                left_re.fullmatch(before, start)
                for start in range(len(before) + 1)
            ):
                continue
        if right_re is not None:
            if right_re.match(value, p) is None:
                continue
        positions.append(p)
    return tuple(positions)


# ---------------------------------------------------------------------
# Position expressions (first-class data)


def cpos(k: int) -> Tuple[Any, ...]:
    """Constant position; negative counts from the end (CPos(-1) is the
    position past the last character)."""
    return ("cpos", k)


def pos(left: Any, right: Any, count: int) -> Tuple[Any, ...]:
    """The count-th boundary between a ``left`` and a ``right`` match
    (1-based; negative counts from the end)."""
    return ("pos", tuple(left), tuple(right), count)


def rel_pos(base: Any, right: Any, count: int) -> Tuple[Any, ...]:
    """A boundary located relative to another position: the count-th
    ``right`` match at or after (count>0) / before (count<0) ``base``."""
    return ("relpos", tuple(base), tuple(right), count)


def pos_within(left: Any, right: Any, count: int, limit: int) -> Tuple[Any, ...]:
    """Like :func:`pos` but restricted to boundaries at offset ≤
    ``limit`` — a position "dependent on an integer parameter" (Fig. 6's
    bold CPos(j) generalized), e.g. word wrap's last space at or before
    the line limit."""
    return ("poswithin", tuple(left), tuple(right), count, limit)


def resolve_position(position: Any, value: str) -> int:
    """Resolve a position expression against a concrete string."""
    if not isinstance(position, tuple) or not position:
        raise EvaluationError("malformed position expression")
    tag = position[0]
    if tag == "cpos":
        k = position[1]
        if not isinstance(k, int):
            raise EvaluationError("CPos index must be an int")
        index = k if k >= 0 else len(value) + k + 1
        if not 0 <= index <= len(value):
            raise EvaluationError("CPos out of range")
        return index
    if tag == "pos":
        _, left, right, count = position
        matches = _boundary_positions(value, tuple(left), tuple(right))
        if not matches or count == 0:
            raise EvaluationError("Pos: no match")
        index = count - 1 if count > 0 else len(matches) + count
        if not 0 <= index < len(matches):
            raise EvaluationError("Pos: match count out of range")
        return matches[index]
    if tag == "poswithin":
        _, left, right, count, limit = position
        if not isinstance(limit, int) or limit < 0:
            raise EvaluationError("PosWithin: bad limit")
        matches = [
            m
            for m in _boundary_positions(value, tuple(left), tuple(right))
            if m <= limit
        ]
        if not matches or count == 0:
            raise EvaluationError("PosWithin: no match")
        index = count - 1 if count > 0 else len(matches) + count
        if not 0 <= index < len(matches):
            raise EvaluationError("PosWithin: match count out of range")
        return matches[index]
    if tag == "relpos":
        _, base, right, count = position
        origin = resolve_position(tuple(base), value)
        matches = _boundary_positions(value, EPSILON, tuple(right))
        if count > 0:
            after = [m for m in matches if m >= origin]
            if len(after) < count:
                raise EvaluationError("RelPos: no match after base")
            return after[count - 1]
        if count < 0:
            before = [m for m in matches if m <= origin]
            if len(before) < -count:
                raise EvaluationError("RelPos: no match before base")
            return before[count]
        raise EvaluationError("RelPos: count must be nonzero")
    raise EvaluationError(f"unknown position tag {tag!r}")


# ---------------------------------------------------------------------
# Component functions


def const_str(s: str) -> str:
    return s


def substr(value: str, p1: Any, p2: Any) -> str:
    if not isinstance(value, str):
        raise EvaluationError("SubStr on a non-string")
    start = resolve_position(p1, value)
    end = resolve_position(p2, value)
    if start > end:
        raise EvaluationError("SubStr: empty or inverted range")
    return value[start:end]


def concatenate(left: str, right: str) -> str:
    return left + right


def trim(value: str) -> str:
    return value.strip()


def to_upper(value: str) -> str:
    return value.upper()


def to_lower(value: str) -> str:
    return value.lower()


_LOOP_CAP = 64


def flash_loop(body: Any) -> str:
    """FlashFill's Loop: concatenate body(0), body(1), ... until the body
    errors; the result is the concatenation of the successful pieces."""
    pieces: List[str] = []
    for w in range(_LOOP_CAP):
        try:
            piece = body(w)
        except EvaluationError:
            break
        if not isinstance(piece, str):
            raise EvaluationError("Loop body must produce strings")
        pieces.append(piece)
    return "".join(pieces)


def split_and_merge(value: str, sep: str, joiner: str, body: Any) -> str:
    if not sep:
        raise EvaluationError("SplitAndMerge: empty separator")
    pieces = value.split(sep)
    out: List[str] = []
    for piece in pieces:
        mapped = body(piece)
        if not isinstance(mapped, str):
            raise EvaluationError("SplitAndMerge body must produce strings")
        out.append(mapped)
    return joiner.join(out)


def match(value: str, regex: Any, k: int) -> bool:
    """Whether the token sequence occurs at least ``k`` times."""
    if not isinstance(value, str):
        raise EvaluationError("Match on a non-string")
    if not regex:
        raise EvaluationError("Match against ε")
    if k <= 0:
        raise EvaluationError("Match count must be positive")
    found = _compiled(tuple(regex)).findall(value)
    return len(found) >= k


def str_length(value: str) -> int:
    return len(value)


def get_position(value: str, position: Any) -> int:
    return resolve_position(position, value)


def int_lt(a: int, b: int) -> bool:
    return a < b


def bool_not(a: bool) -> bool:
    if not isinstance(a, bool):
        raise EvaluationError("! on a non-bool")
    return not a


def bool_and(a: bool, b: bool) -> bool:
    return bool(a) and bool(b)


def bool_or(a: bool, b: bool) -> bool:
    return bool(a) or bool(b)


def w_times_plus(k1: int, w: int, k2: int) -> int:
    return k1 * w + k2


def int_plus(a: int, b: int) -> int:
    return a + b


# ---------------------------------------------------------------------
# Constant inference


_PUNCT_CANDIDATES = [
    " ",
    "",
    ",",
    ", ",
    ".",
    "\n",
    "-",
    "(",
    ")",
    ":",
    ";",
    "; ",
    ": ",
    "/",
    "'",
    '"',
    " (",
    ") ",
]


def _common_affixes(outputs: Sequence[str]) -> List[str]:
    """Longest common prefix/suffix of the outputs — likely constants."""
    if not outputs:
        return []
    prefix = outputs[0]
    suffix = outputs[0]
    for text in outputs[1:]:
        while prefix and not text.startswith(prefix):
            prefix = prefix[:-1]
        while suffix and not text.endswith(suffix):
            suffix = suffix[:-1]
    found = []
    if 0 < len(prefix) <= 16:
        found.append(prefix)
    if 0 < len(suffix) <= 16 and suffix != prefix:
        found.append(suffix)
    return found


def infer_string_constants(examples: Sequence[Example]) -> List[str]:
    """Constant-string candidates from the examples (§3.2 "Constant
    value generation"): punctuation/separator literals appearing in the
    outputs, characters in outputs but absent from inputs, and common
    output affixes."""
    outputs = [e.output for e in examples if isinstance(e.output, str)]
    inputs: List[str] = []
    for e in examples:
        inputs.extend(a for a in e.args if isinstance(a, str))
    constants: List[str] = []
    for cand in _PUNCT_CANDIDATES:
        # Separators may live in the inputs only (word wrap's space is
        # *replaced* by the newline in the outputs), so harvest both.
        if (
            cand == ""
            or any(cand in out for out in outputs)
            or any(cand in value for value in inputs)
        ):
            constants.append(cand)
    input_chars = set("".join(inputs))
    for out in outputs:
        for ch in out:
            if ch not in input_chars and ch not in constants:
                constants.append(ch)
    for affix in _common_affixes(outputs):
        if affix not in constants:
            constants.append(affix)
    return constants


_DEFAULT_TOKENS = [
    "Alpha",
    "Num",
    "Alnum",
    "Upper",
    "Lower",
    "Space",
    "Comma",
    "Dot",
    "Hyphen",
    "LParen",
    "RParen",
    "Newline",
    "Slash",
    "At",
]


def flashfill_constants(examples: Sequence[Example]) -> Dict[str, List[Any]]:
    """The extended FlashFill DSL's constant provider."""
    ints = [0, 1, 2, -1, -2, 3]
    tokens: List[Tuple[str, ...]] = [EPSILON]
    tokens.extend(token_seq(name) for name in _DEFAULT_TOKENS)
    return {
        "s": infer_string_constants(examples),
        "k": ints,
        "r": tokens,
    }


# ---------------------------------------------------------------------
# The DSL


def make_flashfill_dsl(extended: bool = True) -> Dsl:
    """Build the FlashFill DSL of Fig. 6.

    ``extended=False`` drops the bolded Fig. 6 additions (nested
    substrings, loop-variable positions, Trim, _LASY_FN, _RECURSE),
    approximating the original POPL'11 language — that restriction is the
    comparison boundary of §6.1.1.
    """
    b = DslBuilder("flashfill" if extended else "flashfill-core", start="P")
    b.nt("P", STRING)
    b.nt("e", STRING)
    b.nt("f", STRING)
    b.nt("v", STRING)
    b.nt("s", STRING)
    b.nt("p", POSITION)
    b.nt("r", REGEX)
    b.nt("c", INT)
    b.nt("k", INT)
    b.nt("j", INT)
    b.nt("b", BOOL)
    b.nt("d", BOOL)
    b.nt("pi", BOOL)
    b.nt("m", BOOL)
    b.nt("i", INT)

    # P ::= CONDITIONAL(b, e)
    b.conditional("P", guard_nt="b", branch_nt="e")

    # e ::= Concatenate(f, e) | f
    b.fn("e", "Concatenate", ["f", "e"], concatenate)
    b.unit("e", "f")

    # f ::= ConstStr(s) | SubStr(v, p, p) | Loop(λw: e) | v
    b.fn("f", "ConstStr", ["s"], const_str)
    b.fn("f", "SubStr", ["v", "p", "p"], substr)
    b.fn("f", "Loop", [LambdaSpec(("w",), (INT,), "e")], flash_loop)
    b.unit("f", "v")

    # v ::= _PARAM (string parameters)
    b.param("v")
    # s ::= _CONSTANT
    b.constant("s")
    # k ::= _CONSTANT ; j ::= _PARAM (int parameters)
    b.constant("k")
    b.param("j")

    # p ::= Pos(r, r, c) | CPos(c)
    b.fn("p", "Pos", ["r", "r", "c"], pos)
    b.fn("p", "CPos", ["c"], cpos)

    # c ::= k | k*w+k  (w is the Loop variable)
    b.nt("w", INT)
    b.var("w", "w")
    b.unit("c", "k")
    b.fn("c", "WTimesPlus", ["k", "w", "k"], w_times_plus)
    b.unit("c", "w")

    # r ::= _CONSTANT (token sequences incl. ε) | TokenPair(r, r)
    b.constant("r")

    # Guards: b ::= ||(d, d) | d ; d ::= &&(pi, pi) | pi ;
    # pi ::= m | !(m) ; m ::= Match(v, r, k) | <(i, i)
    b.fn("b", "Or", ["d", "d"], bool_or)
    b.unit("b", "d")
    b.fn("d", "And", ["pi", "pi"], bool_and)
    b.unit("d", "pi")
    b.unit("pi", "m")
    b.fn("pi", "Not", ["m"], bool_not)
    b.fn("m", "Match", ["v", "r", "k"], match)
    b.fn("m", "Lt", ["i", "i"], int_lt)

    # i ::= Length(v) | GetPosition(v, p) | j | k
    b.fn("i", "Length", ["v"], str_length)
    b.fn("i", "GetPosition", ["v", "p"], get_position)
    b.unit("i", "j")
    b.unit("i", "k")

    if extended:
        # Fig. 6 bold extensions. Nested substrings take *simple*
        # positions only (constant offsets, possibly parameter-relative):
        # an expert prune keeping the f × p × p product tractable — the
        # typical nested extraction peels a fixed-width piece.
        b.nt("p2", POSITION)
        b.fn("p2", "CPos", ["c"], cpos)
        b.fn("f", "SubStrF", ["f", "p2", "p2"], substr)  # nested substrings
        b.fn("f", "Trim", ["f"], trim)
        b.fn(
            "f",
            "SplitAndMerge",
            ["v", "s", "s", LambdaSpec(("piece",), (STRING,), "e")],
            split_and_merge,
        )
        b.var("v", "piece")  # the SplitAndMerge piece variable
        b.lasy_fn("f", ["f"])
        b.recurse("f", ["f", "j"])
        b.fn("m", "MatchF", ["f", "r", "k"], match)
        b.fn("i", "LengthF", ["f"], str_length)
        b.unit("c", "j")  # CPos(j): positions from int parameters
        b.fn("c", "PlusJ", ["k", "j"], int_plus)
        # Positions bounded by an int parameter (word wrap's "last space
        # at or before the line limit"). The count is a plain constant
        # (k) and the limit a parameter-derived value (cl) to keep the
        # production from squaring the c pool.
        b.nt("cl", INT)
        b.unit("cl", "j")
        b.fn("cl", "PlusJL", ["k", "j"], int_plus)
        b.fn("p", "PosWithin", ["r", "r", "k", "cl"], pos_within)

    # Rewrite rules from Fig. 6.
    function_names = [
        "Or",
        "And",
        "Not",
        "Trim",
        "WTimesPlus",
        "Concatenate",
        "ConstStr",
    ]
    b.rewrite(parse_rule("And(pi0, pi1) ==> And(pi1, pi0)", function_names))
    b.rewrite(parse_rule("Or(d0, d0) ==> d0", function_names))
    b.rewrite(parse_rule("Or(d0, d1) ==> Or(d1, d0)", function_names))
    b.rewrite(parse_rule("And(pi0, pi0) ==> pi0", function_names))
    if extended:
        b.rewrite(parse_rule("Trim(Trim(f0)) ==> f0", function_names))
        b.rewrite(
            parse_rule("WTimesPlus(0, w0, k0) ==> k0", function_names)
        )
    b.rewrite(
        parse_rule(
            'Concatenate(ConstStr(""), f0) ==> f0', function_names
        )
    )

    b.constants_from(flashfill_constants)
    from ..core.strategies import make_concat_strategy

    b.composition_strategy(
        make_concat_strategy("Concatenate", piece_nt="f", out_nt="e")
    )
    b.signature_adapter("p", position_signature)
    b.signature_adapter("p2", position_signature)
    b.signature_adapter("r", regex_signature)
    # Concatenation pieces must occur inside some expected output — the
    # output-guided prune (an inverse-strategy hint in the spirit of
    # §5.4). Correct branch/loop fragments are always infixes of the
    # output they help build, so no solution is lost.
    b.admission_filter("e", output_infix_filter)
    # Substring-level pieces (f) additionally admit input infixes: every
    # extraction result lives inside an input, every constant piece
    # inside an output. This keeps the f pool from quadratic blow-up
    # (word wrap's prefix pieces are input infixes, not output ones).
    b.admission_filter("f", input_or_output_infix_filter)
    return b.build()


def input_or_output_infix_filter(
    values: Sequence[Any], examples: Sequence[Example]
) -> bool:
    """Keep a piece only if, on at least one example, it evaluates to a
    non-empty infix of that example's output or of one of its string
    inputs (errors are inconclusive and never disqualify alone)."""
    saw_value = False
    for value, example in zip(values, examples):
        if value is ERROR:
            continue
        if not isinstance(value, str):
            return False
        saw_value = True
        if not value:
            continue
        if isinstance(example.output, str) and value in example.output:
            return True
        if any(
            isinstance(arg, str) and value in arg for arg in example.args
        ):
            return True
    return not saw_value


def output_infix_filter(values: Sequence[Any], examples: Sequence[Example]) -> bool:
    """Keep a concatenation piece only if, on at least one example, it
    evaluates to a non-empty infix of the expected output (errors are
    inconclusive and never disqualify on their own)."""
    saw_value = False
    for value, example in zip(values, examples):
        if value is ERROR or not isinstance(example.output, str):
            continue
        if not isinstance(value, str):
            return False
        saw_value = True
        if value and value in example.output:
            return True
    return not saw_value


def position_signature(value: Any, example: Example) -> Any:
    """Semantic fingerprint of a position expression: where it resolves
    in every string argument of the example. Collapses the thousands of
    syntactically distinct Pos/CPos variants onto their few observable
    behaviours."""
    out: List[Any] = []
    for arg in example.args:
        if isinstance(arg, str):
            try:
                out.append(resolve_position(value, arg))
            except EvaluationError:
                out.append("<err>")
    return tuple(out)


def regex_signature(value: Any, example: Example) -> Any:
    """Fingerprint a token-sequence regex by its boundary positions in
    the example's string arguments."""
    out: List[Any] = []
    for arg in example.args:
        if isinstance(arg, str):
            try:
                out.append(_boundary_positions(arg, tuple(value), EPSILON))
            except (EvaluationError, re.error):
                out.append("<err>")
    return tuple(out)


def _builder_nt_patch() -> None:  # pragma: no cover - documentation only
    """The 'w' loop variable is referenced via the c nonterminal; see
    make_flashfill_dsl."""


def _make_dsl_with_w() -> Dsl:
    return make_flashfill_dsl(extended=True)


def coerce_strings(ty: Type, value: Any) -> Any:
    del ty
    return value


STRINGS_DOMAIN = register_domain(
    Domain(
        name="strings",
        make_dsl=_make_dsl_with_w,
        coerce=coerce_strings,
        description="Extended FlashFill string-transformation DSL (Fig. 6)",
    )
)
