"""The XML-transformation domain (§6.1.3).

The paper built a DSL "able to express the operations necessary" for ten
real-world help-forum XML tasks, including the two shown in Figs. 3-4
(lists-to-table alignment, class-attribute propagation). This module
provides that DSL over :mod:`repro.domains.xmltree`: tree queries
(descendants by tag, children, attributes, text), tree builders (new
elements, rows/cells), per-node rewrites via a map-children combinator,
and the string bridge the paper highlights ("making the string and XML
DSLs work together required simply putting the functions to convert
between the two in the DSL").
"""

from __future__ import annotations

from functools import lru_cache
from typing import Any, Dict, List, Sequence, Tuple

from ..core.dsl import Dsl, DslBuilder, Example, LambdaSpec
from ..core.evaluator import EvaluationError
from ..core.types import BOOL, INT, STRING, XML, Type, list_of
from .registry import Domain, register_domain
from .xmltree import XmlNode, parse_xml, serialize

NODE_LIST = list_of(XML)


def _require_node(value: Any, what: str = "node") -> XmlNode:
    if not isinstance(value, XmlNode):
        raise EvaluationError(f"expected an XML {what}")
    return value


def _require_nodes(value: Any) -> Tuple[XmlNode, ...]:
    if not isinstance(value, tuple) or not all(
        isinstance(v, XmlNode) for v in value
    ):
        raise EvaluationError("expected a node list")
    return value


# -- queries -----------------------------------------------------------


def descendants(node: Any, tag: str) -> Tuple[XmlNode, ...]:
    return _require_node(node).find_all(tag)


def children_of(node: Any) -> Tuple[XmlNode, ...]:
    return _require_node(node).elements()


def first_node(nodes: Any) -> XmlNode:
    seq = _require_nodes(nodes)
    if not seq:
        raise EvaluationError("empty node list")
    return seq[0]


def node_at(nodes: Any, index: int) -> XmlNode:
    seq = _require_nodes(nodes)
    if not -len(seq) <= index < len(seq):
        raise EvaluationError("node index out of range")
    return seq[index]


def tag_of(node: Any) -> str:
    return _require_node(node).tag


def text_of(node: Any) -> str:
    return _require_node(node).text()


def attr_of(node: Any, name: str) -> str:
    node = _require_node(node)
    try:
        return node.attr(name)
    except KeyError as exc:
        raise EvaluationError(f"no attribute {name!r}") from exc


def has_attr(node: Any, name: str) -> bool:
    return _require_node(node).has_attr(name)


def has_tag(node: Any, tag: str) -> bool:
    return _require_node(node).tag == tag


def count_nodes(nodes: Any) -> int:
    return len(_require_nodes(nodes))


def filter_by_attr(nodes: Any, name: str, value: str) -> Tuple[XmlNode, ...]:
    return tuple(
        n
        for n in _require_nodes(nodes)
        if n.has_attr(name) and n.attr(name) == value
    )


# -- builders ------------------------------------------------------------


def new_element(tag: str) -> XmlNode:
    if not tag:
        raise EvaluationError("empty tag name")
    return XmlNode(tag)


def element_with_text(tag: str, text: str) -> XmlNode:
    if not tag:
        raise EvaluationError("empty tag name")
    if text == "":
        return XmlNode(tag)
    return XmlNode(tag, (), (text,))


def element_with_children(tag: str, nodes: Any) -> XmlNode:
    if not tag:
        raise EvaluationError("empty tag name")
    return XmlNode(tag, (), tuple(_require_nodes(nodes)))


def set_attr(node: Any, name: str, value: str) -> XmlNode:
    if not name:
        raise EvaluationError("empty attribute name")
    return _require_node(node).with_attr(name, value)


def remove_attr(node: Any, name: str) -> XmlNode:
    return _require_node(node).without_attr(name)


def rename_attr(node: Any, old: str, new: str) -> XmlNode:
    node = _require_node(node)
    if not node.has_attr(old):
        raise EvaluationError(f"no attribute {old!r}")
    value = node.attr(old)
    return node.without_attr(old).with_attr(new, value)


def rename(node: Any, tag: str) -> XmlNode:
    if not tag:
        raise EvaluationError("empty tag name")
    return _require_node(node).with_tag(tag)


def set_children(node: Any, nodes: Any) -> XmlNode:
    return _require_node(node).with_children(tuple(_require_nodes(nodes)))


def set_text(node: Any, text: str) -> XmlNode:
    node = _require_node(node)
    return node.with_children((text,) if text else ())


def append_child(node: Any, child: Any) -> XmlNode:
    return _require_node(node).append(_require_node(child, "child"))


def concat_lists(a: Any, b: Any) -> Tuple[XmlNode, ...]:
    return _require_nodes(a) + _require_nodes(b)


def single(node: Any) -> Tuple[XmlNode, ...]:
    return (_require_node(node),)


def map_nodes(nodes: Any, fn: Any) -> Tuple[XmlNode, ...]:
    out: List[XmlNode] = []
    for node in _require_nodes(nodes):
        mapped = fn(node)
        if not isinstance(mapped, XmlNode):
            raise EvaluationError("MapNodes body must produce nodes")
        out.append(mapped)
    return tuple(out)


def flat_map_nodes(nodes: Any, fn: Any) -> Tuple[XmlNode, ...]:
    out: List[XmlNode] = []
    for node in _require_nodes(nodes):
        mapped = fn(node)
        out.extend(_require_nodes(mapped))
    return tuple(out)


def propagate_attr(node: Any, name: str) -> XmlNode:
    """Assign each child lacking attribute ``name`` the value of the
    nearest previous sibling that has it (Fig. 4's transformation). A
    domain-expert component: the kind of reusable, pure .NET helper the
    paper's DSLs are built from."""
    node = _require_node(node)
    if not name:
        raise EvaluationError("empty attribute name")
    current: Any = None
    out: List[Any] = []
    for child in node.children:
        if isinstance(child, XmlNode):
            if child.has_attr(name):
                current = child.attr(name)
            elif current is not None:
                child = child.with_attr(name, current)
            out.append(child)
        else:
            out.append(child)
    return node.with_children(tuple(out))


def group_rows_by_attr(
    containers: Any, item_tag: str, key_attr: str
) -> Tuple[XmlNode, ...]:
    """Fig. 3's alignment kernel: given a list of container nodes, align
    their ``item_tag`` children by the ``key_attr`` value (first-seen
    order) into <tr> rows with one <td> per container; missing entries
    become empty cells."""
    containers = _require_nodes(containers)
    keys: List[str] = []
    per: List[Dict[str, XmlNode]] = []
    for container in containers:
        table: Dict[str, XmlNode] = {}
        for item in container.elements():
            if item.tag != item_tag or not item.has_attr(key_attr):
                continue
            key = item.attr(key_attr)
            if key not in table:
                table[key] = item
            if key not in keys:
                keys.append(key)
        per.append(table)
    keys.sort()
    rows: List[XmlNode] = []
    for key in keys:
        cells: List[XmlNode] = []
        for table in per:
            item = table.get(key)
            if item is None:
                cells.append(XmlNode("td"))
            else:
                text = item.text()
                cells.append(
                    XmlNode("td", (), (text,) if text else ())
                )
        rows.append(XmlNode("tr", (), tuple(cells)))
    return tuple(rows)


def to_xml(text: str) -> XmlNode:
    """The string→XML bridge."""
    try:
        return parse_xml(text)
    except Exception as exc:
        raise EvaluationError(f"not parseable as XML: {exc}") from exc


def from_xml(node: Any) -> str:
    """The XML→string bridge."""
    return serialize(_require_node(node))


# -- constants ------------------------------------------------------------


def xml_constants(examples: Sequence[Example]) -> Dict[str, List[Any]]:
    """§3.2: "when synthesizing XML, extracting the names of the tags and
    attributes in the outputs"."""
    tags: List[str] = []
    attrs: List[str] = []
    attr_values: List[str] = []

    def collect(node: XmlNode) -> None:
        if node.tag not in tags:
            tags.append(node.tag)
        for key, value in node.attrs:
            if key not in attrs:
                attrs.append(key)
            if value not in attr_values and len(value) <= 24:
                attr_values.append(value)
        for child in node.elements():
            collect(child)

    for example in examples:
        for value in list(example.args) + [example.output]:
            if isinstance(value, XmlNode):
                collect(value)
    return {
        "tag": tags,
        "attr": attrs,
        "sval": attr_values + [""],
        "k": [0, 1, 2, -1],
        "kidx": [0, 1, 2, -1],
    }


# -- the DSL ---------------------------------------------------------------


# Module-level so the built DSL stays picklable (cached sessions carry
# their DSL through the session-cache journal).
def _concat_s(a: str, b: str) -> str:
    return a + b


def _eq(a: Any, b: Any) -> bool:
    return a == b


def _lt(a: Any, b: Any) -> bool:
    return a < b


def make_xml_dsl() -> Dsl:
    """The XML-transformation DSL used for the §6.1.3 benchmarks."""
    b = DslBuilder("xml", start="P")
    b.nt("P", XML)
    b.nt("n", XML)        # a node
    b.nt("ns", NODE_LIST)  # a node list
    b.nt("str", STRING)
    b.nt("tag", STRING)
    b.nt("attr", STRING)
    b.nt("sval", STRING)
    b.nt("k", INT)
    b.nt("kidx", INT)  # constant indexes only (keeps NodeAt linear)
    b.nt("b", BOOL)

    b.conditional("P", guard_nt="b", branch_nt="n")
    b.unit("P", "n")

    # Queries.
    b.param("n")
    b.fn("ns", "Descendants", ["n", "tag"], descendants)
    b.fn("ns", "Children", ["n"], children_of)
    b.fn("n", "First", ["ns"], first_node)
    b.fn("n", "NodeAt", ["ns", "kidx"], node_at)
    b.fn("str", "Text", ["n"], text_of)
    b.fn("str", "Attr", ["n", "attr"], attr_of)
    b.fn("str", "TagOf", ["n"], tag_of)
    b.fn("ns", "FilterByAttr", ["ns", "attr", "sval"], filter_by_attr)

    # Builders.
    b.fn("n", "Elem", ["tag"], new_element)
    b.fn("n", "ElemText", ["tag", "str"], element_with_text)
    b.fn("n", "ElemChildren", ["tag", "ns"], element_with_children)
    b.fn("n", "SetAttr", ["n", "attr", "sval"], set_attr)
    b.fn("n", "RemoveAttr", ["n", "attr"], remove_attr)
    b.fn("n", "RenameAttr", ["n", "attr", "attr"], rename_attr)
    b.fn("n", "Rename", ["n", "tag"], rename)
    b.fn("n", "SetChildren", ["n", "ns"], set_children)
    b.fn("n", "PropagateAttr", ["n", "attr"], propagate_attr)

    # List combinators (loops over nodes).
    b.fn("ns", "MapNodes", ["ns", LambdaSpec(("node",), (XML,), "n")], map_nodes)
    b.var("n", "node")
    b.fn("ns", "ConcatLists", ["ns", "ns"], concat_lists)
    b.fn("ns", "Single", ["n"], single)
    b.fn("ns", "GroupRowsByAttr", ["ns", "tag", "attr"], group_rows_by_attr)

    # String bridge (cross-domain computation, §6.1.3).
    b.fn("n", "ToXml", ["str"], to_xml)
    b.fn("str", "FromXml", ["n"], from_xml)
    b.fn("str", "ConcatS", ["str", "str"], _concat_s)
    b.unit("str", "sval")

    # Guards.
    b.fn("b", "HasAttr", ["n", "attr"], has_attr)
    b.fn("b", "HasTag", ["n", "tag"], has_tag)
    b.fn("b", "Eq", ["str", "str"], _eq)
    b.fn("k", "Count", ["ns"], count_nodes)
    b.fn("b", "LtK", ["k", "k"], _lt)

    b.constant("tag")
    b.constant("attr")
    b.constant("sval")
    b.constant("k")
    b.constant("kidx")
    b.param("str")

    b.constants_from(xml_constants)
    from ..core.strategies import make_concat_strategy

    b.composition_strategy(
        make_concat_strategy("ConcatS", piece_nt="str", out_nt="str")
    )
    # Output/input-relatedness prunes (expert hints in the spirit of
    # §5.4's inverse strategies; see the strings domain's infix filter).
    # Closed node values must be subtrees of some example input or
    # output; node lists must consist of such subtrees; strings must
    # occur inside some example's serialized form. Lambda bodies (the
    # MapNodes workhorses) carry free variables and are never filtered.
    b.admission_filter("n", node_subtree_filter)
    b.admission_filter("ns", node_list_filter)
    b.admission_filter("str", xml_string_filter)
    return b.build()


@lru_cache(maxsize=64)
def _allowed_subtrees(examples: Tuple[Example, ...]) -> frozenset:
    allowed = set()

    def collect(node: XmlNode) -> None:
        if node in allowed:
            return
        allowed.add(node)
        for child in node.elements():
            collect(child)

    for example in examples:
        for value in list(example.args) + [example.output]:
            if isinstance(value, XmlNode):
                collect(value)
    return frozenset(allowed)


@lru_cache(maxsize=64)
def _haystacks(examples: Tuple[Example, ...]) -> Tuple[str, ...]:
    out = []
    for example in examples:
        parts = []
        for value in list(example.args) + [example.output]:
            if isinstance(value, XmlNode):
                parts.append(serialize(value))
            elif isinstance(value, str):
                parts.append(value)
        out.append("\x00".join(parts))
    return tuple(out)


def node_subtree_filter(values: Sequence[Any], examples: Sequence[Example]) -> bool:
    """Keep a closed node expression only if some example value is a
    subtree of that example's inputs or output (intermediates of
    multi-step rewrites of closed nodes are sacrificed; rewrite chains
    live inside MapNodes lambdas, which are not filtered)."""
    from ..core.values import ERROR

    allowed = _allowed_subtrees(tuple(examples))
    saw_value = False
    for value in values:
        if value is ERROR:
            continue
        if not isinstance(value, XmlNode):
            return False
        saw_value = True
        if value in allowed:
            return True
    return not saw_value


def node_list_filter(values: Sequence[Any], examples: Sequence[Example]) -> bool:
    """Keep a closed node-list expression only if, on some example, all
    its elements are input/output subtrees."""
    from ..core.values import ERROR

    allowed = _allowed_subtrees(tuple(examples))
    saw_value = False
    for value in values:
        if value is ERROR:
            continue
        if not isinstance(value, tuple):
            return False
        saw_value = True
        if all(isinstance(v, XmlNode) and v in allowed for v in value):
            return True
    return not saw_value


def xml_string_filter(values: Sequence[Any], examples: Sequence[Example]) -> bool:
    """Keep a closed string expression only if some non-empty value
    occurs inside that example's serialized inputs/output."""
    from ..core.values import ERROR

    haystacks = _haystacks(tuple(examples))
    saw_value = False
    for value, haystack in zip(values, haystacks):
        if value is ERROR:
            continue
        if not isinstance(value, str):
            return False
        saw_value = True
        if value and value in haystack:
            return True
    return not saw_value


def coerce_xml(ty: Type, value: Any) -> Any:
    """LaSy writes XML literals as strings; parse them for XML-typed
    positions. Whitespace-only text between elements is insignificant."""
    if ty == XML and isinstance(value, str):
        return parse_xml(value)
    return value


XML_DOMAIN = register_domain(
    Domain(
        name="xml",
        make_dsl=make_xml_dsl,
        coerce=coerce_xml,
        description="XML tree transformations over an immutable XML tree",
    )
)
