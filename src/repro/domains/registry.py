"""Registry of LaSy domains.

A *domain* packages the two things an expert provides per §3.2: a DSL
definition and the glue to the host value universe (how LaSy literals of
the domain's types are materialized — e.g. XML documents are written as
strings in LaSy source and parsed into trees here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional

from ..core.dsl import Dsl
from ..core.types import Type


def _identity_coerce(ty: Type, value: Any) -> Any:
    del ty
    return value


@dataclass
class Domain:
    """A named LaSy language: a DSL factory plus literal coercion."""

    name: str
    make_dsl: Callable[[], Dsl]
    coerce: Callable[[Type, Any], Any] = _identity_coerce
    description: str = ""
    _cached: Optional[Dsl] = field(default=None, repr=False)

    def dsl(self) -> Dsl:
        if self._cached is None:
            self._cached = self.make_dsl()
        return self._cached


_DOMAINS: Dict[str, Domain] = {}


def register_domain(domain: Domain) -> Domain:
    """Register (or replace) a domain under its name."""
    _DOMAINS[domain.name] = domain
    return domain


def get_domain(name: str) -> Domain:
    if name not in _DOMAINS:
        _ensure_builtins()
    if name not in _DOMAINS:
        raise KeyError(
            f"unknown LaSy language {name!r}; known: {sorted(_DOMAINS)}"
        )
    return _DOMAINS[name]


def known_domains() -> Dict[str, Domain]:
    _ensure_builtins()
    return dict(_DOMAINS)


def _ensure_builtins() -> None:
    """Import the built-in domains so their registrations run."""
    from . import strings, tables, xmldsl, pexfun  # noqa: F401
