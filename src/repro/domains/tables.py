"""The table-transformation domain (§6.1.2).

Spreadsheet tables are immutable rectangular grids of strings (a tuple
of equal-length row tuples). The DSL follows Harris & Gulwani's
spreadsheet table transformations (PLDI'11): cell rearrangement and
copying via row/column selection, transposition, stacking, and — per the
paper's §6.1.2 extension — "more predicates … to handle a wider range of
real world normalization scenarios", here reified as expert
normalization kernels (unpivot, fill-down, subheader promotion).
"""

from __future__ import annotations

from typing import Any, Dict, List, Sequence, Tuple

from ..core.dsl import Dsl, DslBuilder, Example, LambdaSpec
from ..core.evaluator import EvaluationError
from ..core.types import BOOL, INT, STRING, TABLE, Type, list_of
from .registry import Domain, register_domain

Row = Tuple[str, ...]
TableValue = Tuple[Row, ...]

ROW = list_of(STRING)


def as_table(value: Any) -> TableValue:
    """Validate and canonicalize a table value (rectangular, strings)."""
    if not isinstance(value, tuple):
        raise EvaluationError("expected a table")
    rows: List[Row] = []
    width = None
    for row in value:
        if not isinstance(row, tuple) or not all(
            isinstance(c, str) for c in row
        ):
            raise EvaluationError("table rows must be tuples of strings")
        if width is None:
            width = len(row)
        elif len(row) != width:
            raise EvaluationError("table is not rectangular")
        rows.append(row)
    return tuple(rows)


def table(rows: Sequence[Sequence[str]]) -> TableValue:
    """Public constructor used by the suites and tests."""
    return as_table(tuple(tuple(r) for r in rows))


# -- basic accessors -----------------------------------------------------


def num_rows(t: Any) -> int:
    return len(as_table(t))


def num_cols(t: Any) -> int:
    t = as_table(t)
    return len(t[0]) if t else 0


def _check_row_index(t: TableValue, k: int) -> int:
    if not -len(t) <= k < len(t):
        raise EvaluationError("row index out of range")
    return k


def get_row(t: Any, k: int) -> Row:
    t = as_table(t)
    return t[_check_row_index(t, k)]


def get_col(t: Any, k: int) -> Row:
    t = as_table(t)
    if not t or not -len(t[0]) <= k < len(t[0]):
        raise EvaluationError("column index out of range")
    return tuple(row[k] for row in t)


def get_cell(t: Any, r: int, c: int) -> str:
    row = get_row(t, r)
    if not -len(row) <= c < len(row):
        raise EvaluationError("column index out of range")
    return row[c]


# -- structural operations -------------------------------------------------


def transpose(t: Any) -> TableValue:
    t = as_table(t)
    if not t:
        return ()
    return tuple(zip(*t))


def drop_row(t: Any, k: int) -> TableValue:
    t = as_table(t)
    _check_row_index(t, k)
    index = k % len(t)
    return t[:index] + t[index + 1:]


def drop_col(t: Any, k: int) -> TableValue:
    t = as_table(t)
    if not t or not -len(t[0]) <= k < len(t[0]):
        raise EvaluationError("column index out of range")
    index = k % len(t[0])
    return tuple(row[:index] + row[index + 1:] for row in t)


def take_rows(t: Any, k: int) -> TableValue:
    t = as_table(t)
    if k < 0 or k > len(t):
        raise EvaluationError("take count out of range")
    return t[:k]


def skip_rows(t: Any, k: int) -> TableValue:
    t = as_table(t)
    if k < 0 or k > len(t):
        raise EvaluationError("skip count out of range")
    return t[k:]


def stack(a: Any, b: Any) -> TableValue:
    a, b = as_table(a), as_table(b)
    if a and b and len(a[0]) != len(b[0]):
        raise EvaluationError("stacked tables must share the width")
    return as_table(a + b)


def paste_cols(a: Any, b: Any) -> TableValue:
    a, b = as_table(a), as_table(b)
    if len(a) != len(b):
        raise EvaluationError("pasted tables must share the height")
    return tuple(ra + rb for ra, rb in zip(a, b))


def from_row(row: Any) -> TableValue:
    if not isinstance(row, tuple) or not all(isinstance(c, str) for c in row):
        raise EvaluationError("expected a row of strings")
    return (tuple(row),)


def from_col(col: Any) -> TableValue:
    if not isinstance(col, tuple) or not all(isinstance(c, str) for c in col):
        raise EvaluationError("expected a column of strings")
    return tuple((c,) for c in col)


def filter_rows_nonempty(t: Any, k: int) -> TableValue:
    """Rows whose k-th cell is non-empty."""
    t = as_table(t)
    if not t or not -len(t[0]) <= k < len(t[0]):
        raise EvaluationError("column index out of range")
    return tuple(row for row in t if row[k] != "")


def filter_rows_eq(t: Any, k: int, value: str) -> TableValue:
    t = as_table(t)
    if not t or not -len(t[0]) <= k < len(t[0]):
        raise EvaluationError("column index out of range")
    return tuple(row for row in t if row[k] == value)


def sort_rows_by(t: Any, k: int) -> TableValue:
    t = as_table(t)
    if not t or not -len(t[0]) <= k < len(t[0]):
        raise EvaluationError("column index out of range")
    return tuple(sorted(t, key=lambda row: row[k]))


# -- normalization kernels (§6.1.2 "more predicates") -----------------------


def unpivot(t: Any, keys: int) -> TableValue:
    """Wide→long: the first row is headers, the first ``keys`` columns
    identify the record; every further (header, value) pair becomes its
    own output row. Empty values are skipped (missing observations)."""
    t = as_table(t)
    if len(t) < 2 or keys < 0 or keys >= len(t[0]):
        raise EvaluationError("unpivot needs a header row and key columns")
    header = t[0]
    out: List[Row] = []
    for row in t[1:]:
        for j in range(keys, len(row)):
            if row[j] == "":
                continue
            out.append(row[:keys] + (header[j], row[j]))
    return tuple(out)


def fill_down(t: Any, k: int) -> TableValue:
    """Replace empty cells in column ``k`` with the nearest value above
    (subheaded spreadsheet normalization)."""
    t = as_table(t)
    if not t or not -len(t[0]) <= k < len(t[0]):
        raise EvaluationError("column index out of range")
    current = ""
    out: List[Row] = []
    for row in t:
        cell = row[k]
        if cell != "":
            current = cell
        else:
            row = row[:k] + (current,) + row[k + 1:]
        out.append(row)
    return tuple(out)


def promote_subheaders(t: Any) -> TableValue:
    """Rows where only the first cell is filled are group subheaders;
    prepend the subheader value as a new key column on the group's rows
    and drop the subheader rows."""
    t = as_table(t)
    if not t:
        return ()
    current = ""
    out: List[Row] = []
    for row in t:
        if row[0] != "" and all(c == "" for c in row[1:]):
            current = row[0]
            continue
        out.append((current,) + row)
    return tuple(out)


def delete_empty_rows(t: Any) -> TableValue:
    t = as_table(t)
    return tuple(row for row in t if any(c != "" for c in row))


def map_rows(t: Any, fn: Any) -> TableValue:
    out: List[Row] = []
    for row in as_table(t):
        mapped = fn(row)
        if not isinstance(mapped, tuple) or not all(
            isinstance(c, str) for c in mapped
        ):
            raise EvaluationError("MapRows body must produce rows")
        out.append(tuple(mapped))
    return as_table(tuple(out))


def row_reverse(row: Any) -> Row:
    if not isinstance(row, tuple):
        raise EvaluationError("expected a row")
    return tuple(reversed(row))


def row_take(row: Any, k: int) -> Row:
    if not isinstance(row, tuple) or k < 0 or k > len(row):
        raise EvaluationError("row take out of range")
    return tuple(row[:k])


def row_skip(row: Any, k: int) -> Row:
    if not isinstance(row, tuple) or k < 0 or k > len(row):
        raise EvaluationError("row skip out of range")
    return tuple(row[k:])


def row_concat(a: Any, b: Any) -> Row:
    if not isinstance(a, tuple) or not isinstance(b, tuple):
        raise EvaluationError("expected rows")
    return tuple(a) + tuple(b)


# -- constants -------------------------------------------------------------


def table_constants(examples: Sequence[Example]) -> Dict[str, List[Any]]:
    """Small indexes plus cell values shared across example tables."""
    ints = [0, 1, 2, 3, -1]
    cells: List[str] = []
    for example in examples:
        for value in list(example.args) + [example.output]:
            if isinstance(value, tuple):
                for row in value:
                    if isinstance(row, tuple):
                        for cell in row:
                            if (
                                isinstance(cell, str)
                                and cell
                                and len(cell) <= 16
                                and cell not in cells
                            ):
                                cells.append(cell)
    return {"k": ints, "s": cells[:12]}


# -- the DSL ----------------------------------------------------------------


# Module-level so the built DSL stays picklable (cached sessions carry
# their DSL through the session-cache journal).
def _eq(a: Any, c: Any) -> bool:
    return a == c


def _lt(a: Any, c: Any) -> bool:
    return a < c


def make_tables_dsl() -> Dsl:
    """The table-transformation DSL for the §6.1.2 benchmarks."""
    b = DslBuilder("tables", start="P")
    b.nt("P", TABLE)
    b.nt("t", TABLE)
    b.nt("row", ROW)
    b.nt("k", INT)
    b.nt("s", STRING)
    b.nt("b", BOOL)

    b.conditional("P", guard_nt="b", branch_nt="t")
    b.unit("P", "t")

    b.param("t")
    b.constant("k")
    b.constant("s")

    b.fn("t", "Transpose", ["t"], transpose)
    b.fn("t", "DropRow", ["t", "k"], drop_row)
    b.fn("t", "DropCol", ["t", "k"], drop_col)
    b.fn("t", "TakeRows", ["t", "k"], take_rows)
    b.fn("t", "SkipRows", ["t", "k"], skip_rows)
    b.fn("t", "Stack", ["t", "t"], stack)
    b.fn("t", "PasteCols", ["t", "t"], paste_cols)
    b.fn("t", "FromRow", ["row"], from_row)
    b.fn("t", "FromCol", ["row"], from_col)
    b.fn("t", "FilterRowsNonEmpty", ["t", "k"], filter_rows_nonempty)
    b.fn("t", "FilterRowsEq", ["t", "k", "s"], filter_rows_eq)
    b.fn("t", "SortRowsBy", ["t", "k"], sort_rows_by)
    b.fn("t", "Unpivot", ["t", "k"], unpivot)
    b.fn("t", "FillDown", ["t", "k"], fill_down)
    b.fn("t", "PromoteSubheaders", ["t"], promote_subheaders)
    b.fn("t", "DeleteEmptyRows", ["t"], delete_empty_rows)
    b.fn(
        "t",
        "MapRows",
        ["t", LambdaSpec(("r",), (ROW,), "row")],
        map_rows,
    )
    b.var("row", "r")

    b.fn("row", "GetRow", ["t", "k"], get_row)
    b.fn("row", "GetCol", ["t", "k"], get_col)
    b.fn("row", "RowReverse", ["row"], row_reverse)
    b.fn("row", "RowTake", ["row", "k"], row_take)
    b.fn("row", "RowSkip", ["row", "k"], row_skip)
    b.fn("row", "RowConcat", ["row", "row"], row_concat)

    b.fn("k", "NumRows", ["t"], num_rows)
    b.fn("k", "NumCols", ["t"], num_cols)
    b.fn("s", "GetCell", ["t", "k", "k"], get_cell)

    b.fn("b", "EqK", ["k", "k"], _eq)
    b.fn("b", "LtK", ["k", "k"], _lt)
    b.fn("b", "EqS", ["s", "s"], _eq)

    b.constants_from(table_constants)
    return b.build()


def coerce_table(ty: Type, value: Any) -> Any:
    if ty == TABLE and isinstance(value, tuple):
        return as_table(value)
    return value


TABLES_DOMAIN = register_domain(
    Domain(
        name="tables",
        make_dsl=make_tables_dsl,
        coerce=coerce_table,
        description="Spreadsheet table transformations "
        "(after Harris & Gulwani, PLDI'11)",
    )
)
