"""A FlashFill baseline: version-space-algebra string synthesis.

The §6.1.1 comparison point. This is a real (simplified) implementation
of the core of Gulwani's POPL'11 algorithm — the technology behind Excel
2013's FlashFill:

* per example, build a DAG over output positions whose edge ``(i, j)``
  carries every *atomic* program generating ``output[i:j]``: constant
  strings and ``SubStr(v, p1, p2)`` over learned position-expression
  sets (constant positions from either end, and token-boundary ``Pos``
  expressions shared with the strings domain);
* intersect the DAGs across examples (version-space intersection);
* extract the highest-ranked program (fewest pieces; substring pieces
  preferred over constants; robust positions preferred over offsets).

Deliberately *not* implemented — the boundary the paper probes: loops
over a loop variable, nested substrings, conditional partitioning,
user-defined lookups, and recursion. Benchmarks needing the Fig. 6
extensions therefore fail here, while the core tasks solve in
milliseconds ("FlashFill synthesizes all of the examples it can handle
in well under a second").
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, List, Optional, Sequence, Tuple

from ..core.dsl import Example
from ..domains.strings import (
    EPSILON,
    TOKEN_PATTERNS,
    _boundary_positions,
    resolve_position,
)

PosExpr = Tuple[Any, ...]  # same encoding as the strings domain
Atomic = Tuple[Any, ...]   # ('const', s) | ('substr', k, lefts, rights)

_MAX_OUTPUT = 48
_TOKENS: List[Tuple[str, ...]] = [EPSILON] + [
    (name,)
    for name in (
        "Alpha",
        "Num",
        "Alnum",
        "Upper",
        "Lower",
        "Space",
        "Comma",
        "Dot",
        "Hyphen",
        "Slash",
        "At",
        "LParen",
        "RParen",
        "Newline",
    )
    if name in TOKEN_PATTERNS
]


class FlashFillError(ValueError):
    """The version space is empty or inputs are out of scope."""


def _position_exprs(value: str, index: int) -> FrozenSet[PosExpr]:
    """Every position expression resolving to ``index`` in ``value``."""
    out: List[PosExpr] = [("cpos", index), ("cpos", index - len(value) - 1)]
    for left in _TOKENS:
        for right in _TOKENS:
            if left is EPSILON and right is EPSILON:
                continue
            matches = _boundary_positions(value, left, right)
            if index in matches:
                rank = matches.index(index)
                out.append(("pos", left, right, rank + 1))
                out.append(("pos", left, right, rank - len(matches)))
    return frozenset(out)


def _occurrences(haystack: str, needle: str) -> List[int]:
    out: List[int] = []
    start = 0
    while True:
        found = haystack.find(needle, start)
        if found < 0:
            return out
        out.append(found)
        start = found + 1


Dag = Dict[Tuple[int, int], List[Atomic]]


def _single_dag(inputs: Sequence[str], output: str) -> Dag:
    """The POPL'11 Generate step for one example."""
    dag: Dag = {}
    for i in range(len(output)):
        for j in range(i + 1, len(output) + 1):
            piece = output[i:j]
            atoms: List[Atomic] = [("const", piece)]
            for idx, value in enumerate(inputs):
                for start in _occurrences(value, piece):
                    atoms.append(
                        (
                            "substr",
                            idx,
                            _position_exprs(value, start),
                            _position_exprs(value, start + len(piece)),
                        )
                    )
            dag[(i, j)] = atoms
    return dag


def _intersect_atomics(a: List[Atomic], b: List[Atomic]) -> List[Atomic]:
    out: List[Atomic] = []
    for atom_a in a:
        for atom_b in b:
            if atom_a[0] != atom_b[0]:
                continue
            if atom_a[0] == "const":
                if atom_a[1] == atom_b[1]:
                    out.append(atom_a)
            else:
                _, idx_a, lefts_a, rights_a = atom_a
                _, idx_b, lefts_b, rights_b = atom_b
                if idx_a != idx_b:
                    continue
                lefts = lefts_a & lefts_b
                rights = rights_a & rights_b
                if lefts and rights:
                    out.append(("substr", idx_a, lefts, rights))
    return out


def _intersect_dags(
    d1: Dag, goal1: int, d2: Dag, goal2: int
) -> Tuple[Dag, int]:
    """Product construction; nodes are renumbered pairs."""
    node_ids: Dict[Tuple[int, int], int] = {}

    def node_id(pair: Tuple[int, int]) -> int:
        if pair not in node_ids:
            node_ids[pair] = len(node_ids)
        return node_ids[pair]

    start = node_id((0, 0))
    assert start == 0
    out: Dag = {}
    frontier = [(0, 0)]
    seen = {(0, 0)}
    while frontier:
        i1, i2 = frontier.pop()
        for (a1, b1), atoms1 in d1.items():
            if a1 != i1:
                continue
            for (a2, b2), atoms2 in d2.items():
                if a2 != i2:
                    continue
                merged = _intersect_atomics(atoms1, atoms2)
                if not merged:
                    continue
                source = node_id((i1, i2))
                target = node_id((b1, b2))
                out[(source, target)] = merged
                if (b1, b2) not in seen:
                    seen.add((b1, b2))
                    frontier.append((b1, b2))
    goal = node_ids.get((goal1, goal2))
    if goal is None:
        raise FlashFillError("empty version space")
    # Renumber edges onto the id space (already done via node_id).
    return out, goal


def _atomic_cost(atom: Atomic) -> float:
    if atom[0] == "const":
        # Longer constants are less likely to generalize: a tie between
        # SubStr("Doe")+Const(", ") and SubStr("Do")+Const("e, ") must
        # break toward the shorter constant.
        return 1.4 + 0.05 * len(atom[1])
    lefts = atom[2]
    # Prefer token positions over raw offsets.
    robust = any(p[0] == "pos" for p in lefts)
    return 1.0 if robust else 1.2


def _best_path(dag: Dag, goal: int) -> List[Atomic]:
    """Cheapest start→goal chain of atomics (Dijkstra)."""
    adjacency: Dict[int, List[Tuple[int, Atomic, float]]] = {}
    for (source, target), atoms in dag.items():
        best = min(atoms, key=_atomic_cost)
        adjacency.setdefault(source, []).append(
            (target, best, _atomic_cost(best))
        )
    heap: List[Tuple[float, int, List[Atomic]]] = [(0.0, 0, [])]
    done: set = set()
    while heap:
        cost, node, chain = heapq.heappop(heap)
        if node == goal:
            return chain
        if node in done:
            continue
        done.add(node)
        for target, atom, weight in adjacency.get(node, []):
            if target not in done:
                heapq.heappush(
                    heap, (cost + weight, target, chain + [atom])
                )
    raise FlashFillError("no covering program in the version space")


def _rank_pos(pos_exprs: FrozenSet[PosExpr]) -> PosExpr:
    """Pick the most robust representative of a position set."""

    def key(p: PosExpr) -> Tuple[int, int]:
        if p[0] == "pos":
            return (0, abs(p[3]))
        return (1, abs(p[1]))

    return min(pos_exprs, key=key)


@dataclass
class FlashFillProgram:
    """An executable concat-of-pieces program."""

    pieces: List[Atomic]

    def __call__(self, *inputs: str) -> str:
        out: List[str] = []
        for atom in self.pieces:
            if atom[0] == "const":
                out.append(atom[1])
            else:
                _, idx, lefts, rights = atom
                if idx >= len(inputs):
                    raise FlashFillError("missing input column")
                value = inputs[idx]
                left = resolve_position(_rank_pos(lefts), value)
                right = resolve_position(_rank_pos(rights), value)
                if left > right:
                    raise FlashFillError("inverted substring")
                out.append(value[left:right])
        return "".join(out)

    def describe(self) -> str:
        parts: List[str] = []
        for atom in self.pieces:
            if atom[0] == "const":
                parts.append(f"ConstStr({atom[1]!r})")
            else:
                _, idx, lefts, rights = atom
                parts.append(
                    f"SubStr(v{idx}, {_rank_pos(lefts)}, {_rank_pos(rights)})"
                )
        return "Concatenate(" + ", ".join(parts) + ")"


def learn(examples: Sequence[Example]) -> FlashFillProgram:
    """Learn a FlashFill program from input/output string examples.

    Raises :class:`FlashFillError` when no loop-free concat-of-substrings
    program is consistent with all examples (the paper's boundary).
    """
    if not examples:
        raise FlashFillError("no examples")
    dags: List[Tuple[Dag, int]] = []
    for example in examples:
        inputs = [a for a in example.args if isinstance(a, str)]
        output = example.output
        if not isinstance(output, str) or not inputs:
            raise FlashFillError("FlashFill handles string rows only")
        if len(output) > _MAX_OUTPUT:
            raise FlashFillError("output too long for the baseline")
        if not output:
            raise FlashFillError("empty outputs are out of scope")
        dags.append((_single_dag(inputs, output), len(output)))
    dag, goal = dags[0]
    for other, other_goal in dags[1:]:
        dag, goal = _intersect_dags(dag, goal, other, other_goal)
    return FlashFillProgram(_best_path(dag, goal))


def try_learn(examples: Sequence[Example]) -> Optional[FlashFillProgram]:
    """Like :func:`learn` but returns None on failure."""
    try:
        return learn(examples)
    except FlashFillError:
        return None
