"""Comparison baselines: FlashFill (VSA), Sketch-like, specialized tables."""

from .flashfill import FlashFillError, FlashFillProgram, learn, try_learn
from .sketch import SketchResult, sketch_synthesize
from .tablesynth import TableSynthResult, synthesize_table_transform

__all__ = [
    "FlashFillError",
    "FlashFillProgram",
    "SketchResult",
    "TableSynthResult",
    "learn",
    "sketch_synthesize",
    "synthesize_table_transform",
    "try_learn",
]
