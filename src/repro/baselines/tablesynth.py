"""A specialized table-transformation synthesizer (§6.1.2 comparison).

Harris & Gulwani (PLDI'11) synthesize spreadsheet transformations with a
dedicated algorithm over a fixed table-program language (filter /
associate / sequence programs). As their system is unavailable, the
baseline here captures the same regime: a *closed* template language of
structural rearrangements searched directly (no component composition,
no conditionals, no loops, no extension hooks), which solves the
classical layout tasks instantly and fails on anything needing the
paper's extended predicates — the comparison §6.1.2 draws.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Any, Callable, List, Optional, Sequence, Tuple

from ..core.dsl import Example
from ..core.values import structurally_equal
from ..domains import tables as T


@dataclass(frozen=True)
class Template:
    """One parameterized structural transformation."""

    name: str
    fn: Callable[..., Any]
    param_grid: Tuple[Tuple[Any, ...], ...] = ()

    def instances(self):
        if not self.param_grid:
            yield self.name, self.fn
            return
        for combo in itertools.product(*self.param_grid):
            yield (
                f"{self.name}({', '.join(map(repr, combo))})",
                lambda t, c=combo: self.fn(t, *c),
            )


_SMALL = (0, 1, 2, -1)

_TEMPLATES: List[Template] = [
    Template("Identity", lambda t: T.as_table(t)),
    Template("Transpose", T.transpose),
    Template("DropRow", T.drop_row, ((0, 1, -1),)),
    Template("DropCol", T.drop_col, ((0, 1, -1),)),
    Template("SkipRows", T.skip_rows, ((1, 2),)),
    Template("TakeRows", T.take_rows, ((1, 2),)),
    Template("SortRowsBy", T.sort_rows_by, (_SMALL,)),
    Template("FilterRowsNonEmpty", T.filter_rows_nonempty, (_SMALL,)),
    Template("DeleteEmptyRows", T.delete_empty_rows),
]


@dataclass
class TableSynthResult:
    description: Optional[str]
    program: Optional[Callable[[Any], Any]]
    elapsed: float

    @property
    def solved(self) -> bool:
        return self.program is not None


def synthesize_table_transform(
    examples: Sequence[Example], max_depth: int = 2
) -> TableSynthResult:
    """Search compositions (≤ ``max_depth``) of the fixed templates."""
    start = time.monotonic()
    instances = [
        inst for template in _TEMPLATES for inst in template.instances()
    ]

    def consistent(fn: Callable[[Any], Any]) -> bool:
        for example in examples:
            try:
                actual = fn(example.args[0])
            except Exception:
                return False
            if not structurally_equal(actual, example.output):
                return False
        return True

    for depth in range(1, max_depth + 1):
        for chain in itertools.product(instances, repeat=depth):

            def composed(t, chain=chain):
                for _, fn in chain:
                    t = fn(t)
                return t

            if consistent(composed):
                description = " ∘ ".join(name for name, _ in reversed(chain))
                return TableSynthResult(
                    description, composed, time.monotonic() - start
                )
    return TableSynthResult(None, None, time.monotonic() - start)
