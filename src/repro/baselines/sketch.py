"""A Sketch-like baseline (§6).

Sketch is closed-source C++ (SAT-based); what the paper's comparison
isolates is the *search regime*: a domain-agnostic solver that (a) sees
all examples at once (no TDS iteration, no contexts/subexpressions from
a previous program) and (b) is guided only by types, not by the DSL
grammar. That regime is exactly our engine with the §6.3 ablations
applied simultaneously, so the baseline runs DBS once, from the trivial
context, over type-directed enumeration.

The paper reports Sketch finished none of the benchmarks within 10
minutes; this baseline reproduces the blow-up at proportionally smaller
budgets (see EXPERIMENTS.md).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..core.budget import Budget
from ..core.dbs import DbsOptions, dbs
from ..core.dsl import Dsl, Example, Signature
from ..core.expr import Expr


@dataclass
class SketchResult:
    program: Optional[Expr]
    elapsed: float
    expressions: int

    @property
    def solved(self) -> bool:
        return self.program is not None


def sketch_synthesize(
    signature: Signature,
    examples: Sequence[Example],
    dsl: Dsl,
    budget: Optional[Budget] = None,
) -> SketchResult:
    """One-shot, type-directed, whole-example-set synthesis."""
    start = time.monotonic()
    options = DbsOptions(
        use_dsl=False,           # types only, no grammar guidance
        enable_loops=False,      # no expert loop strategies
        enable_conditionals=True,  # Sketch does explore branching
        semantic_dedup=True,     # SAT solvers also dedup; keep it fair
    )
    result = dbs(
        contexts=[],             # trivial context only
        examples=list(examples),
        seeds=[],
        dsl=dsl,
        signature=signature,
        max_branches=3,
        budget=budget or Budget(max_seconds=30.0, max_expressions=300_000),
        options=options,
    )
    return SketchResult(
        program=result.program,
        elapsed=time.monotonic() - start,
        expressions=result.stats.expressions,
    )


def sketch_on_benchmarks(
    benchmarks,
    budget_seconds: float = 30.0,
) -> List[SketchResult]:
    """Run the baseline over a suite (used by the E1/E3 experiments)."""
    from ..domains.registry import get_domain
    from ..lasy.parser import parse_lasy
    from ..lasy.runner import _coerce_example

    out: List[SketchResult] = []
    for benchmark in benchmarks:
        program = parse_lasy(benchmark.source)
        domain = get_domain(benchmark.domain)
        dsl = domain.dsl()
        # Sketch gets the complete example set of the primary function.
        primary = program.declarations[-1]
        examples = [
            _coerce_example(domain, primary.signature, stmt)
            for stmt in program.examples
            if stmt.func_name == primary.name
        ]
        out.append(
            sketch_synthesize(
                primary.signature,
                examples,
                dsl,
                budget=Budget(max_seconds=budget_seconds),
            )
        )
    return out
