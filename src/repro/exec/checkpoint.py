"""Checkpoint/resume for experiment suites.

A long suite run that dies (OOM, SIGKILL, a pulled plug) should not
restart from zero. :class:`Journal` is an append-only JSONL file of
completed task results — one fsync'd record per task, written from
:func:`parallel_map`'s ``on_result`` hook the moment the task finishes —
and :func:`checkpointed_map` is the resumable map built on it: rerun
with ``resume=True`` and every journaled task is skipped, its result
restored, and its metrics snapshot re-merged into the process-global
registries, so the merged results and metrics of an interrupted+resumed
run match an uninterrupted one.

Records are keyed by caller-supplied strings (the experiment drivers
use ``"suite-{i}/{benchmark}"``), not positional indices, so a resumed
run tolerates reordering-free edits to the task list and a journal is
self-describing in logs. A record whose final line was torn by the kill
is dropped on load (everything before it was fsync'd and is intact).

Failures are *not* journaled: a task quarantined as a
:class:`~repro.exec.parallel.TaskFailure` gets retried from scratch on
resume — transient infrastructure trouble should not be sticky.
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..core import evaluator
from ..obs import metrics as obs_metrics
from .parallel import ParallelOutcome, TaskFailure, parallel_map

Encoder = Callable[[Any], Any]
Decoder = Callable[[Any], Any]


class Journal:
    """Append-only JSONL journal of completed task records."""

    def __init__(self, path: str, mode: str = "a"):
        self.path = path
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._file = open(path, mode, encoding="utf-8")

    def append(self, record: Dict[str, Any]) -> None:
        """Write one record durably (flush + fsync) so a SIGKILL at any
        later point cannot lose it."""
        self._file.write(json.dumps(record, default=str) + "\n")
        self._file.flush()
        os.fsync(self._file.fileno())

    def close(self) -> None:
        if not self._file.closed:
            self._file.close()

    def __enter__(self) -> "Journal":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False

    @staticmethod
    def scan(path: str) -> "tuple[List[Dict[str, Any]], int]":
        """``(records, valid_bytes)``: all intact records plus the byte
        offset past the last one. A torn *final* line (the write the
        kill interrupted) is excluded from both; corruption anywhere
        else is an error — that is not what an append-only crash leaves
        behind."""
        records: List[Dict[str, Any]] = []
        if not os.path.exists(path):
            return records, 0
        with open(path, "rb") as fh:
            raw = fh.read()
        valid_bytes = 0
        offset = 0
        lines = raw.split(b"\n")
        for lineno, bline in enumerate(lines):
            last = lineno == len(lines) - 1
            end = offset + len(bline) + (0 if last else 1)
            text = bline.decode("utf-8", errors="replace").strip()
            if text:
                try:
                    records.append(json.loads(text))
                except json.JSONDecodeError:
                    if last or all(not l.strip() for l in lines[lineno + 1:]):
                        break
                    raise ValueError(
                        f"{path}:{lineno + 1}: corrupt journal record"
                    ) from None
                valid_bytes = end
            offset = end
        return records, valid_bytes

    @staticmethod
    def load(path: str) -> List[Dict[str, Any]]:
        """All intact records (see :meth:`scan`)."""
        return Journal.scan(path)[0]


def checkpointed_map(
    fn: Callable[[Any], Any],
    items: Sequence[Any],
    keys: Sequence[str],
    journal_path: str,
    *,
    resume: bool = False,
    encode: Optional[Encoder] = None,
    decode: Optional[Decoder] = None,
    jobs: int = 1,
    **parallel_kwargs: Any,
) -> ParallelOutcome:
    """:func:`parallel_map` with a completed-task journal.

    ``keys`` names each item (same length as ``items``, unique).
    ``encode``/``decode`` convert task results to/from JSON-able form
    for the journal (default: identity — results must then be JSON-able
    themselves).

    With ``resume=False`` any existing journal is truncated and the map
    runs in full. With ``resume=True`` journaled tasks are skipped:
    their decoded results land in order in ``ParallelOutcome.results``
    and their journaled metrics snapshots are re-merged into the
    process-global registries exactly as a live worker's would be, so
    downstream metrics reports match an uninterrupted run.
    """
    items = list(items)
    keys = list(keys)
    if len(keys) != len(items):
        raise ValueError("keys and items must have the same length")
    if len(set(keys)) != len(keys):
        raise ValueError("journal keys must be unique")
    encode = encode or (lambda value: value)
    decode = decode or (lambda value: value)

    done: Dict[str, Dict[str, Any]] = {}
    if resume:
        records, valid_bytes = Journal.scan(journal_path)
        if os.path.exists(journal_path):
            # Drop the torn tail so the records appended below keep the
            # journal parseable end to end.
            with open(journal_path, "rb+") as fh:
                fh.truncate(valid_bytes)
        by_key = {r["key"]: r for r in records if "key" in r}
        done = {key: by_key[key] for key in keys if key in by_key}
        for record in done.values():
            snaps = record.get("metrics")
            if snaps:
                evaluator.METRICS.merge(snaps.get("evaluator", {}))
                obs_metrics.GLOBAL.merge(snaps.get("global", {}))

    remaining = [
        (index, item)
        for index, item in enumerate(items)
        if keys[index] not in done
    ]
    remaining_items = [item for _i, item in remaining]
    caller_hook = parallel_kwargs.pop("on_result", None)

    with Journal(journal_path, mode="a" if resume else "w") as journal:

        def on_result(sub_index: int, result: Any, snapshots) -> None:
            index = remaining[sub_index][0]
            journal.append(
                {
                    "key": keys[index],
                    "result": encode(result),
                    "metrics": snapshots,
                }
            )
            if caller_hook is not None:
                caller_hook(index, result, snapshots)

        outcome = parallel_map(
            fn,
            remaining_items,
            jobs=jobs,
            on_result=on_result,
            **parallel_kwargs,
        )

    results: List[Any] = [None] * len(items)
    for index, key in enumerate(keys):
        if key in done:
            results[index] = decode(done[key]["result"])
    failures: List[TaskFailure] = []
    for sub_index, (index, _item) in enumerate(remaining):
        value = outcome.results[sub_index]
        if isinstance(value, TaskFailure):
            value = TaskFailure(
                index, value.kind, value.message, value.attempts
            )
            failures.append(value)
        results[index] = value
    return ParallelOutcome(
        results=results,
        jobs_used=outcome.jobs_used,
        shards=outcome.shards,
        task_metrics=outcome.task_metrics,
        failures=failures,
    )
