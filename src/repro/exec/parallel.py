"""A process-pool ``parallel_map`` with observability merge-back.

Suite tasks are embarrassingly parallel — each benchmark is an
independent synthesis — but the stack's observability is process-local:
the evaluator counts runs in a process-global registry and tracers are
single-threaded streams. This module makes fan-out safe on both fronts:

* **metrics** — each worker zeroes the process-global registries before
  a task (a forked child inherits the parent's totals) and ships the
  task's own snapshot back with the result; the parent absorbs them via
  :meth:`~repro.obs.metrics.Registry.merge`, which keeps merged counts
  out of the parent's local delta-attribution.
* **traces** — each worker process opens its own ``JsonlTracer`` shard
  (``{base}.worker-{pid}.jsonl``, the sharding model ``obs/trace.py``
  anticipates) and flushes it after every task; the parent splices the
  shards into its own stream with
  :meth:`~repro.obs.trace.JsonlTracer.absorb_shard`.

Fallback is graceful: ``jobs <= 1``, a single item, or an infrastructure
failure (unpicklable work, a broken pool) degrades to a plain serial
loop with identical results and in-process metrics/tracing.

Engine state crosses the process boundary gracefully too: a
:class:`~repro.core.tds.TdsSession` drops its persistent synthesis
engine (warm pool, compiled closures) on pickling and rebuilds it cold
in the worker — shipping a session costs warm-start reuse, never
correctness.
"""

from __future__ import annotations

import glob
import os
import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence

from ..core import evaluator
from ..obs import metrics as obs_metrics
from ..obs.trace import JsonlTracer, get_tracer, set_tracer

TaskFn = Callable[[Any], Any]


@dataclass
class ParallelOutcome:
    """What a :func:`parallel_map` produced.

    ``results`` is ordered like the input items. ``jobs_used`` is the
    actual degree of parallelism (1 after a serial fallback).
    ``shards`` lists the worker trace-shard paths (kept only when
    ``keep_shards``); ``task_metrics`` the per-task registry snapshots
    that were merged back (empty on the serial path, where metrics
    accumulate in-process as usual).
    """

    results: List[Any]
    jobs_used: int
    shards: List[str] = field(default_factory=list)
    task_metrics: List[Dict[str, Any]] = field(default_factory=list)


# -- worker side ------------------------------------------------------

_WORKER_TRACER: Optional[JsonlTracer] = None


def _worker_init(trace_base: Optional[str], eval_mode: str) -> None:
    """Per-worker-process setup: eval engine + trace shard."""
    global _WORKER_TRACER
    evaluator.set_eval_mode(eval_mode)
    if trace_base:
        path = f"{trace_base}.worker-{os.getpid()}.jsonl"
        _WORKER_TRACER = JsonlTracer(path)
        set_tracer(_WORKER_TRACER)


def _run_task(payload: Any) -> Any:
    """Run one task; return ``(result, registry snapshots)``.

    The process-global registries are zeroed first so the snapshot holds
    exactly this task's work — a forked worker starts with the parent's
    totals already in them, and a long-lived worker accumulates across
    tasks.
    """
    fn, item = payload
    evaluator.METRICS.reset()
    obs_metrics.GLOBAL.reset()
    try:
        result = fn(item)
    finally:
        tracer = get_tracer()
        if isinstance(tracer, JsonlTracer):
            tracer.flush()
    snapshots = {
        "evaluator": evaluator.METRICS.snapshot(),
        "global": obs_metrics.GLOBAL.snapshot(),
    }
    return result, snapshots


# -- parent side ------------------------------------------------------


def _serial(fn: TaskFn, items: Sequence[Any]) -> ParallelOutcome:
    return ParallelOutcome(results=[fn(item) for item in items], jobs_used=1)


def parallel_map(
    fn: TaskFn,
    items: Iterable[Any],
    jobs: int = 1,
    *,
    trace_base: Optional[str] = None,
    keep_shards: bool = False,
) -> ParallelOutcome:
    """Apply ``fn`` to every item across ``jobs`` worker processes.

    ``fn`` must be picklable (a module-level function or a
    ``functools.partial`` over one) and so must the items and results.
    When that fails — or the pool itself does — the whole map silently
    degrades to a serial loop, so callers can pass ``--jobs`` through
    unconditionally.

    ``trace_base`` (typically the experiment's ``--trace`` path) enables
    per-worker trace shards; they are spliced into the parent's
    currently installed ``JsonlTracer`` and deleted unless
    ``keep_shards``. Worker evaluator metrics are merged into this
    process's registries either way.
    """
    items = list(items)
    if jobs <= 1 or len(items) <= 1:
        return _serial(fn, items)

    try:
        # Local functions/lambdas raise AttributeError (not
        # PicklingError) from the pool's feeder thread, which can leave
        # the pool wedged — probe up front instead.
        pickle.dumps((fn, items[0]))
    except Exception:
        return _serial(fn, items)

    payloads = [(fn, item) for item in items]
    jobs_used = min(jobs, len(items))
    try:
        with ProcessPoolExecutor(
            max_workers=jobs_used,
            initializer=_worker_init,
            initargs=(trace_base, evaluator.get_eval_mode()),
        ) as pool:
            # list() drains inside the with-block; shutdown(wait=True)
            # then guarantees worker exit (and shard flush) before the
            # parent reads the shard files.
            outcomes = list(pool.map(_run_task, payloads))
    except (pickle.PicklingError, BrokenProcessPool, OSError):
        return _serial(fn, items)

    results = []
    task_metrics = []
    for result, snapshots in outcomes:
        results.append(result)
        task_metrics.append(snapshots)
        evaluator.METRICS.merge(snapshots["evaluator"])
        obs_metrics.GLOBAL.merge(snapshots["global"])

    shards: List[str] = []
    if trace_base:
        shards = sorted(glob.glob(f"{trace_base}.worker-*.jsonl"))
        tracer = get_tracer()
        if isinstance(tracer, JsonlTracer):
            for shard in shards:
                worker = os.path.basename(shard)
                tracer.absorb_shard(shard, worker=worker)
        if not keep_shards:
            for shard in shards:
                os.remove(shard)
            shards = []
    return ParallelOutcome(
        results=results,
        jobs_used=jobs_used,
        shards=shards,
        task_metrics=task_metrics,
    )
