"""A fault-tolerant process-pool ``parallel_map`` with observability
merge-back.

Suite tasks are embarrassingly parallel — each benchmark is an
independent synthesis — but the stack's observability is process-local
and real fleets lose workers. This module makes fan-out safe on three
fronts:

* **metrics** — each worker zeroes the process-global registries before
  a task (a forked child inherits the parent's totals) and ships the
  task's own snapshot back with the result; the parent absorbs them via
  :meth:`~repro.obs.metrics.Registry.merge`, which keeps merged counts
  out of the parent's local delta-attribution.
* **traces** — each worker process opens its own ``JsonlTracer`` shard
  (``{base}.worker-{pid}.jsonl``, the sharding model ``obs/trace.py``
  anticipates) and flushes it after every task; the parent splices the
  shards into its own stream with
  :meth:`~repro.obs.trace.JsonlTracer.absorb_shard`.
* **faults** — the parent runs its own scheduler over raw
  ``multiprocessing`` workers instead of a ``ProcessPoolExecutor``, so
  it can *observe* worker death (process sentinels), *kill* workers
  stuck past a per-task timeout, and *retry* the affected task on a
  fresh worker with exponential backoff (:class:`RetryPolicy`). A task
  that keeps killing workers is quarantined after the attempt budget:
  its slot in the results holds a :class:`TaskFailure` instead of
  poisoning the whole map. ``exec.*`` counters (retries, quarantines,
  worker crashes/restarts, task timeouts) land in the global metrics
  registry and in an ``exec.metrics`` trace event.

Fallback is graceful: ``jobs <= 1``, a single item, or an infrastructure
failure (unpicklable work, spawn failure) degrades to a plain serial
loop with identical results and in-process metrics/tracing. The serial
path still honors injected :class:`~repro.exec.faults.SimulatedCrash`
faults through the same retry/quarantine policy.

Engine state crosses the process boundary gracefully too: a
:class:`~repro.core.tds.TdsSession` drops its persistent synthesis
engine (warm pool, compiled closures) on pickling and rebuilds it cold
in the worker — shipping a session costs warm-start reuse, never
correctness.
"""

from __future__ import annotations

import glob
import multiprocessing
import os
import pickle
import time
from collections import deque
from dataclasses import dataclass, field
from multiprocessing.connection import wait as connection_wait
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
)

from ..core import evaluator
from ..obs import metrics as obs_metrics
from ..obs.metrics import Registry
from ..obs.trace import JsonlTracer, get_tracer, set_tracer
from .faults import FaultPlan, SimulatedCrash

TaskFn = Callable[[Any], Any]
# on_result(index, result, snapshots_or_None) — called as each task
# completes (in completion order), before the map returns. The
# checkpoint journal hangs off this.
ResultHook = Callable[[int, Any, Optional[Dict[str, Any]]], None]


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded retry with exponential backoff and deterministic jitter.

    ``max_attempts`` counts total tries (first run + retries). The
    jitter is a hash of ``(task_index, attempt)`` — not randomness — so
    a rerun of the same suite backs off identically.
    """

    max_attempts: int = 3
    base_delay: float = 0.05
    max_delay: float = 2.0
    jitter: float = 0.25

    def delay(self, task_index: int, attempt: int) -> float:
        raw = min(self.max_delay, self.base_delay * (2 ** max(0, attempt - 1)))
        h = ((task_index * 1_000_003) ^ (attempt * 8191)) & 0xFFFF
        return raw * (1.0 + self.jitter * (h / 0xFFFF))


@dataclass
class TaskFailure:
    """A quarantined task's slot in the results list.

    ``kind`` is ``"crash"`` (the worker process died mid-task) or
    ``"timeout"`` (the task exceeded ``task_timeout_s`` and its worker
    was killed). Ordinary Python exceptions raised by ``fn`` are *not*
    converted — they propagate out of :func:`parallel_map` as always.
    """

    index: int
    kind: str
    message: str
    attempts: int

    def __bool__(self) -> bool:  # quarantined slots are falsy results
        return False


@dataclass
class ParallelOutcome:
    """What a :func:`parallel_map` produced.

    ``results`` is ordered like the input items; quarantined slots hold
    :class:`TaskFailure`. ``jobs_used`` is the actual degree of
    parallelism (1 after a serial fallback). ``shards`` lists the worker
    trace-shard paths (kept only when ``keep_shards``); ``task_metrics``
    the per-task registry snapshots that were merged back (empty on the
    serial path, where metrics accumulate in-process as usual).
    """

    results: List[Any]
    jobs_used: int
    shards: List[str] = field(default_factory=list)
    task_metrics: List[Dict[str, Any]] = field(default_factory=list)
    failures: List[TaskFailure] = field(default_factory=list)


# -- worker side ------------------------------------------------------


def _ship_exception(exc: BaseException) -> BaseException:
    """The exception as it should cross the pipe (picklable or a
    stand-in that is)."""
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return RuntimeError(f"{type(exc).__name__}: {exc}")


def _worker_main(
    conn,
    trace_base: Optional[str],
    eval_mode: str,
    faults_spec: str,
    profile_hz: float = 0.0,
) -> None:
    """Worker loop: receive ``(index, attempt, fn, item)``, reply
    ``(index, status, payload, snapshots)``; exit on ``None`` or EOF.

    ``profile_hz`` > 0 runs a fresh sampling profiler around each task,
    emitting its ``profile.samples`` event into the worker's trace
    shard after the task — the parent's shard splicing tags it with the
    worker id, so merged reports attribute samples per worker."""
    # Work dispatched from inside a worker must never fan out again
    # (e.g. a suite task running a synthesis while REPRO_DBS_JOBS asks
    # for sharded enumeration): one flat level of parallelism.
    os.environ["REPRO_IN_WORKER"] = "1"
    faults = FaultPlan.parse(faults_spec) if faults_spec else None
    evaluator.set_eval_mode(eval_mode)
    tracer: Optional[JsonlTracer] = None
    if trace_base:
        path = f"{trace_base}.worker-{os.getpid()}.jsonl"
        tracer = JsonlTracer(path)
        set_tracer(tracer)
    profiling = bool(profile_hz) and tracer is not None
    if profiling:
        from ..obs.profile import SamplingProfiler
    while True:
        try:
            message = conn.recv()
        except (EOFError, OSError):
            break
        if message is None:
            break
        index, attempt, fn, item = message
        if faults is not None:
            # May os._exit (crash) or sleep past the task deadline
            # (hang) — exactly the failures the parent must survive.
            faults.inject(index, attempt, process_level=True)
        # Zero the process-global registries: the fork inherited the
        # parent's totals, and a long-lived worker accumulates across
        # tasks — the snapshot must hold exactly this task's work.
        evaluator.METRICS.reset()
        obs_metrics.GLOBAL.reset()
        profiler = SamplingProfiler(hz=profile_hz).start() if profiling else None
        try:
            result = fn(item)
        except BaseException as exc:
            if profiler is not None:
                profiler.stop().emit(tracer)
            if tracer is not None:
                tracer.flush()
            conn.send((index, "error", _ship_exception(exc), None))
            continue
        if profiler is not None:
            profiler.stop().emit(tracer)
        if tracer is not None:
            tracer.flush()
        snapshots = {
            "evaluator": evaluator.METRICS.snapshot(),
            "global": obs_metrics.GLOBAL.snapshot(),
        }
        try:
            conn.send((index, "ok", result, snapshots))
        except Exception as exc:
            conn.send(
                (
                    index,
                    "error",
                    RuntimeError(f"unpicklable task result: {exc!r}"),
                    None,
                )
            )
    if tracer is not None:
        tracer.close()


# -- parent side ------------------------------------------------------


@dataclass
class _Task:
    index: int
    item: Any
    attempts: int = 0  # completed attempts so far
    ready_at: float = 0.0  # monotonic backoff gate


class _Worker:
    __slots__ = ("proc", "conn", "task", "deadline")

    def __init__(self, proc, conn):
        self.proc = proc
        self.conn = conn
        self.task: Optional[_Task] = None
        self.deadline: Optional[float] = None


def _spawn_worker(ctx, worker_args) -> _Worker:
    parent_conn, child_conn = ctx.Pipe(duplex=True)
    proc = ctx.Process(
        target=_worker_main, args=(child_conn, *worker_args), daemon=True
    )
    proc.start()
    child_conn.close()
    return _Worker(proc, parent_conn)


def _shutdown_worker(worker: _Worker, kill: bool = False) -> None:
    try:
        if kill:
            worker.proc.kill()
        else:
            try:
                worker.conn.send(None)
            except (OSError, ValueError, BrokenPipeError):
                pass
        worker.proc.join(timeout=5.0)
        if worker.proc.is_alive():
            worker.proc.kill()
            worker.proc.join(timeout=5.0)
    finally:
        try:
            worker.conn.close()
        except OSError:
            pass


def _registry_delta(before: Dict, after: Dict) -> Dict:
    """``after - before`` over two :meth:`Registry.snapshot` dicts
    (counters and histogram count/total subtract; gauges and min/max
    take the after value; zero-delta counters are dropped)."""
    out: Dict[str, Any] = {}
    for name, snap in after.items():
        prev = before.get(name, {})
        kind = snap.get("type")
        if kind == "counter":
            value = snap.get("value", 0) - prev.get("value", 0)
            labels = {}
            prev_labels = prev.get("labels", {})
            for key, v in snap.get("labels", {}).items():
                d = v - prev_labels.get(key, 0)
                if d:
                    labels[key] = d
            if value or labels:
                entry: Dict[str, Any] = {"type": "counter", "value": value}
                if labels:
                    entry["labels"] = labels
                out[name] = entry
        elif kind == "gauge":
            out[name] = snap
        elif kind == "histogram":
            count = snap.get("count", 0) - prev.get("count", 0)
            if count:
                out[name] = {
                    "type": "histogram",
                    "count": count,
                    "total": snap.get("total", 0.0) - prev.get("total", 0.0),
                    "min": snap.get("min"),
                    "max": snap.get("max"),
                }
    return out


def _serial(
    fn: TaskFn,
    items: Sequence[Any],
    faults: Optional[FaultPlan],
    retry: RetryPolicy,
    on_result: Optional[ResultHook],
    exec_reg: Registry,
) -> ParallelOutcome:
    """The in-process path. Injected :class:`SimulatedCrash` faults go
    through the same retry/quarantine policy as worker deaths; ordinary
    exceptions propagate. When ``on_result`` is set, per-task snapshot
    deltas of the process-global registries are passed to it (so a
    checkpoint journal can replay them on resume)."""
    results: List[Any] = []
    failures: List[TaskFailure] = []
    for index, item in enumerate(items):
        attempt = 0
        while True:
            before = None
            if on_result is not None:
                before = (
                    evaluator.METRICS.snapshot(),
                    obs_metrics.GLOBAL.snapshot(),
                )
            try:
                if faults is not None:
                    faults.inject(index, attempt, process_level=False)
                result = fn(item)
            except SimulatedCrash as exc:
                attempt += 1
                exec_reg.counter("exec.worker_crashes").value += 1
                if attempt >= retry.max_attempts:
                    failure = TaskFailure(index, "crash", str(exc), attempt)
                    failures.append(failure)
                    results.append(failure)
                    exec_reg.counter("exec.quarantined").inc(1, kind="crash")
                    break
                exec_reg.counter("exec.retries").inc(1, kind="crash")
                time.sleep(retry.delay(index, attempt))
                continue
            exec_reg.counter("exec.tasks").value += 1
            results.append(result)
            if on_result is not None:
                snapshots = {
                    "evaluator": _registry_delta(
                        before[0], evaluator.METRICS.snapshot()
                    ),
                    "global": _registry_delta(
                        before[1], obs_metrics.GLOBAL.snapshot()
                    ),
                }
                on_result(index, result, snapshots)
            break
    return ParallelOutcome(results=results, jobs_used=1, failures=failures)


def parallel_map(
    fn: TaskFn,
    items: Iterable[Any],
    jobs: int = 1,
    *,
    trace_base: Optional[str] = None,
    keep_shards: bool = False,
    task_timeout_s: Optional[float] = None,
    retry: Optional[RetryPolicy] = None,
    faults: Optional[FaultPlan] = None,
    on_result: Optional[ResultHook] = None,
    profile_hz: Optional[float] = None,
) -> ParallelOutcome:
    """Apply ``fn`` to every item across ``jobs`` worker processes.

    ``fn`` must be picklable (a module-level function or a
    ``functools.partial`` over one) and so must the items and results.
    When that fails — or spawning workers does — the whole map silently
    degrades to a serial loop, so callers can pass ``--jobs`` through
    unconditionally.

    Robustness: a worker that dies mid-task (crash, OOM-kill) or runs
    past ``task_timeout_s`` (killed by the parent) is replaced, and the
    task retried on the fresh worker under ``retry`` (exponential
    backoff, deterministic jitter). After ``retry.max_attempts`` the
    task is quarantined as a :class:`TaskFailure` in its results slot.
    Exceptions *raised* by ``fn`` are not retried — they propagate,
    matching the serial path. ``faults`` (default: parsed from the
    ``REPRO_FAULTS`` env var) injects deterministic crash/hang/slow
    faults for testing; see :mod:`repro.exec.faults`.

    ``trace_base`` (typically the experiment's ``--trace`` path) enables
    per-worker trace shards; they are spliced into the parent's
    currently installed ``JsonlTracer`` and deleted unless
    ``keep_shards``. Worker evaluator metrics are merged into this
    process's registries either way, and ``exec.*`` fault counters are
    published to the global registry plus an ``exec.metrics`` trace
    event.
    """
    items = list(items)
    retry = retry or RetryPolicy()
    if faults is None:
        faults = FaultPlan.from_env()
    exec_reg = Registry()

    def publish(outcome: ParallelOutcome) -> ParallelOutcome:
        snapshot = exec_reg.snapshot()
        if snapshot:
            obs_metrics.GLOBAL.merge(snapshot)
            tracer = get_tracer()
            if tracer.enabled:
                tracer.event("exec.metrics", metrics=snapshot)
        return outcome

    if jobs <= 1 or len(items) <= 1:
        return publish(
            _serial(fn, items, faults, retry, on_result, exec_reg)
        )

    try:
        # Local functions/lambdas raise AttributeError (not
        # PicklingError) when first shipped, which would surface as a
        # spurious worker "crash" — probe up front instead.
        pickle.dumps((fn, items[0]))
    except Exception:
        return publish(
            _serial(fn, items, faults, retry, on_result, exec_reg)
        )

    jobs_used = min(jobs, len(items))
    ctx = multiprocessing.get_context()
    worker_args = (
        trace_base,
        evaluator.get_eval_mode(),
        faults.spec if faults is not None else "",
        profile_hz or 0.0,
    )
    try:
        workers = [_spawn_worker(ctx, worker_args) for _ in range(jobs_used)]
    except OSError:
        return publish(
            _serial(fn, items, faults, retry, on_result, exec_reg)
        )

    n = len(items)
    results: List[Any] = [None] * n
    snapshots_by_index: List[Optional[Dict[str, Any]]] = [None] * n
    failures: List[TaskFailure] = []
    pending = deque(_Task(i, item) for i, item in enumerate(items))
    completed = 0
    error: Optional[BaseException] = None

    def record_ok(task: _Task, result: Any, snaps) -> None:
        nonlocal completed
        results[task.index] = result
        snapshots_by_index[task.index] = snaps
        completed += 1
        exec_reg.counter("exec.tasks").value += 1
        if on_result is not None:
            on_result(task.index, result, snaps)

    def record_failed_attempt(task: _Task, kind: str, message: str) -> None:
        nonlocal completed
        task.attempts += 1
        if kind == "crash":
            exec_reg.counter("exec.worker_crashes").value += 1
        else:
            exec_reg.counter("exec.task_timeouts").value += 1
        if task.attempts >= retry.max_attempts:
            failure = TaskFailure(task.index, kind, message, task.attempts)
            failures.append(failure)
            results[task.index] = failure
            completed += 1
            exec_reg.counter("exec.quarantined").inc(1, kind=kind)
        else:
            exec_reg.counter("exec.retries").inc(1, kind=kind)
            task.ready_at = time.monotonic() + retry.delay(
                task.index, task.attempts
            )
            pending.append(task)

    def replace_worker(slot: int, kill: bool) -> None:
        _shutdown_worker(workers[slot], kill=kill)
        workers[slot] = _spawn_worker(ctx, worker_args)
        exec_reg.counter("exec.worker_restarts").value += 1

    def handle_message(slot: int, message) -> None:
        worker = workers[slot]
        task = worker.task
        worker.task = None
        worker.deadline = None
        _index, status, payload, snaps = message
        if status == "ok":
            record_ok(task, payload, snaps)
        elif isinstance(payload, SimulatedCrash):
            # Serial-style injected crash leaked from fn itself: treat
            # like a worker death (retryable).
            record_failed_attempt(task, "crash", str(payload))
        else:
            nonlocal error
            if error is None:
                error = payload

    try:
        while completed < n and error is None:
            now = time.monotonic()
            # Assign ready tasks to idle workers.
            for slot, worker in enumerate(workers):
                if worker.task is not None or not pending:
                    continue
                if pending[0].ready_at > now:
                    # Backoff order == FIFO order (delays are
                    # monotone in attempts per task; close enough —
                    # rotate to find a ready one).
                    ready_index = next(
                        (
                            k
                            for k, t in enumerate(pending)
                            if t.ready_at <= now
                        ),
                        None,
                    )
                    if ready_index is None:
                        break
                    pending.rotate(-ready_index)
                task = pending.popleft()
                worker.task = task
                worker.deadline = (
                    now + task_timeout_s if task_timeout_s else None
                )
                try:
                    worker.conn.send((task.index, task.attempts, fn, task.item))
                except (OSError, ValueError, BrokenPipeError) as exc:
                    # The worker died before we could feed it.
                    worker.task = None
                    record_failed_attempt(task, "crash", f"send failed: {exc!r}")
                    replace_worker(slot, kill=True)

            busy = [
                (slot, w) for slot, w in enumerate(workers) if w.task is not None
            ]
            if not busy:
                if completed >= n:
                    break
                # Everything is backing off; sleep until the earliest gate.
                gates = [t.ready_at for t in pending]
                if not gates:
                    break  # defensive: nothing busy, nothing pending
                time.sleep(max(0.0, min(gates) - time.monotonic()) + 0.001)
                continue

            wait_for: List[Any] = []
            for _slot, worker in busy:
                wait_for.append(worker.conn)
                wait_for.append(worker.proc.sentinel)
            timeout = None
            deadlines = [w.deadline for _s, w in busy if w.deadline is not None]
            if deadlines:
                timeout = max(0.0, min(deadlines) - time.monotonic())
            gates = [t.ready_at for t in pending if t.ready_at > now]
            if gates and pending:
                gate = max(0.0, min(gates) - time.monotonic())
                timeout = gate if timeout is None else min(timeout, gate)
            ready = connection_wait(wait_for, timeout=timeout)
            ready_set = set(ready)

            now = time.monotonic()
            for slot, worker in busy:
                if worker.task is None:
                    continue
                if worker.conn in ready_set or worker.conn.poll():
                    try:
                        message = worker.conn.recv()
                    except (EOFError, OSError):
                        task = worker.task
                        worker.task = None
                        record_failed_attempt(
                            task, "crash", "worker pipe closed mid-task"
                        )
                        replace_worker(slot, kill=True)
                    else:
                        handle_message(slot, message)
                elif worker.proc.sentinel in ready_set:
                    task = worker.task
                    worker.task = None
                    code = worker.proc.exitcode
                    record_failed_attempt(
                        task, "crash", f"worker died (exit code {code})"
                    )
                    replace_worker(slot, kill=True)
                elif worker.deadline is not None and now >= worker.deadline:
                    task = worker.task
                    worker.task = None
                    record_failed_attempt(
                        task,
                        "timeout",
                        f"task exceeded {task_timeout_s}s; worker killed",
                    )
                    replace_worker(slot, kill=True)
    finally:
        for worker in workers:
            _shutdown_worker(worker, kill=worker.task is not None)

    if error is not None:
        _cleanup_shards(trace_base)
        raise error

    task_metrics: List[Dict[str, Any]] = []
    for snaps in snapshots_by_index:
        if snaps is None:
            continue
        task_metrics.append(snaps)
        evaluator.METRICS.merge(snaps["evaluator"])
        obs_metrics.GLOBAL.merge(snaps["global"])

    shards: List[str] = []
    if trace_base:
        shards = sorted(glob.glob(f"{trace_base}.worker-*.jsonl"))
        tracer = get_tracer()
        if isinstance(tracer, JsonlTracer):
            for shard in shards:
                worker_name = os.path.basename(shard)
                tracer.absorb_shard(shard, worker=worker_name)
        if not keep_shards:
            for shard in shards:
                os.remove(shard)
            shards = []
    return publish(
        ParallelOutcome(
            results=results,
            jobs_used=jobs_used,
            shards=shards,
            task_metrics=task_metrics,
            failures=failures,
        )
    )


def _cleanup_shards(trace_base: Optional[str]) -> None:
    if not trace_base:
        return
    for shard in glob.glob(f"{trace_base}.worker-*.jsonl"):
        try:
            os.remove(shard)
        except OSError:
            pass


class ShardWorkerPoolError(RuntimeError):
    """The shard pool lost a slot for good (retry budget exhausted,
    respawn failure, or a collective timeout)."""


class ShardWorkerPool:
    """A long-lived, slot-affine worker fleet for intra-run DBS sharding.

    Same worker protocol and fault posture as :func:`parallel_map` —
    the *identical* ``_worker_main`` loop, daemon processes, crash
    detection via pipe EOF and process sentinels, bounded retries with
    deterministic backoff, fault injection keyed by ``(slot, attempt)``
    so ``REPRO_FAULTS=crash:0@0`` kills shard slot 0's first attempt
    and nothing else — but with two differences that sharding needs:

    * **slot affinity**: worker *k* always runs shard *k*'s task, so it
      can keep a replicated pool in memory across generations and be
      synced with deltas; a crashed slot is respawned in place and its
      task re-sent through the ``rebuild`` callback (which ships a full
      snapshot to the fresh, replica-less process);
    * **all-or-nothing rounds**: :meth:`run` dispatches exactly one task
      per slot and returns only when every slot has answered. Any
      unrecoverable slot raises, because a generation with a missing
      shard cannot be merged — the caller falls back to serial
      enumeration with the parent pool untouched.

    Per-task metrics snapshots merge back into the process-global
    registries exactly as in :func:`parallel_map`; ``exec.*`` crash,
    retry, and restart counters land in the global registry too. Trace
    shards stay on disk across the pool's life (workers flush per task)
    and are listed by :meth:`shard_paths` for the owner to absorb at
    close.
    """

    def __init__(
        self,
        jobs: int,
        *,
        trace_base: Optional[str] = None,
        retry: Optional[RetryPolicy] = None,
        faults: Optional[FaultPlan] = None,
    ):
        self.jobs = jobs
        self.retry = retry or RetryPolicy()
        self.trace_base = trace_base
        self._faults = faults if faults is not None else FaultPlan.from_env()
        self._ctx = multiprocessing.get_context()
        self._worker_args = (
            trace_base,
            evaluator.get_eval_mode(),
            self._faults.spec if self._faults is not None else "",
            0.0,
        )
        self._workers: List[Optional[_Worker]] = [
            _spawn_worker(self._ctx, self._worker_args) for _ in range(jobs)
        ]
        self._closed = False
        # (fn, items) of a round started but not yet collected; lets the
        # owner overlap its own work with worker compute (see start).
        self._pending: Optional[Tuple[TaskFn, List[Any]]] = None

    def run(
        self,
        fn: TaskFn,
        items: Sequence[Any],
        rebuild: Optional[Callable[[int, int], Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> List[Any]:
        """One task per slot; returns per-slot results in slot order.

        ``rebuild(slot, attempt)`` supplies the payload for a retry
        after slot death (the replacement process holds no replica, so
        retries generally need a fuller payload than the original).
        ``timeout_s`` bounds the whole round; on expiry every busy slot
        is killed and respawned and the round fails."""
        self.start(fn, items)
        return self.finish(rebuild=rebuild, timeout_s=timeout_s)

    def start(self, fn: TaskFn, items: Sequence[Any]) -> None:
        """Dispatch one task per slot without waiting for results.

        The pipe is the queue: the caller can do its own work — or even
        ``start`` nothing else, just delay the collection — while every
        worker crunches, then :meth:`finish` the round. Exactly one
        round may be in flight."""
        if self._closed:
            raise ShardWorkerPoolError("pool is closed")
        if self._pending is not None:
            raise ShardWorkerPoolError("a round is already in flight")
        if len(items) != self.jobs:
            raise ValueError(f"expected {self.jobs} items, got {len(items)}")
        sent: List[Any] = list(items)
        for slot in range(self.jobs):
            worker = self._workers[slot]
            assert worker is not None
            try:
                worker.conn.send((slot, 0, fn, sent[slot]))
            except (OSError, ValueError):
                # A dead pipe at send time is recoverable: finish()'s
                # sentinel wait sees the corpse and retries the slot.
                pass
        self._pending = (fn, sent)

    def finish(
        self,
        rebuild: Optional[Callable[[int, int], Any]] = None,
        timeout_s: Optional[float] = None,
    ) -> List[Any]:
        """Collect the in-flight round started by :meth:`start`.

        ``timeout_s`` is measured from this call — time the caller
        spent working between ``start`` and ``finish`` is the overlap
        being bought, not part of the round's budget."""
        if self._pending is None:
            raise ShardWorkerPoolError("no round in flight")
        fn, items = self._pending
        exec_reg = Registry()
        c_retries = exec_reg.counter("exec.retries")
        c_crashes = exec_reg.counter("exec.worker_crashes")
        c_restarts = exec_reg.counter("exec.worker_restarts")
        results: List[Any] = [None] * self.jobs
        attempts = [0] * self.jobs
        outstanding = set(range(self.jobs))
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        error: Optional[BaseException] = None

        def dispatch(slot: int) -> None:
            worker = self._workers[slot]
            assert worker is not None
            payload = items[slot]
            if attempts[slot] > 0 and rebuild is not None:
                payload = rebuild(slot, attempts[slot])
            worker.conn.send((slot, attempts[slot], fn, payload))

        def respawn(slot: int, kill: bool) -> None:
            worker = self._workers[slot]
            if worker is not None:
                _shutdown_worker(worker, kill=kill)
            self._workers[slot] = _spawn_worker(self._ctx, self._worker_args)
            c_restarts.value += 1

        def crashed(slot: int, message: str) -> None:
            c_crashes.value += 1
            attempts[slot] += 1
            if attempts[slot] >= self.retry.max_attempts:
                raise ShardWorkerPoolError(
                    f"shard slot {slot} failed after "
                    f"{attempts[slot]} attempts: {message}"
                )
            c_retries.value += 1
            respawn(slot, kill=True)
            time.sleep(self.retry.delay(slot, attempts[slot]))
            dispatch(slot)

        try:
            while outstanding:
                wait_for: List[Any] = []
                for slot in outstanding:
                    worker = self._workers[slot]
                    assert worker is not None
                    wait_for.append(worker.conn)
                    wait_for.append(worker.proc.sentinel)
                timeout = None
                if deadline is not None:
                    timeout = max(0.0, deadline - time.monotonic())
                ready = set(connection_wait(wait_for, timeout=timeout))
                if not ready:
                    if deadline is not None and time.monotonic() >= deadline:
                        raise ShardWorkerPoolError(
                            f"shard round exceeded {timeout_s}s"
                        )
                    continue
                for slot in sorted(outstanding):
                    worker = self._workers[slot]
                    assert worker is not None
                    if worker.conn in ready or worker.conn.poll():
                        try:
                            message = worker.conn.recv()
                        except (EOFError, OSError):
                            crashed(slot, "worker pipe closed mid-task")
                            continue
                        _idx, status, payload, snapshots = message
                        if status == "ok":
                            results[slot] = payload
                            outstanding.discard(slot)
                            if snapshots:
                                evaluator.METRICS.merge(snapshots["evaluator"])
                                obs_metrics.GLOBAL.merge(snapshots["global"])
                        elif isinstance(payload, SimulatedCrash):
                            # Process-level injections os._exit before
                            # replying; a task-level crash arrives here
                            # and retries through the same path.
                            crashed(slot, f"injected fault: {payload}")
                        else:
                            raise payload
                    elif worker.proc.sentinel in ready:
                        code = worker.proc.exitcode
                        crashed(slot, f"worker died (exit code {code})")
        except BaseException as exc:
            error = exc
            raise
        finally:
            self._pending = None
            if error is not None:
                # The round is unmergeable; reap every in-flight slot so
                # no worker keeps enumerating a dead generation.
                for slot in list(outstanding):
                    respawn(slot, kill=True)
            obs_metrics.GLOBAL.merge(exec_reg.snapshot())
        return results

    @property
    def pending(self) -> bool:
        """Whether a started round has not been collected yet."""
        return self._pending is not None

    def abort(self) -> None:
        """Kill and respawn every slot, discarding the in-flight round.

        For rounds whose results can no longer matter (the caller's
        generation was abandoned): waiting out a mid-enumeration worker
        could take longer than the work it was meant to save, so the
        processes are reaped. Any replica state the workers held dies
        with them — the owner must invalidate its sync cursors."""
        if self._closed:
            return
        self._pending = None
        reg = Registry()
        c_restarts = reg.counter("exec.worker_restarts")
        for slot in range(self.jobs):
            worker = self._workers[slot]
            if worker is not None:
                _shutdown_worker(worker, kill=True)
            self._workers[slot] = _spawn_worker(self._ctx, self._worker_args)
            c_restarts.value += 1
        obs_metrics.GLOBAL.merge(reg.snapshot())

    def shard_paths(self) -> List[str]:
        """Worker trace-shard files written so far (absorb after
        :meth:`close`, when every worker has flushed and exited)."""
        if not self.trace_base:
            return []
        return sorted(glob.glob(f"{self.trace_base}.worker-*.jsonl"))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pending = None
        for slot, worker in enumerate(self._workers):
            if worker is not None:
                _shutdown_worker(worker)
            self._workers[slot] = None
