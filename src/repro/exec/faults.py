"""Deterministic fault injection for the execution layer.

The robustness machinery in :mod:`repro.exec.parallel` — crash
detection, bounded retry, poison-task quarantine, per-task timeouts —
is only testable if faults can be produced *on demand and
reproducibly*. This module injects them deterministically: a
:class:`FaultPlan` is a parsed list of clauses matched purely on
``(task_index, attempt)``, so the same plan against the same task list
always fails the same tasks at the same points. No randomness is
involved anywhere.

Plans come from the ``REPRO_FAULTS`` environment variable (the CI
robustness job sets it) or are passed explicitly in tests. The clause
grammar, ``kind:target[:seconds][@attempt]`` joined by ``;``:

* ``kind`` — ``crash`` (kill the worker process with ``os._exit``, or
  raise :class:`SimulatedCrash` on the serial path), ``hang`` (sleep
  until the per-task timeout kills the worker; default 3600 s), or
  ``slow`` (sleep ``seconds`` then proceed).
* ``target`` — which task indices match: ``%m`` for every m-th task
  (``index % m == 0``), a literal index, or ``*`` for all.
* ``seconds`` — sleep duration for ``hang``/``slow``.
* ``@attempt`` — which retry attempt fires: a literal attempt number
  (default ``0``, the first try only — so a retry succeeds), or ``@*``
  for every attempt (so the task quarantines).

Examples: ``crash:%4`` crashes the worker on tasks 0, 4, 8, ... on
their first attempt; ``hang:2:30`` hangs task 2 for 30 s once;
``crash:1@*`` makes task 1 a poison task.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import List, Optional

ENV_VAR = "REPRO_FAULTS"

# The exit code a fault-injected worker dies with; distinctive enough
# to recognize in CI logs.
CRASH_EXIT_CODE = 173


class SimulatedCrash(RuntimeError):
    """Serial-path stand-in for a worker process dying mid-task."""


@dataclass(frozen=True)
class FaultSpec:
    """One parsed clause of a fault plan."""

    kind: str  # "crash" | "hang" | "slow"
    every: Optional[int] = None  # %m modulo target
    index: Optional[int] = None  # literal task index ('*' leaves both None)
    attempt: Optional[int] = 0  # None means every attempt ('@*')
    seconds: float = 0.0

    KINDS = ("crash", "hang", "slow")

    def matches(self, task_index: int, attempt: int) -> bool:
        if self.attempt is not None and attempt != self.attempt:
            return False
        if self.every is not None:
            return task_index % self.every == 0
        if self.index is not None:
            return task_index == self.index
        return True

    @classmethod
    def parse(cls, clause: str) -> "FaultSpec":
        clause = clause.strip()
        body, _, attempt_part = clause.partition("@")
        attempt: Optional[int] = 0
        if attempt_part:
            attempt = None if attempt_part == "*" else int(attempt_part)
        parts = body.split(":")
        if not 2 <= len(parts) <= 3:
            raise ValueError(f"malformed fault clause {clause!r}")
        kind = parts[0].strip()
        if kind not in cls.KINDS:
            raise ValueError(f"unknown fault kind {kind!r} in {clause!r}")
        target = parts[1].strip()
        seconds = float(parts[2]) if len(parts) == 3 else 0.0
        every = index = None
        if target.startswith("%"):
            every = int(target[1:])
            if every <= 0:
                raise ValueError(f"bad modulo target in {clause!r}")
        elif target != "*":
            index = int(target)
        return cls(
            kind=kind, every=every, index=index, attempt=attempt,
            seconds=seconds,
        )


@dataclass(frozen=True)
class FaultPlan:
    """A parsed ``REPRO_FAULTS`` plan.

    ``spec`` keeps the original string so the plan can be shipped to
    worker processes as a plain string and re-parsed there.
    """

    spec: str
    faults: tuple

    @classmethod
    def parse(cls, spec: str) -> "FaultPlan":
        clauses = [c for c in spec.replace(",", ";").split(";") if c.strip()]
        return cls(spec=spec, faults=tuple(FaultSpec.parse(c) for c in clauses))

    @classmethod
    def from_env(cls, environ=os.environ) -> Optional["FaultPlan"]:
        spec = environ.get(ENV_VAR, "").strip()
        return cls.parse(spec) if spec else None

    def matching(self, task_index: int, attempt: int) -> List[FaultSpec]:
        return [f for f in self.faults if f.matches(task_index, attempt)]

    def inject(
        self, task_index: int, attempt: int, *, process_level: bool = False
    ) -> None:
        """Fire every matching fault, in clause order.

        ``process_level`` selects how a ``crash`` manifests: in a worker
        process it is an abrupt ``os._exit`` (no cleanup, no exception —
        exactly what crash *recovery* must survive); on the serial path
        it raises :class:`SimulatedCrash` instead, which the retry loop
        treats like a worker death.
        """
        for fault in self.matching(task_index, attempt):
            if fault.kind == "slow":
                time.sleep(fault.seconds or 0.01)
            elif fault.kind == "hang":
                time.sleep(fault.seconds or 3600.0)
            elif fault.kind == "crash":
                if process_level:
                    os._exit(CRASH_EXIT_CODE)
                raise SimulatedCrash(
                    f"injected crash (task {task_index}, attempt {attempt})"
                )
