"""Parallel execution for independent synthesis tasks.

The paper runs suite tasks (and loop strategies) concurrently; this
package provides the fault-tolerant process fan-out the experiment
drivers use — worker-crash recovery, bounded retry, per-task timeouts,
poison-task quarantine (:mod:`.parallel`), deterministic fault
injection for testing it (:mod:`.faults`), and checkpoint/resume over
a durable completed-task journal (:mod:`.checkpoint`) — including the
observability plumbing: per-worker ``JsonlTracer`` shards and
evaluator-metrics merge-back. See docs/robustness.md and
docs/performance.md.
"""

from .checkpoint import Journal, checkpointed_map
from .faults import FaultPlan, SimulatedCrash
from .parallel import (
    ParallelOutcome,
    RetryPolicy,
    TaskFailure,
    parallel_map,
)

__all__ = [
    "FaultPlan",
    "Journal",
    "ParallelOutcome",
    "RetryPolicy",
    "SimulatedCrash",
    "TaskFailure",
    "checkpointed_map",
    "parallel_map",
]
