"""Parallel execution for independent synthesis tasks.

The paper runs suite tasks (and loop strategies) concurrently; this
package provides the process-pool fan-out the experiment drivers use,
including the observability plumbing — per-worker ``JsonlTracer``
shards and evaluator-metrics merge-back. See docs/performance.md.
"""

from .parallel import ParallelOutcome, parallel_map

__all__ = ["ParallelOutcome", "parallel_map"]
