"""Simulated Pex oracle and the Pex4Fun game (§6.1.4)."""

from .feedback import Feedback, generate_feedback
from .game import GameResult, MAX_ITERATIONS, play, play_with_manual_examples
from .oracle import Oracle
from .puzzles import PUZZLES, Puzzle, puzzles_by_category

__all__ = [
    "Feedback",
    "GameResult",
    "generate_feedback",
    "MAX_ITERATIONS",
    "Oracle",
    "PUZZLES",
    "Puzzle",
    "play",
    "play_with_manual_examples",
    "puzzles_by_category",
]
