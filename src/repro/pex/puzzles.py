"""Pex4Fun puzzles: secret reference solutions (§6.1.4).

The paper played 172 (proprietary) Pex4Fun puzzles; we reimplement an
86-puzzle suite spanning the same categories it names — the solved
examples (factorial, swapping array elements, delimiter-directed
summing, concat-first-and-last) and the named failure categories
(looping structures outside the strategies like 3n+1 step counting,
missing components like bitwise ops, and arithmetic too large for
component-based search like specific cubic polynomials).

Each puzzle carries the secret reference solution the simulated Pex
oracle tests against, plus seed inputs that characterize its domain.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Sequence, Tuple

from ..core.dsl import Signature
from ..core.types import BOOL, INT, STRING, list_of

STRS = list_of(STRING)
INTS = list_of(INT)


@dataclass
class Puzzle:
    """One Pex4Fun puzzle: a secret reference solution."""

    name: str
    signature: Signature
    reference: Callable[..., Any]
    category: str
    seeds: List[Tuple[Any, ...]] = field(default_factory=list)
    # Whether the suite author believes the DSL can express a solution;
    # mirrors the paper's post-hoc failure taxonomy, used only in docs.
    expressible: bool = True


def _sig(name: str, params: Sequence[Tuple[str, Any]], ret: Any) -> Signature:
    return Signature(name, tuple(params), ret)


def _csharp_div(a: int, b: int) -> int:
    return int(a / b)


def _csharp_mod(a: int, b: int) -> int:
    return a - b * int(a / b)


PUZZLES: List[Puzzle] = []


def _add(puzzle: Puzzle) -> None:
    PUZZLES.append(puzzle)


# ---------------------------------------------------------------------
# Arithmetic puzzles

_add(Puzzle("identity-int", _sig("P", [("x", INT)], INT), lambda x: x, "arith",
            seeds=[(3,), (-2,)]))
_add(Puzzle("add-seven", _sig("P", [("x", INT)], INT), lambda x: x + 7, "arith",
            seeds=[(0,), (5,)]))
_add(Puzzle("double", _sig("P", [("x", INT)], INT), lambda x: 2 * x, "arith",
            seeds=[(1,), (4,)]))
_add(Puzzle("square", _sig("P", [("x", INT)], INT), lambda x: x * x, "arith",
            seeds=[(2,), (5,)]))
_add(Puzzle("negate", _sig("P", [("x", INT)], INT), lambda x: -x, "arith",
            seeds=[(3,), (-4,)]))
_add(Puzzle("absolute", _sig("P", [("x", INT)], INT), abs, "arith",
            seeds=[(-5,), (5,)]))
_add(Puzzle("successor-of-double", _sig("P", [("x", INT)], INT),
            lambda x: 2 * x + 1, "arith", seeds=[(0,), (3,)]))
_add(Puzzle("max-of-two", _sig("P", [("a", INT), ("b", INT)], INT), max,
            "arith", seeds=[(1, 2), (5, 3)]))
_add(Puzzle("min-of-two", _sig("P", [("a", INT), ("b", INT)], INT), min,
            "arith", seeds=[(1, 2), (5, 3)]))
_add(Puzzle("difference", _sig("P", [("a", INT), ("b", INT)], INT),
            lambda a, b: a - b, "arith", seeds=[(5, 2), (1, 4)]))
_add(Puzzle("average-floor", _sig("P", [("a", INT), ("b", INT)], INT),
            lambda a, b: _csharp_div(a + b, 2), "arith",
            seeds=[(2, 4), (3, 4)]))
_add(Puzzle("remainder-ten", _sig("P", [("x", INT)], INT),
            lambda x: _csharp_mod(x, 10), "arith", seeds=[(37,), (5,)]))
_add(Puzzle("sign", _sig("P", [("x", INT)], INT),
            lambda x: 1 if x > 0 else (-1 if x < 0 else 0), "conditional",
            seeds=[(4,), (-4,), (0,)]))
_add(Puzzle("clamp-nonnegative", _sig("P", [("x", INT)], INT),
            lambda x: max(x, 0), "conditional", seeds=[(-3,), (5,)]))
_add(Puzzle("parity-name", _sig("P", [("x", INT)], STRING),
            lambda x: "even" if x % 2 == 0 else "odd", "conditional",
            seeds=[(2,), (3,)]))
_add(Puzzle("grade-pass", _sig("P", [("x", INT)], STRING),
            lambda x: "pass" if x >= 60 else "fail", "conditional",
            seeds=[(60,), (59,), (80,)]))

# Loop-shaped arithmetic (the FOR strategy's home turf).
_add(Puzzle("factorial", _sig("P", [("n", INT)], INT),
            lambda n: 1 if n <= 0 else n * PUZZLES_FACT(n - 1), "loop",
            seeds=[(0,), (1,), (2,), (3,), (4,)]))


def PUZZLES_FACT(n: int) -> int:
    out = 1
    for i in range(1, n + 1):
        out *= i
    return out


# Fix the factorial reference to the iterative helper (the lambda above
# closed over this module before the helper existed).
PUZZLES[-1].reference = lambda n: PUZZLES_FACT(max(n, 0))

_add(Puzzle("sum-to-n", _sig("P", [("n", INT)], INT),
            lambda n: n * (n + 1) // 2 if n >= 0 else 0, "loop",
            seeds=[(0,), (1,), (2,), (3,), (4,)]))
_add(Puzzle("power-of-two", _sig("P", [("n", INT)], INT),
            lambda n: 2 ** max(n, 0), "loop",
            seeds=[(0,), (1,), (2,), (3,), (4,)]))
_add(Puzzle("sum-of-squares", _sig("P", [("n", INT)], INT),
            lambda n: sum(i * i for i in range(1, max(n, 0) + 1)), "loop",
            seeds=[(0,), (1,), (2,), (3,), (4,)]))
_add(Puzzle("repeat-digits", _sig("P", [("n", INT)], STRING),
            lambda n: "x" * max(n, 0), "loop",
            seeds=[(0,), (1,), (2,), (3,)]))

# ---------------------------------------------------------------------
# String puzzles

_add(Puzzle("identity-str", _sig("P", [("s", STRING)], STRING),
            lambda s: s, "string", seeds=[("hi",), ("",)]))
_add(Puzzle("shout", _sig("P", [("s", STRING)], STRING),
            lambda s: s.upper(), "string", seeds=[("hi",), ("Ok",)]))
_add(Puzzle("whisper", _sig("P", [("s", STRING)], STRING),
            lambda s: s.lower(), "string", seeds=[("HI",), ("Ok",)]))
_add(Puzzle("mirror", _sig("P", [("s", STRING)], STRING),
            lambda s: s[::-1], "string", seeds=[("abc",), ("xy",)]))
_add(Puzzle("first-char", _sig("P", [("s", STRING)], STRING),
            lambda s: s[0], "string", seeds=[("abc",), ("q",)]))
_add(Puzzle("last-char", _sig("P", [("s", STRING)], STRING),
            lambda s: s[-1], "string", seeds=[("abc",), ("q",)]))
_add(Puzzle("greeting", _sig("P", [("s", STRING)], STRING),
            lambda s: "Hello, " + s, "string", seeds=[("Ann",), ("Bo",)]))
_add(Puzzle("exclaim", _sig("P", [("s", STRING)], STRING),
            lambda s: s + "!", "string", seeds=[("wow",), ("",)]))
_add(Puzzle("double-str", _sig("P", [("s", STRING)], STRING),
            lambda s: s + s, "string", seeds=[("ab",), ("x",)]))
_add(Puzzle("trim-ends", _sig("P", [("s", STRING)], STRING),
            lambda s: s.strip(), "string", seeds=[("  hi  ",), ("ok",)]))
_add(Puzzle("length-of", _sig("P", [("s", STRING)], INT),
            len, "string", seeds=[("abc",), ("",)]))
_add(Puzzle("spaces-to-dashes", _sig("P", [("s", STRING)], STRING),
            lambda s: s.replace(" ", "-"), "string",
            seeds=[("a b c",), ("hi",)]))
_add(Puzzle("drop-first", _sig("P", [("s", STRING)], STRING),
            lambda s: s[1:], "string", seeds=[("abc",), ("q",)]))
_add(Puzzle("first-line", _sig("P", [("s", STRING)], STRING),
            lambda s: s.split("\n")[0], "string",
            seeds=[("a\nb",), ("one",)]))
_add(Puzzle("is-palindrome", _sig("P", [("s", STRING)], BOOL),
            lambda s: s == s[::-1], "string", seeds=[("aba",), ("ab",)]))
_add(Puzzle("contains-space", _sig("P", [("s", STRING)], BOOL),
            lambda s: " " in s, "string", seeds=[("a b",), ("ab",)]))
_add(Puzzle("empty-to-na", _sig("P", [("s", STRING)], STRING),
            lambda s: "n/a" if s == "" else s, "conditional",
            seeds=[("",), ("hi",)]))
_add(Puzzle("yes-if-long", _sig("P", [("s", STRING)], STRING),
            lambda s: "yes" if len(s) > 3 else "no", "conditional",
            seeds=[("hi",), ("hello",)]))
_add(Puzzle("initial-dot", _sig("P", [("s", STRING)], STRING),
            lambda s: s[0] + ".", "string", seeds=[("Ann",), ("bo",)]))
_add(Puzzle("last-word", _sig("P", [("s", STRING)], STRING),
            lambda s: s.split(" ")[-1], "string",
            seeds=[("a b",), ("one two three",)]))
_add(Puzzle("word-count", _sig("P", [("s", STRING)], INT),
            lambda s: len(s.split(" ")), "string",
            seeds=[("a b",), ("one",)]))

# ---------------------------------------------------------------------
# Array puzzles

_add(Puzzle("first-elem", _sig("P", [("a", STRS)], STRING),
            lambda a: a[0], "array", seeds=[(("x", "y"),), (("q",),)]))
_add(Puzzle("last-elem", _sig("P", [("a", STRS)], STRING),
            lambda a: a[-1], "array", seeds=[(("x", "y"),), (("q",),)]))
_add(Puzzle("concat-first-last", _sig("P", [("a", STRS)], STRING),
            lambda a: a[0] + a[-1], "array",
            seeds=[(("x", "y", "z"),), (("hi", "there"),)]))
_add(Puzzle("array-length", _sig("P", [("a", STRS)], INT),
            len, "array", seeds=[(("x", "y"),), ((),)]))
_add(Puzzle("join-commas", _sig("P", [("a", STRS)], STRING),
            lambda a: ",".join(a), "array",
            seeds=[(("x", "y"),), (("a", "b", "c"),)]))
_add(Puzzle("sum-array", _sig("P", [("a", INTS)], INT),
            sum, "array", seeds=[((1, 2, 3),), ((4,),)]))
_add(Puzzle("first-int", _sig("P", [("a", INTS)], INT),
            lambda a: a[0], "array", seeds=[((7, 1),), ((3,),)]))
_add(Puzzle("swap-ends", _sig("P", [("a", INTS)], INTS),
            lambda a: (a[-1],) + tuple(a[1:-1]) + (a[0],), "array",
            seeds=[((1, 2, 3),), ((4, 5),)]))
_add(Puzzle("set-first-zero", _sig("P", [("a", INTS)], INTS),
            lambda a: (0,) + tuple(a[1:]), "array",
            seeds=[((1, 2),), ((7, 8, 9),)]))
_add(Puzzle("sort-array", _sig("P", [("a", INTS)], INTS),
            lambda a: tuple(sorted(a)), "array",
            seeds=[((3, 1, 2),), ((5, 4),)]))
_add(Puzzle("doubled-elements", _sig("P", [("a", INTS)], INTS),
            lambda a: tuple(2 * x for x in a), "loop",
            seeds=[((1, 2, 3),), ((4,),)]))
_add(Puzzle("squares-of", _sig("P", [("a", INTS)], INTS),
            lambda a: tuple(x * x for x in a), "loop",
            seeds=[((3, 5, 4),), ((2,),)]))
_add(Puzzle("running-sum", _sig("P", [("a", INTS)], INTS),
            lambda a: tuple(sum(a[:i + 1]) for i in range(len(a))), "loop",
            seeds=[((5, 2, 3),), ((1, 1),)]))
_add(Puzzle("shouted-words", _sig("P", [("a", STRS)], STRS),
            lambda a: tuple(w.upper() for w in a), "loop",
            seeds=[(("hi", "bye"),), (("ok",),)]))
_add(Puzzle("count-words", _sig("P", [("s", STRING)], INT),
            lambda s: len(s.split(",")), "string",
            seeds=[("a,b",), ("x,y,z",)]))

# ---------------------------------------------------------------------
# Mixed / harder puzzles

_add(Puzzle("delimiter-sum", _sig("P", [("s", STRING)], INT),
            lambda s: sum(
                int(piece)
                for piece in s.split("\n", 1)[1].split(s.split("\n", 1)[0])
            ),
            "mixed",
            seeds=[(",\n1,2,3",), (";\n4;5",)]))
_add(Puzzle("second-line", _sig("P", [("s", STRING)], STRING),
            lambda s: s.split("\n")[1], "mixed",
            seeds=[("a\nb",), ("1\n2\n3",)]))
_add(Puzzle("parse-and-double", _sig("P", [("s", STRING)], INT),
            lambda s: 2 * int(s), "mixed", seeds=[("4",), ("10",)]))
_add(Puzzle("digits-of", _sig("P", [("x", INT)], INT),
            lambda x: len(str(abs(x))), "mixed", seeds=[(7,), (4321,)]))
_add(Puzzle("sum-csv", _sig("P", [("s", STRING)], INT),
            lambda s: sum(int(p) for p in s.split(",")), "mixed",
            seeds=[("1,2",), ("10,20,30",)]))

# ---------------------------------------------------------------------
# Puzzles the DSL cannot express (the paper's failure categories)

_add(Puzzle("collatz-steps", _sig("P", [("n", INT)], INT),
            lambda n: _collatz(n), "unsupported-loop",
            seeds=[(1,), (2,), (3,), (6,)], expressible=False))
_add(Puzzle("bitwise-or", _sig("P", [("a", INT), ("b", INT)], INT),
            lambda a, b: a | b, "missing-component",
            seeds=[(1, 2), (5, 3)], expressible=False))
_add(Puzzle("bitwise-xor", _sig("P", [("a", INT), ("b", INT)], INT),
            lambda a, b: a ^ b, "missing-component",
            seeds=[(1, 2), (5, 3)], expressible=False))
_add(Puzzle("cubic-poly", _sig("P", [("x", INT)], INT),
            lambda x: 3 * x ** 3 - 7 * x ** 2 + 2 * x - 9, "too-large",
            seeds=[(0,), (1,), (2,)], expressible=False))
_add(Puzzle("quartic-mix", _sig("P", [("x", INT), ("y", INT)], INT),
            lambda x, y: x ** 2 * y ** 2 + 5 * x * y - 11, "too-large",
            seeds=[(1, 1), (2, 3)], expressible=False))


# ---------------------------------------------------------------------
# A second wave of puzzles (same categories, harder mixes)

_add(Puzzle("max-of-three", _sig("P", [("a", INT), ("b", INT), ("c", INT)], INT),
            lambda a, b, c: max(a, b, c), "arith",
            seeds=[(1, 2, 3), (5, 4, 1), (2, 9, 2)]))
_add(Puzzle("distance", _sig("P", [("a", INT), ("b", INT)], INT),
            lambda a, b: abs(a - b), "arith", seeds=[(3, 7), (9, 2)]))
_add(Puzzle("last-digit", _sig("P", [("x", INT)], INT),
            lambda x: abs(x) % 10, "arith", seeds=[(37,), (5,), (-42,)]))
_add(Puzzle("is-positive", _sig("P", [("x", INT)], BOOL),
            lambda x: x > 0, "conditional", seeds=[(3,), (-3,), (0,)]))
_add(Puzzle("bigger-name", _sig("P", [("a", STRING), ("b", STRING)], STRING),
            lambda a, b: a if len(a) >= len(b) else b, "conditional",
            seeds=[("hi", "there"), ("longer", "abc")]))
_add(Puzzle("count-down", _sig("P", [("n", INT)], STRING),
            lambda n: "x" * max(n, 0) + "!", "loop",
            seeds=[(0,), (1,), (2,), (3,)]))
_add(Puzzle("double-factorial-ish", _sig("P", [("n", INT)], INT),
            lambda n: _running_product(n), "loop",
            seeds=[(0,), (1,), (2,), (3,), (4,)]))
_add(Puzzle("first-two", _sig("P", [("s", STRING)], STRING),
            lambda s: s[:2], "string", seeds=[("abc",), ("q",), ("hello",)]))
_add(Puzzle("surround-stars", _sig("P", [("s", STRING)], STRING),
            lambda s: "*" + s + "*", "string", seeds=[("a",), ("hi",)]))
_add(Puzzle("comma-to-space", _sig("P", [("s", STRING)], STRING),
            lambda s: s.replace(",", " "), "string",
            seeds=[("a,b",), ("x,y,z",)]))
_add(Puzzle("second-word", _sig("P", [("s", STRING)], STRING),
            lambda s: s.split(" ")[1], "string",
            seeds=[("a b",), ("one two three",)]))
_add(Puzzle("last-int", _sig("P", [("a", INTS)], INT),
            lambda a: a[-1], "array", seeds=[((1, 2),), ((7,),)]))
_add(Puzzle("min-of-array", _sig("P", [("a", INTS)], INT),
            lambda a: min(a), "array", seeds=[((3, 1, 2),), ((9, 5),)]))
_add(Puzzle("negate-all", _sig("P", [("a", INTS)], INTS),
            lambda a: tuple(-x for x in a), "loop",
            seeds=[((1, 2),), ((3, -4, 5),)]))
_add(Puzzle("trim-all", _sig("P", [("a", STRS)], STRS),
            lambda a: tuple(w.strip() for w in a), "loop",
            seeds=[((" a ", "b "),), (("x",),)]))
_add(Puzzle("sum-plus-length", _sig("P", [("a", INTS)], INT),
            lambda a: sum(a) + len(a), "mixed",
            seeds=[((1, 2),), ((5, 5, 5),)]))
_add(Puzzle("int-of-second-csv", _sig("P", [("s", STRING)], INT),
            lambda s: int(s.split(",")[1]), "mixed",
            seeds=[("1,2",), ("10,20,30",)]))
_add(Puzzle("popcount", _sig("P", [("x", INT)], INT),
            lambda x: bin(max(x, 0)).count("1"), "missing-component",
            seeds=[(1,), (3,), (7,)], expressible=False))
_add(Puzzle("quintic", _sig("P", [("x", INT)], INT),
            lambda x: x ** 5 - 4 * x ** 3 + x - 2, "too-large",
            seeds=[(0,), (1,), (2,)], expressible=False))


def _running_product(n: int) -> int:
    out = 1
    for i in range(1, max(n, 0) + 1):
        out *= 2 * i
    return out


def _collatz(n: int) -> int:
    if n < 1:
        return 0
    steps = 0
    while n != 1:
        n = n // 2 if n % 2 == 0 else 3 * n + 1
        steps += 1
        if steps > 1000:
            break
    return steps


def puzzles_by_category() -> dict:
    out: dict = {}
    for puzzle in PUZZLES:
        out.setdefault(puzzle.category, []).append(puzzle)
    return out
