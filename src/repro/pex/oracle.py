"""A simulated Pex: counterexample generation against a secret solution.

The real Pex uses dynamic symbolic execution over .NET bytecode; what the
TDS experiment needs from it is only "a distinguishing input if the
player's code does not match the specification" (§6.1.4). We substitute
seeded randomized plus bounded-exhaustive input generation: the candidate
and the reference are run on curated seeds, then on enumerated small
inputs, then on random typed inputs; the first disagreement (in value or
in error behaviour) is returned.

Determinism: the oracle is seeded, so the whole Pex4Fun experiment
replays identically.
"""

from __future__ import annotations

import itertools
import random
import string as string_module
from typing import Any, Callable, Iterator, List, Optional, Tuple

from ..core.dsl import Example
from ..core.types import Type
from ..core.values import ERROR, freeze, structurally_equal
from .puzzles import Puzzle

_WORDS = ["a", "hi", "cat", "dog", "one", "two words", "Ann", "", " x ", "A,B"]


class Oracle:
    """Counterexample generator for one puzzle."""

    def __init__(
        self,
        puzzle: Puzzle,
        seed: int = 0,
        random_attempts: int = 400,
        exhaustive_budget: int = 300,
    ):
        self.puzzle = puzzle
        self.rng = random.Random(seed ^ hash(puzzle.name) & 0xFFFF)
        self.random_attempts = random_attempts
        self.exhaustive_budget = exhaustive_budget

    # -- input generation --------------------------------------------------

    def _small_values(self, ty: Type) -> List[Any]:
        if ty.name == "int":
            return [0, 1, 2, 3, -1, 5, 10]
        if ty.name in ("str", "char"):
            return ["", "a", "ab", "a b", "Hi", "x,y", "1", "a\nb"]
        if ty.name == "bool":
            return [False, True]
        if ty.is_list:
            elems = self._small_values(ty.element_type())[:4]
            out: List[Any] = [()]
            out.extend((e,) for e in elems)
            out.extend((a, b) for a in elems[:3] for b in elems[:3])
            return out
        return []

    def _random_value(self, ty: Type) -> Any:
        rng = self.rng
        if ty.name == "int":
            return rng.randint(-20, 60)
        if ty.name in ("str", "char"):
            if rng.random() < 0.5:
                return rng.choice(_WORDS)
            length = rng.randint(0, 8)
            alphabet = string_module.ascii_letters + "  ,.0123456789"
            return "".join(rng.choice(alphabet) for _ in range(length))
        if ty.name == "bool":
            return rng.random() < 0.5
        if ty.is_list:
            length = rng.randint(0, 5)
            return tuple(
                self._random_value(ty.element_type()) for _ in range(length)
            )
        return None

    def _candidate_inputs(self) -> Iterator[Tuple[Any, ...]]:
        yield from self.puzzle.seeds
        param_types = self.puzzle.signature.param_types
        pools = [self._small_values(ty) for ty in param_types]
        if all(pools):
            count = 0
            for combo in itertools.product(*pools):
                yield tuple(freeze(v) for v in combo)
                count += 1
                if count >= self.exhaustive_budget:
                    break
        for _ in range(self.random_attempts):
            yield tuple(
                freeze(self._random_value(ty)) for ty in param_types
            )

    # -- the oracle --------------------------------------------------------

    def reference_output(self, args: Tuple[Any, ...]) -> Any:
        try:
            return freeze(self.puzzle.reference(*args))
        except Exception:
            return ERROR

    def find_counterexample(
        self, candidate: Optional[Callable[..., Any]]
    ) -> Optional[Example]:
        """A distinguishing input, or None when the candidate matches the
        reference on every generated input.

        ``candidate=None`` (the empty program ⊥) disagrees everywhere;
        the first well-defined seed is returned — this seeds the game.
        """
        for args in self._candidate_inputs():
            expected = self.reference_output(args)
            if expected is ERROR:
                continue  # inputs outside the secret spec's domain
            if candidate is None:
                return Example(args, expected)
            try:
                actual = freeze(candidate(*args))
            except Exception:
                return Example(args, expected)
            if not structurally_equal(actual, expected):
                return Example(args, expected)
        return None
