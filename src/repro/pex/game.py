"""The Pex4Fun game loop (§6.1.4).

"Each time the player thinks they have a solution, the Pex test
generation tool … generates a distinguishing input if the player's code
does not match the specification." Here the player is TDS: each oracle
counterexample becomes the next example of the session, up to the
paper's cap of 7 iterations.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

from ..core.budget import Budget
from ..core.dsl import Example
from ..core.tds import TdsOptions, TdsSession
from ..domains.registry import get_domain
from .oracle import Oracle
from .puzzles import Puzzle

MAX_ITERATIONS = 7  # the paper's cap


@dataclass
class GameResult:
    puzzle: Puzzle
    solved: bool
    iterations: int
    examples: List[Example]
    elapsed: float
    dbs_times: List[float] = field(default_factory=list)
    program: Optional[object] = None


def play(
    puzzle: Puzzle,
    budget_factory: Optional[Callable[[], Budget]] = None,
    options: Optional[TdsOptions] = None,
    max_iterations: int = MAX_ITERATIONS,
    oracle_seed: int = 0,
) -> GameResult:
    """Play one puzzle: synthesize, ask Pex, repeat (≤ 7 rounds)."""
    start = time.monotonic()
    dsl = get_domain("pexfun").dsl()
    oracle = Oracle(puzzle, seed=oracle_seed)
    session = TdsSession(
        puzzle.signature, dsl, budget_factory=budget_factory, options=options
    )
    examples: List[Example] = []
    solved = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        candidate = session.current_function()
        counterexample = oracle.find_counterexample(candidate)
        if counterexample is None:
            solved = True
            iterations -= 1  # the last round found nothing to refute
            break
        examples.append(counterexample)
        session.add_example(counterexample)
        if session.program is None:
            # TDS could not even fit the prefix; give the failure counter
            # another round, as the algorithm prescribes, via the next
            # counterexample (which will repeat).
            continue
    else:
        candidate = session.current_function()
        solved = oracle.find_counterexample(candidate) is None
    return GameResult(
        puzzle=puzzle,
        solved=solved,
        iterations=iterations,
        examples=examples,
        elapsed=time.monotonic() - start,
        dbs_times=[s.dbs_time for s in session.steps if s.action != "satisfied"],
        program=session.program,
    )


def play_with_manual_examples(
    puzzle: Puzzle,
    examples: List[Example],
    budget_factory: Optional[Callable[[], Budget]] = None,
    options: Optional[TdsOptions] = None,
    oracle_seed: int = 0,
) -> GameResult:
    """The paper's fallback: "a sequence of test cases was generated
    manually to synthesize solutions to those puzzles". The manual
    sequence is fed in order; the oracle then verifies the result."""
    start = time.monotonic()
    dsl = get_domain("pexfun").dsl()
    session = TdsSession(
        puzzle.signature, dsl, budget_factory=budget_factory, options=options
    )
    for example in examples:
        session.add_example(example)
    session.finalize()
    oracle = Oracle(puzzle, seed=oracle_seed)
    candidate = session.current_function()
    solved = (
        candidate is not None
        and oracle.find_counterexample(candidate) is None
    )
    return GameResult(
        puzzle=puzzle,
        solved=solved,
        iterations=len(examples),
        examples=list(examples),
        elapsed=time.monotonic() - start,
        dbs_times=[s.dbs_time for s in session.steps if s.action != "satisfied"],
        program=session.program,
    )
