"""Feedback generation for Pex4Fun players (§8 future work).

"[We intend to] use the synthesizer to generate feedback for the
Pex4Fun game and introductory programming assignments." Given a player's
attempt at a puzzle, this module produces:

1. the oracle's distinguishing input (what Pex would show the player);
2. the *smallest repair*: the player's program re-synthesized against
   the counterexamples via incremental TDS — because TDS modifies one
   subexpression at a time, the diff localizes the bug;
3. a readable rendering of the repair in Python.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, List, Optional

from ..core.budget import Budget
from ..core.dsl import Example
from ..core.expr import Expr
from ..core.incremental import resynthesize
from ..domains.registry import get_domain
from ..lasy.codegen import to_python
from .oracle import Oracle
from .puzzles import Puzzle


@dataclass
class Feedback:
    """What a Pex4Fun player would be shown."""

    puzzle: Puzzle
    correct: bool
    counterexamples: List[Example]
    repaired_program: Optional[Expr] = None
    suggestion: Optional[str] = None

    def render(self) -> str:
        if self.correct:
            return f"{self.puzzle.name}: correct — no distinguishing input."
        lines = [f"{self.puzzle.name}: not yet correct."]
        for example in self.counterexamples:
            rendered_args = ", ".join(repr(a) for a in example.args)
            lines.append(
                f"  your code disagrees on ({rendered_args}): "
                f"expected {example.output!r}"
            )
        if self.suggestion is not None:
            lines.append("  a minimal repair of your approach:")
            lines.extend("    " + line for line in self.suggestion.splitlines())
        return "\n".join(lines)


def generate_feedback(
    puzzle: Puzzle,
    player_program: Optional[Expr],
    budget_factory: Optional[Callable[[], Budget]] = None,
    max_rounds: int = 3,
    oracle_seed: int = 0,
) -> Feedback:
    """Check a player's program and synthesize a localized repair.

    ``player_program`` is an expression over the Pex4Fun DSL (the shape
    a player's submission reaches us in after parsing); ``None`` models
    an empty submission.
    """
    budget_factory = budget_factory or (
        lambda: Budget(max_seconds=10, max_expressions=120_000)
    )
    dsl = get_domain("pexfun").dsl()
    oracle = Oracle(puzzle, seed=oracle_seed)
    fn = _as_callable(player_program, puzzle)
    first = oracle.find_counterexample(fn)
    if first is None:
        return Feedback(puzzle, True, [])

    counterexamples = [first]
    program = player_program
    for _ in range(max_rounds):
        result = resynthesize(
            puzzle.signature,
            program,
            counterexamples,
            dsl,
            budget_factory=budget_factory,
        )
        program = result.program
        if program is None:
            break
        fn = _as_callable(program, puzzle)
        nxt = oracle.find_counterexample(fn)
        if nxt is None:
            return Feedback(
                puzzle,
                False,
                counterexamples,
                repaired_program=program,
                suggestion=to_python(puzzle.signature, program),
            )
        counterexamples.append(nxt)
    return Feedback(puzzle, False, counterexamples)


def _as_callable(program: Optional[Expr], puzzle: Puzzle):
    if program is None:
        return None
    from ..core.evaluator import run_program

    def fn(*args: Any):
        return run_program(
            program, puzzle.signature.param_names, args
        )

    return fn
