"""Synthesize a whole LaSy program.

The runner walks the program's ``require`` statements *in order*,
dispatching each to the TDS session of the function it constrains.
Lookup declarations simply accumulate their examples (§2.2). Functions
may call previously-synthesized LaSy functions (``_LASY_FN``): the
shared ``lasy_fns`` mapping is updated after every successful step, so a
later function sees the helpers' latest programs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from ..core.budget import Budget, CancelToken, default_budget
from ..obs.trace import get_tracer
from ..core.dsl import Example, Signature
from ..core.engine.cache import SessionCache
from ..core.engine.keys import session_key_for
from ..core.program import LookupFunction, SynthesizedFunction
from ..core.tds import TdsOptions, TdsResult, TdsSession
from ..domains.registry import Domain, get_domain
from .program import LasyProgram, RequireStmt

SynthesizedCallable = Union[SynthesizedFunction, LookupFunction]


@dataclass
class LasyRunResult:
    """Outcome of synthesizing a LaSy program."""

    program: LasyProgram
    functions: Dict[str, SynthesizedCallable]
    results: Dict[str, TdsResult]
    success: bool
    elapsed: float
    steps: List = field(default_factory=list)
    # The live TDS sessions, kept so a deadline-truncated run can be
    # resumed warm (their partial component pools survive truncation);
    # see resume_lasy. Empty when the run released its sessions into a
    # SessionCache — ownership moved to the cache, and aliasing a
    # session another request may have checked out would race.
    sessions: Dict[str, TdsSession] = field(default_factory=dict, repr=False)
    # Per-function cache outcome when a SessionCache served the run:
    # {"hit": bool, "reused_examples": k} — a hit skipped TDS iterations
    # 1..k via the warm engine's extend_examples path.
    cache_info: Dict[str, Dict[str, Any]] = field(default_factory=dict)

    @property
    def truncated(self) -> bool:
        """Whether any function's synthesis was cut by a hard deadline."""
        return any(
            step.action == "timeout"
            for result in self.results.values()
            for step in result.steps
        )

    @property
    def dbs_times(self) -> List[float]:
        """All DBS invocation times across all functions (Fig. 10)."""
        out: List[float] = []
        for result in self.results.values():
            out.extend(result.dbs_times)
        return out

    def __getitem__(self, name: str) -> SynthesizedCallable:
        return self.functions[name]


def run_lasy(
    program: LasyProgram,
    domain: Optional[Domain] = None,
    budget_factory: Optional[Callable[[], Budget]] = None,
    options: Optional[TdsOptions] = None,
    *,
    session_cache: Optional[SessionCache] = None,
    cancel: Optional[CancelToken] = None,
) -> LasyRunResult:
    """Synthesize every function of ``program``; returns callables.

    With a ``session_cache``, each function's session is *checked out*
    of the cache when a warm one holds a prefix of its examples (the
    TDS iterations for the held prefix are skipped; the engine extends
    its pool instead of rebuilding) and released back — suspended,
    under its new identity key — when the run finishes. ``cancel``
    threads a cooperative cancellation token through every session
    (the server's per-request admission control).
    """
    start = time.monotonic()
    domain = domain or get_domain(program.language)
    dsl = domain.dsl()

    lasy_fns: Dict[str, Any] = {}
    signatures: Dict[str, Signature] = {
        decl.name: decl.signature for decl in program.declarations
    }
    lookups: Dict[str, LookupFunction] = {}
    sessions: Dict[str, TdsSession] = {}
    cache_info: Dict[str, Dict[str, Any]] = {}
    skip: Dict[str, int] = {}

    # Coerce every example once; the per-function lists feed both the
    # cache lookups (which need the full sequence upfront) and the
    # require loop below.
    coerced = [
        _coerce_example(domain, signatures[stmt.func_name], stmt)
        for stmt in program.examples
    ]
    fn_examples: Dict[str, List[Example]] = {}
    for stmt, example in zip(program.examples, coerced):
        fn_examples.setdefault(stmt.func_name, []).append(example)

    # Cache keys fingerprint the LaSy state a session observed at
    # *release* (end of run), when every lookup table is full. Lookup
    # contents are pure data determined by the program source, so the
    # acquire-time key can fingerprint against pre-filled shadow copies
    # — the live lookups still fill example-by-example in the require
    # loop, keeping cold behaviour identical with and without a cache.
    lookup_shadows: Dict[str, LookupFunction] = {}
    if session_cache is not None:
        for decl in program.declarations:
            if decl.is_lookup:
                shadow = LookupFunction(decl.signature)
                for example in fn_examples.get(decl.name, []):
                    shadow.add(example)
                lookup_shadows[decl.name] = shadow

    for decl in program.declarations:
        if decl.is_lookup:
            lookup = LookupFunction(decl.signature)
            lookups[decl.name] = lookup
            lasy_fns[decl.name] = lookup
            continue
        other_signatures = {
            name: sig
            for name, sig in signatures.items()
            if name != decl.name
        }
        session: Optional[TdsSession] = None
        if session_cache is not None:
            # Helper *functions* synthesized later in this run are still
            # unknown here, so multi-function programs fingerprint to the
            # partial state and usually miss — conservative by
            # construction, never wrong. Lookups and already-synthesized
            # helpers fingerprint to their final content, which is what
            # lets the dominant service patterns (single function, or
            # function + lookups) hit on a repeat.
            base_key = session_key_for(
                getattr(dsl, "name", type(dsl).__name__),
                decl.signature,
                lasy_fns={**lasy_fns, **lookup_shadows},
                lasy_names=other_signatures,
                options=options if options is not None else TdsOptions(),
            )
            session, matched = session_cache.acquire(
                base_key, fn_examples.get(decl.name, [])
            )
            if session is not None:
                session.rebind_lasy(lasy_fns, other_signatures)
                session.budget_factory = budget_factory or default_budget
                session.options = (
                    options if options is not None else TdsOptions()
                )
                session.reset_clock(cancel=cancel)
                if not session.satisfies_all():
                    session.failures_in_a_row = max(
                        1, session.failures_in_a_row
                    )
                skip[decl.name] = matched
                cache_info[decl.name] = {
                    "hit": True,
                    "reused_examples": matched,
                }
                if session.program is not None:
                    lasy_fns[decl.name] = session.current_function()
        if session is None:
            session = TdsSession(
                decl.signature,
                dsl,
                budget_factory=budget_factory,
                lasy_fns=lasy_fns,
                lasy_signatures=other_signatures,
                options=options,
                cancel=cancel,
            )
            if session_cache is not None:
                cache_info[decl.name] = {"hit": False, "reused_examples": 0}
        sessions[decl.name] = session

    tracer = get_tracer()
    steps = []
    consumed: Dict[str, int] = {}
    for stmt, example in zip(program.examples, coerced):
        if stmt.func_name in lookups:
            lookups[stmt.func_name].add(example)
            continue
        index = consumed.get(stmt.func_name, 0)
        consumed[stmt.func_name] = index + 1
        if index < skip.get(stmt.func_name, 0):
            # The checked-out session consumed this example in an
            # earlier request; its program already reflects it.
            continue
        session = sessions[stmt.func_name]
        with tracer.span("lasy.require", function=stmt.func_name) as span:
            # feed() == add_example() under fifo; a queueing scheduler
            # buffers the example and admits it in its own order when
            # finalize() drains the session.
            step = session.feed(example)
            span.set(action=step.action)
        steps.append((stmt.func_name, step))
        if session.program is not None:
            lasy_fns[stmt.func_name] = session.current_function()

    results: Dict[str, TdsResult] = {}
    success = True
    for name, session in sessions.items():
        with tracer.span("lasy.finalize", function=name) as span:
            result = session.finalize()
            span.set(success=result.success)
        results[name] = result
        if result.program is not None:
            lasy_fns[name] = session.current_function()
        success = success and result.success

    functions: Dict[str, SynthesizedCallable] = {}
    functions.update(lookups)
    for name, session in sessions.items():
        fn = session.current_function()
        if fn is not None:
            functions[name] = fn

    result_sessions = sessions
    if session_cache is not None:
        # Ownership moves to the cache; see LasyRunResult.sessions.
        for session in sessions.values():
            session_cache.release(session)
        result_sessions = {}
    else:
        # The result keeps live sessions for warm resumption, but shard
        # workers must not outlive the run (and their trace shards fold
        # into this run's trace); a resume respawns them on demand.
        for session in sessions.values():
            session.release_workers()

    return LasyRunResult(
        program=program,
        functions=functions,
        results=results,
        success=success,
        elapsed=time.monotonic() - start,
        steps=steps,
        sessions=result_sessions,
        cache_info=cache_info,
    )


def resume_lasy(
    previous: LasyRunResult,
    budget_factory: Optional[Callable[[], Budget]] = None,
    timeout_s: Optional[float] = None,
) -> LasyRunResult:
    """Resume a deadline-truncated :func:`run_lasy` run.

    Every unsatisfied session is re-finalized *warm* — its component
    pool survived the truncation, so work done before the deadline is
    not repeated. ``timeout_s`` re-arms (or, with ``0``, removes) the
    per-session wall; ``budget_factory`` swaps the per-DBS budget.
    Already-satisfied functions are left untouched.
    """
    start = time.monotonic()
    tracer = get_tracer()
    results: Dict[str, TdsResult] = dict(previous.results)
    success = True
    for name, session in previous.sessions.items():
        prior = results.get(name)
        if prior is not None and prior.success and session.satisfies_all():
            continue
        with tracer.span("lasy.resume", function=name) as span:
            result = session.resume(
                budget_factory=budget_factory, timeout_s=timeout_s
            )
            span.set(success=result.success)
        results[name] = result
        if result.program is not None:
            # Publish into the shared LaSy-function mapping so other
            # sessions' helpers see the resumed program.
            session.lasy_fns[name] = session.current_function()
    functions: Dict[str, SynthesizedCallable] = dict(previous.functions)
    for name, session in previous.sessions.items():
        fn = session.current_function()
        if fn is not None:
            functions[name] = fn
        success = success and results[name].success
    return LasyRunResult(
        program=previous.program,
        functions=functions,
        results=results,
        success=success,
        elapsed=time.monotonic() - start,
        steps=list(previous.steps),
        sessions=previous.sessions,
    )


def _coerce_example(
    domain: Domain, signature: Signature, stmt: RequireStmt
) -> Example:
    """Materialize LaSy literals into domain values (e.g. XML strings
    into XML trees) according to the declared parameter types."""
    args = tuple(
        domain.coerce(ty, value)
        for (_, ty), value in zip(signature.params, stmt.args)
    )
    output = domain.coerce(signature.return_type, stmt.output)
    return Example(args, output)


def synthesize(
    source: str,
    budget_factory: Optional[Callable[[], Budget]] = None,
    options: Optional[TdsOptions] = None,
) -> LasyRunResult:
    """Parse and synthesize LaSy source text — the library's front door.

    >>> result = synthesize('''
    ...     language pexfun;
    ...     function int Id(int x);
    ...     require Id(3) == 3;
    ... ''')  # doctest: +SKIP
    """
    from .parser import parse_lasy

    return run_lasy(
        parse_lasy(source),
        budget_factory=budget_factory,
        options=options,
    )
