"""Synthesize a whole LaSy program.

The runner walks the program's ``require`` statements *in order*,
dispatching each to the TDS session of the function it constrains.
Lookup declarations simply accumulate their examples (§2.2). Functions
may call previously-synthesized LaSy functions (``_LASY_FN``): the
shared ``lasy_fns`` mapping is updated after every successful step, so a
later function sees the helpers' latest programs.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from ..core.budget import Budget
from ..obs.trace import get_tracer
from ..core.dsl import Example, Signature
from ..core.program import LookupFunction, SynthesizedFunction
from ..core.tds import TdsOptions, TdsResult, TdsSession
from ..domains.registry import Domain, get_domain
from .program import LasyProgram, RequireStmt

SynthesizedCallable = Union[SynthesizedFunction, LookupFunction]


@dataclass
class LasyRunResult:
    """Outcome of synthesizing a LaSy program."""

    program: LasyProgram
    functions: Dict[str, SynthesizedCallable]
    results: Dict[str, TdsResult]
    success: bool
    elapsed: float
    steps: List = field(default_factory=list)
    # The live TDS sessions, kept so a deadline-truncated run can be
    # resumed warm (their partial component pools survive truncation);
    # see resume_lasy.
    sessions: Dict[str, TdsSession] = field(default_factory=dict, repr=False)

    @property
    def truncated(self) -> bool:
        """Whether any function's synthesis was cut by a hard deadline."""
        return any(
            step.action == "timeout"
            for result in self.results.values()
            for step in result.steps
        )

    @property
    def dbs_times(self) -> List[float]:
        """All DBS invocation times across all functions (Fig. 10)."""
        out: List[float] = []
        for result in self.results.values():
            out.extend(result.dbs_times)
        return out

    def __getitem__(self, name: str) -> SynthesizedCallable:
        return self.functions[name]


def run_lasy(
    program: LasyProgram,
    domain: Optional[Domain] = None,
    budget_factory: Optional[Callable[[], Budget]] = None,
    options: Optional[TdsOptions] = None,
) -> LasyRunResult:
    """Synthesize every function of ``program``; returns callables."""
    start = time.monotonic()
    domain = domain or get_domain(program.language)
    dsl = domain.dsl()

    lasy_fns: Dict[str, Any] = {}
    signatures: Dict[str, Signature] = {
        decl.name: decl.signature for decl in program.declarations
    }
    lookups: Dict[str, LookupFunction] = {}
    sessions: Dict[str, TdsSession] = {}

    for decl in program.declarations:
        if decl.is_lookup:
            lookup = LookupFunction(decl.signature)
            lookups[decl.name] = lookup
            lasy_fns[decl.name] = lookup
        else:
            other_signatures = {
                name: sig
                for name, sig in signatures.items()
                if name != decl.name
            }
            sessions[decl.name] = TdsSession(
                decl.signature,
                dsl,
                budget_factory=budget_factory,
                lasy_fns=lasy_fns,
                lasy_signatures=other_signatures,
                options=options,
            )

    tracer = get_tracer()
    steps = []
    for stmt in program.examples:
        example = _coerce_example(domain, signatures[stmt.func_name], stmt)
        if stmt.func_name in lookups:
            lookups[stmt.func_name].add(example)
            continue
        session = sessions[stmt.func_name]
        with tracer.span("lasy.require", function=stmt.func_name) as span:
            step = session.add_example(example)
            span.set(action=step.action)
        steps.append((stmt.func_name, step))
        if session.program is not None:
            lasy_fns[stmt.func_name] = session.current_function()

    results: Dict[str, TdsResult] = {}
    success = True
    for name, session in sessions.items():
        with tracer.span("lasy.finalize", function=name) as span:
            result = session.finalize()
            span.set(success=result.success)
        results[name] = result
        if result.program is not None:
            lasy_fns[name] = session.current_function()
        success = success and result.success

    functions: Dict[str, SynthesizedCallable] = {}
    functions.update(lookups)
    for name, session in sessions.items():
        fn = session.current_function()
        if fn is not None:
            functions[name] = fn

    return LasyRunResult(
        program=program,
        functions=functions,
        results=results,
        success=success,
        elapsed=time.monotonic() - start,
        steps=steps,
        sessions=sessions,
    )


def resume_lasy(
    previous: LasyRunResult,
    budget_factory: Optional[Callable[[], Budget]] = None,
    timeout_s: Optional[float] = None,
) -> LasyRunResult:
    """Resume a deadline-truncated :func:`run_lasy` run.

    Every unsatisfied session is re-finalized *warm* — its component
    pool survived the truncation, so work done before the deadline is
    not repeated. ``timeout_s`` re-arms (or, with ``0``, removes) the
    per-session wall; ``budget_factory`` swaps the per-DBS budget.
    Already-satisfied functions are left untouched.
    """
    start = time.monotonic()
    tracer = get_tracer()
    results: Dict[str, TdsResult] = dict(previous.results)
    success = True
    for name, session in previous.sessions.items():
        prior = results.get(name)
        if prior is not None and prior.success and session.satisfies_all():
            continue
        with tracer.span("lasy.resume", function=name) as span:
            result = session.resume(
                budget_factory=budget_factory, timeout_s=timeout_s
            )
            span.set(success=result.success)
        results[name] = result
        if result.program is not None:
            # Publish into the shared LaSy-function mapping so other
            # sessions' helpers see the resumed program.
            session.lasy_fns[name] = session.current_function()
    functions: Dict[str, SynthesizedCallable] = dict(previous.functions)
    for name, session in previous.sessions.items():
        fn = session.current_function()
        if fn is not None:
            functions[name] = fn
        success = success and results[name].success
    return LasyRunResult(
        program=previous.program,
        functions=functions,
        results=results,
        success=success,
        elapsed=time.monotonic() - start,
        steps=list(previous.steps),
        sessions=previous.sessions,
    )


def _coerce_example(
    domain: Domain, signature: Signature, stmt: RequireStmt
) -> Example:
    """Materialize LaSy literals into domain values (e.g. XML strings
    into XML trees) according to the declared parameter types."""
    args = tuple(
        domain.coerce(ty, value)
        for (_, ty), value in zip(signature.params, stmt.args)
    )
    output = domain.coerce(signature.return_type, stmt.output)
    return Example(args, output)


def synthesize(
    source: str,
    budget_factory: Optional[Callable[[], Budget]] = None,
    options: Optional[TdsOptions] = None,
) -> LasyRunResult:
    """Parse and synthesize LaSy source text — the library's front door.

    >>> result = synthesize('''
    ...     language pexfun;
    ...     function int Id(int x);
    ...     require Id(3) == 3;
    ... ''')  # doctest: +SKIP
    """
    from .parser import parse_lasy

    return run_lasy(
        parse_lasy(source),
        budget_factory=budget_factory,
        options=options,
    )
