"""The LaSy program AST (Fig. 5).

A LaSy program is a language reference, a list of function (or lookup)
declarations, and an *ordered* sequence of ``require`` examples. The
order of the examples is part of the program's meaning (§4.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Tuple

from ..core.dsl import Signature


@dataclass(frozen=True)
class FunctionDecl:
    """``function t f(t x, ...);`` or ``lookup t f(t x, ...);``."""

    signature: Signature
    is_lookup: bool = False

    @property
    def name(self) -> str:
        return self.signature.name


@dataclass(frozen=True)
class RequireStmt:
    """``require f(V1, ...) == VR;``."""

    func_name: str
    args: Tuple[Any, ...]
    output: Any


@dataclass
class LasyProgram:
    """A parsed LaSy program."""

    language: str
    declarations: List[FunctionDecl] = field(default_factory=list)
    examples: List[RequireStmt] = field(default_factory=list)

    def declaration(self, name: str) -> FunctionDecl:
        for decl in self.declarations:
            if decl.name == name:
                return decl
        raise KeyError(f"no declaration for function {name!r}")

    def examples_for(self, name: str) -> List[RequireStmt]:
        return [e for e in self.examples if e.func_name == name]

    def validate(self) -> None:
        """Every example must reference a declared function with the
        right arity."""
        names = {d.name for d in self.declarations}
        if len(names) != len(self.declarations):
            raise ValueError("duplicate function declarations")
        for stmt in self.examples:
            if stmt.func_name not in names:
                raise ValueError(
                    f"require references undeclared function "
                    f"{stmt.func_name!r}"
                )
            decl = self.declaration(stmt.func_name)
            if len(stmt.args) != len(decl.signature.params):
                raise ValueError(
                    f"require for {stmt.func_name!r} has "
                    f"{len(stmt.args)} arguments, expected "
                    f"{len(decl.signature.params)}"
                )
