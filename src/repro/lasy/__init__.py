"""The LaSy front-end language (Fig. 5): parser, runner, codegen."""

from .codegen import compile_python, runtime_namespace, to_csharp, to_python
from .parser import LasyParseError, parse_lasy, parse_lasy_type
from .program import FunctionDecl, LasyProgram, RequireStmt
from .runner import LasyRunResult, resume_lasy, run_lasy, synthesize

__all__ = [
    "FunctionDecl",
    "LasyParseError",
    "LasyProgram",
    "LasyRunResult",
    "RequireStmt",
    "parse_lasy",
    "parse_lasy_type",
    "resume_lasy",
    "run_lasy",
    "synthesize",
    "compile_python",
    "runtime_namespace",
    "to_csharp",
    "to_python",
]
