"""Parser for the LaSy programming-by-example language (Fig. 5).

Grammar::

    P ::= language I; F* E*
    F ::= function t f((t x,)*);  |  lookup t f((t x,)*);
    E ::= require f((V,)*) == V;

LaSy leans on its host language (C# in the paper) for types and literal
values; this parser supports the literal forms the paper's programs use:
double-quoted strings with C-style escapes, integers, ``true``/``false``,
single-quoted chars, and ``{...}`` array literals. Type names are C#-ish:
``string``, ``int``, ``bool``, ``char``, ``T[]``, ``XDocument``,
``XElement``, ``Table``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Tuple

from ..core.dsl import Signature
from ..core.types import (
    BOOL,
    CHAR,
    INT,
    STRING,
    TABLE,
    XML,
    Type,
    list_of,
)
from .program import FunctionDecl, LasyProgram, RequireStmt


class LasyParseError(ValueError):
    """A LaSy source file could not be parsed."""

    def __init__(self, message: str, line: int = 0):
        self.line = line
        super().__init__(f"line {line}: {message}" if line else message)


_TYPE_NAMES = {
    "string": STRING,
    "int": INT,
    "bool": BOOL,
    "char": CHAR,
    "XDocument": XML,
    "XElement": XML,
    "Table": TABLE,
}


def parse_lasy_type(name: str) -> Type:
    """Map a C#-ish LaSy type name onto a core type."""
    name = name.strip()
    if name.endswith("[]"):
        return list_of(parse_lasy_type(name[:-2]))
    if name in _TYPE_NAMES:
        return _TYPE_NAMES[name]
    raise LasyParseError(f"unknown LaSy type {name!r}")


# ---------------------------------------------------------------------
# Lexer

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>//[^\n]*)
  | (?P<string>"(?:\\.|[^"\\])*")
  | (?P<char>'(?:\\.|[^'\\])')
  | (?P<number>-?\d+)
  | (?P<ident>[A-Za-z_][A-Za-z0-9_]*(?:\[\])?)
  | (?P<eqeq>==)
  | (?P<punct>[;(),{}])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


def tokenize(source: str) -> List[Token]:
    tokens: List[Token] = []
    pos = 0
    line = 1
    while pos < len(source):
        match = _TOKEN_RE.match(source, pos)
        if match is None:
            raise LasyParseError(
                f"unexpected character {source[pos]!r}", line
            )
        kind = match.lastgroup or ""
        text = match.group()
        if kind not in ("ws", "comment"):
            tokens.append(Token(kind, text, line))
        line += text.count("\n")
        pos = match.end()
    return tokens


_ESCAPES = {
    "n": "\n",
    "t": "\t",
    "r": "\r",
    '"': '"',
    "'": "'",
    "\\": "\\",
    "0": "\0",
}


def unescape(body: str, line: int = 0) -> str:
    out: List[str] = []
    i = 0
    while i < len(body):
        ch = body[i]
        if ch == "\\":
            i += 1
            if i >= len(body):
                raise LasyParseError("dangling escape in string literal", line)
            esc = body[i]
            if esc not in _ESCAPES:
                raise LasyParseError(f"unknown escape \\{esc}", line)
            out.append(_ESCAPES[esc])
        else:
            out.append(ch)
        i += 1
    return "".join(out)


# ---------------------------------------------------------------------
# Parser


class _Parser:
    def __init__(self, tokens: List[Token]):
        self.tokens = tokens
        self.pos = 0

    def peek(self) -> Optional[Token]:
        return self.tokens[self.pos] if self.pos < len(self.tokens) else None

    def next(self) -> Token:
        token = self.peek()
        if token is None:
            last_line = self.tokens[-1].line if self.tokens else 0
            raise LasyParseError("unexpected end of input", last_line)
        self.pos += 1
        return token

    def expect(self, kind: str, text: Optional[str] = None) -> Token:
        token = self.next()
        if token.kind != kind or (text is not None and token.text != text):
            wanted = text or kind
            raise LasyParseError(
                f"expected {wanted!r}, found {token.text!r}", token.line
            )
        return token

    def expect_ident(self, text: Optional[str] = None) -> Token:
        return self.expect("ident", text)

    # -- grammar ------------------------------------------------------

    def parse_program(self) -> LasyProgram:
        self.expect_ident("language")
        lang = self.expect("ident").text
        self.expect("punct", ";")
        program = LasyProgram(language=lang)
        while self.peek() is not None:
            token = self.peek()
            assert token is not None
            if token.kind == "ident" and token.text in ("function", "lookup"):
                program.declarations.append(self.parse_declaration())
            elif token.kind == "ident" and token.text == "require":
                program.examples.append(self.parse_require())
            else:
                raise LasyParseError(
                    f"expected a declaration or require, found "
                    f"{token.text!r}",
                    token.line,
                )
        program.validate()
        return program

    def parse_declaration(self) -> FunctionDecl:
        keyword = self.next()
        is_lookup = keyword.text == "lookup"
        ret_type = parse_lasy_type(self.expect("ident").text)
        name = self.expect("ident").text
        self.expect("punct", "(")
        params: List[Tuple[str, Type]] = []
        if self.peek() and self.peek().text != ")":
            while True:
                pty = parse_lasy_type(self.expect("ident").text)
                pname = self.expect("ident").text
                params.append((pname, pty))
                token = self.next()
                if token.text == ")":
                    break
                if token.text != ",":
                    raise LasyParseError(
                        f"expected ',' or ')', found {token.text!r}",
                        token.line,
                    )
        else:
            self.expect("punct", ")")
        self.expect("punct", ";")
        return FunctionDecl(
            Signature(name, tuple(params), ret_type), is_lookup=is_lookup
        )

    def parse_require(self) -> RequireStmt:
        self.expect_ident("require")
        name = self.expect("ident").text
        self.expect("punct", "(")
        args: List[Any] = []
        if self.peek() and self.peek().text != ")":
            while True:
                args.append(self.parse_value())
                token = self.next()
                if token.text == ")":
                    break
                if token.text != ",":
                    raise LasyParseError(
                        f"expected ',' or ')', found {token.text!r}",
                        token.line,
                    )
        else:
            self.expect("punct", ")")
        self.expect("eqeq")
        output = self.parse_value()
        self.expect("punct", ";")
        return RequireStmt(name, tuple(args), output)

    def parse_value(self) -> Any:
        token = self.next()
        if token.kind == "string":
            return unescape(token.text[1:-1], token.line)
        if token.kind == "char":
            return unescape(token.text[1:-1], token.line)
        if token.kind == "number":
            return int(token.text)
        if token.kind == "ident" and token.text in ("true", "false"):
            return token.text == "true"
        if token.text == "{":
            items: List[Any] = []
            nxt = self.peek()
            if nxt is not None and nxt.text == "}":
                self.next()
                return tuple(items)
            while True:
                items.append(self.parse_value())
                closing = self.next()
                if closing.text == "}":
                    break
                if closing.text != ",":
                    raise LasyParseError(
                        f"expected ',' or '}}', found {closing.text!r}",
                        closing.line,
                    )
            return tuple(items)
        raise LasyParseError(f"expected a value, found {token.text!r}", token.line)


def parse_lasy(source: str) -> LasyProgram:
    """Parse LaSy source text into a :class:`LasyProgram`.

    >>> prog = parse_lasy('''
    ...     language strings;
    ...     function string F(string a);
    ...     require F("x") == "X";
    ... ''')
    >>> prog.language, prog.declarations[0].name, prog.examples[0].output
    ('strings', 'F', 'X')
    """
    return _Parser(tokenize(source)).parse_program()
