"""Code generation for synthesized programs.

The paper's synthesizer emits C# usable from any .NET program (§3.1);
ours emits readable Python and C#-like source. The emitted code calls
the DSL's component functions by name — pair it with the component
library (``SynthesizedFunction`` remains the executable artifact; the
generated source is the human-auditable one).
"""

from __future__ import annotations

from typing import Any, List

from ..core.dsl import Signature
from ..core.expr import (
    Call,
    Const,
    Expr,
    Foreach,
    ForLoop,
    Hole,
    If,
    Lambda,
    LasyCall,
    Param,
    Recurse,
    Var,
)
from ..core.values import value_repr


def runtime_namespace(dsl) -> dict:
    """A namespace under which :func:`to_python` output executes.

    Maps every DSL component name to its Python implementation and adds
    the loop helpers the emitted code references, so the generated source
    is not just documentation — it runs:

    >>> from repro.lasy.codegen import runtime_namespace, to_python
    """
    namespace: dict = {}
    for func in dsl.functions():
        namespace.setdefault(func.name, func.fn)

    def foreach(source, body):
        acc: list = []
        for i, current in enumerate(source):
            acc.append(body(i, current, tuple(acc)))
        return tuple(acc)

    def foreach_reversed(source, body):
        return foreach(list(reversed(list(source))), body)

    def for_loop(bound, init, body, start=1):
        acc = init
        for i in range(start, bound + 1):
            acc = body(i, acc)
        return acc

    namespace["foreach"] = foreach
    namespace["foreach_reversed"] = foreach_reversed
    namespace["for_loop"] = for_loop
    return namespace


def compile_python(signature: Signature, body: Expr, dsl) -> Any:
    """Emit Python for a synthesized program and return it compiled into
    a callable bound to the DSL's component library."""
    namespace = runtime_namespace(dsl)
    exec(to_python(signature, body), namespace)  # noqa: S102 - our own code
    return namespace[signature.name]


def _py_value(value) -> str:
    if isinstance(value, tuple):
        inner = ", ".join(_py_value(v) for v in value)
        if len(value) == 1:
            inner += ","
        return f"({inner})"
    return repr(value)


def _py_expr(expr: Expr, fn_name: str) -> str:
    if isinstance(expr, Const):
        return _py_value(expr.value)
    if isinstance(expr, (Param, Var)):
        return expr.name
    if isinstance(expr, Call):
        args = ", ".join(_py_expr(a, fn_name) for a in expr.args)
        return f"{expr.func.name}({args})"
    if isinstance(expr, Recurse):
        args = ", ".join(_py_expr(a, fn_name) for a in expr.args)
        return f"{fn_name}({args})"
    if isinstance(expr, LasyCall):
        args = ", ".join(_py_expr(a, fn_name) for a in expr.args)
        return f"{expr.func_name}({args})"
    if isinstance(expr, Lambda):
        names = ", ".join(p.name for p in expr.params)
        return f"lambda {names}: {_py_expr(expr.body, fn_name)}"
    if isinstance(expr, If):
        rendered = _py_expr(expr.orelse, fn_name)
        for guard, body in reversed(expr.branches):
            rendered = (
                f"({_py_expr(body, fn_name)} "
                f"if {_py_expr(guard, fn_name)} else {rendered})"
            )
        return rendered
    if isinstance(expr, Foreach):
        lam = _py_expr(expr.body, fn_name)
        src = _py_expr(expr.source, fn_name)
        helper = "foreach_reversed" if expr.reverse else "foreach"
        return f"{helper}({src}, {lam})"
    if isinstance(expr, ForLoop):
        lam = _py_expr(expr.body, fn_name)
        bound = _py_expr(expr.bound, fn_name)
        init = _py_expr(expr.init, fn_name)
        return f"for_loop({bound}, {init}, {lam}, start={expr.start})"
    if isinstance(expr, Hole):
        return "..."
    raise TypeError(f"cannot emit {type(expr).__name__}")


def to_python(signature: Signature, body: Expr) -> str:
    """Readable Python source for a synthesized function.

    Top-level conditionals and loops become statements; everything else
    is expression-rendered. Component functions are referenced by name.
    """
    params = ", ".join(signature.param_names)
    lines: List[str] = [f"def {signature.name}({params}):"]
    if isinstance(body, If):
        first = True
        for guard, branch in body.branches:
            keyword = "if" if first else "elif"
            first = False
            lines.append(f"    {keyword} {_py_expr(guard, signature.name)}:")
            lines.append(f"        return {_py_expr(branch, signature.name)}")
        lines.append("    else:")
        lines.append(f"        return {_py_expr(body.orelse, signature.name)}")
    elif isinstance(body, Foreach):
        src = _py_expr(body.source, signature.name)
        names = ", ".join(p.name for p in body.body.params)
        items = f"reversed({src})" if body.reverse else src
        lines.append("    acc = []")
        lines.append(f"    for i, current in enumerate({items}):")
        lines.append(
            f"        acc.append((lambda {names}: "
            f"{_py_expr(body.body.body, signature.name)})"
            f"(i, current, tuple(acc)))"
        )
        lines.append("    return tuple(acc)")
    elif isinstance(body, ForLoop):
        bound = _py_expr(body.bound, signature.name)
        init = _py_expr(body.init, signature.name)
        names = ", ".join(p.name for p in body.body.params)
        lines.append(f"    acc = {init}")
        lines.append(f"    for i in range({body.start}, {bound} + 1):")
        lines.append(
            f"        acc = (lambda {names}: "
            f"{_py_expr(body.body.body, signature.name)})(i, acc)"
        )
        lines.append("    return acc")
    else:
        lines.append(f"    return {_py_expr(body, signature.name)}")
    return "\n".join(lines)


# ---------------------------------------------------------------------
# C#-like output


_CSHARP_TYPES = {
    "str": "string",
    "int": "int",
    "bool": "bool",
    "char": "char",
    "xml": "XDocument",
    "table": "Table",
}


def _cs_type(ty) -> str:
    if ty.is_list:
        return f"{_cs_type(ty.args[0])}[]"
    return _CSHARP_TYPES.get(ty.name, ty.name)


def _cs_value(value) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, str):
        escaped = (
            value.replace("\\", "\\\\")
            .replace('"', '\\"')
            .replace("\n", "\\n")
            .replace("\t", "\\t")
        )
        return f'"{escaped}"'
    if isinstance(value, tuple):
        return "new[] {" + ", ".join(_cs_value(v) for v in value) + "}"
    return value_repr(value)


def _cs_expr(expr: Expr, fn_name: str) -> str:
    if isinstance(expr, Const):
        return _cs_value(expr.value)
    if isinstance(expr, (Param, Var)):
        return expr.name
    if isinstance(expr, Call):
        args = ", ".join(_cs_expr(a, fn_name) for a in expr.args)
        return f"{expr.func.name}({args})"
    if isinstance(expr, Recurse):
        args = ", ".join(_cs_expr(a, fn_name) for a in expr.args)
        return f"{fn_name}({args})"
    if isinstance(expr, LasyCall):
        args = ", ".join(_cs_expr(a, fn_name) for a in expr.args)
        return f"{expr.func_name}({args})"
    if isinstance(expr, Lambda):
        names = ", ".join(p.name for p in expr.params)
        return f"({names}) => {_cs_expr(expr.body, fn_name)}"
    if isinstance(expr, If):
        rendered = _cs_expr(expr.orelse, fn_name)
        for guard, body in reversed(expr.branches):
            rendered = (
                f"({_cs_expr(guard, fn_name)} ? "
                f"{_cs_expr(body, fn_name)} : {rendered})"
            )
        return rendered
    if isinstance(expr, Foreach):
        lam = _cs_expr(expr.body, fn_name)
        src = _cs_expr(expr.source, fn_name)
        helper = "ForeachReversed" if expr.reverse else "Foreach"
        return f"{helper}({src}, {lam})"
    if isinstance(expr, ForLoop):
        lam = _cs_expr(expr.body, fn_name)
        bound = _cs_expr(expr.bound, fn_name)
        init = _cs_expr(expr.init, fn_name)
        return f"ForLoop({bound}, {init}, {lam}, {expr.start})"
    if isinstance(expr, Hole):
        return "/* hole */"
    raise TypeError(f"cannot emit {type(expr).__name__}")


def to_csharp(signature: Signature, body: Expr) -> str:
    """C#-like source for a synthesized function (the paper's output
    format)."""
    params = ", ".join(
        f"{_cs_type(ty)} {name}" for name, ty in signature.params
    )
    header = (
        f"{_cs_type(signature.return_type)} {signature.name}({params})"
    )
    lines: List[str] = [header, "{"]
    if isinstance(body, If):
        first = True
        for guard, branch in body.branches:
            keyword = "if" if first else "else if"
            first = False
            lines.append(f"    {keyword} ({_cs_expr(guard, signature.name)})")
            lines.append(
                f"        return {_cs_expr(branch, signature.name)};"
            )
        lines.append("    else")
        lines.append(f"        return {_cs_expr(body.orelse, signature.name)};")
    elif isinstance(body, ForLoop):
        bound = _cs_expr(body.bound, signature.name)
        init = _cs_expr(body.init, signature.name)
        acc_name = body.body.params[-1].name
        i_name = body.body.params[0].name
        lines.append(f"    var {acc_name} = {init};")
        lines.append(
            f"    for (int {i_name} = {body.start}; "
            f"{i_name} <= {bound}; {i_name}++)"
        )
        lines.append(
            f"        {acc_name} = {_cs_expr(body.body.body, signature.name)};"
        )
        lines.append(f"    return {acc_name};")
    else:
        lines.append(f"    return {_cs_expr(body, signature.name)};")
    lines.append("}")
    return "\n".join(lines)
