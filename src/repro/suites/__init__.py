"""Benchmark suites for the four evaluation domains (§6.1)."""

from .benchmark import Benchmark, BenchmarkOutcome
from .strings_suite import STRING_BENCHMARKS
from .tables_suite import TABLE_BENCHMARKS
from .xml_suite import XML_BENCHMARKS

ALL_SUITES = {
    "strings": STRING_BENCHMARKS,
    "tables": TABLE_BENCHMARKS,
    "xml": XML_BENCHMARKS,
}

__all__ = [
    "ALL_SUITES",
    "Benchmark",
    "BenchmarkOutcome",
    "STRING_BENCHMARKS",
    "TABLE_BENCHMARKS",
    "XML_BENCHMARKS",
]
