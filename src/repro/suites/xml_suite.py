"""The XML-transformation benchmark suite (§6.1.3).

Ten help-forum-style tasks, including the two programs of Figs. 3-4
(lists-to-table alignment and class-attribute propagation) and one
cross-domain task that routes through the string bridge.
"""

from __future__ import annotations

from typing import List

from .benchmark import Benchmark

XML_BENCHMARKS: List[Benchmark] = [
    Benchmark(
        name="lists-to-table",
        domain="xml",
        description="align named paragraphs from several divs (Fig. 3)",
        source="""
            language xml;
            function XDocument ToTable(XDocument oldXml);
            require ToTable("<doc><div id='ch1'><p name='a1'>1st Alinea.</p><p name='a1.1'>Zomaar ertussen.</p><p name='a2'>2nd Alinea.</p><p name='a3'>3rd Alinea.</p></div><div id='ch2'><p name='a1'>First Para.</p><p name='a2'>Second Para.</p><p name='a2.1'>Something added here.</p><p name='a3'>Third Para.</p></div></doc>")
                 == "<table><tr><td>1st Alinea.</td><td>First Para.</td></tr><tr><td>Zomaar ertussen.</td><td/></tr><tr><td>2nd Alinea.</td><td>Second Para.</td></tr><tr><td/><td>Something added here.</td></tr><tr><td>3rd Alinea.</td><td>Third Para.</td></tr></table>";
        """,
        holdout=[
            (
                "ToTable",
                (
                    "<doc><div><p name='x'>A</p></div>"
                    "<div><p name='x'>B</p><p name='y'>C</p></div></doc>",
                ),
                "<table><tr><td>A</td><td>B</td></tr>"
                "<tr><td/><td>C</td></tr></table>",
            )
        ],
        hard=True,
    ),
    Benchmark(
        name="add-classes",
        domain="xml",
        description="propagate class attributes to following siblings (Fig. 4)",
        source="""
            language xml;
            function XDocument AddClasses(XDocument oldXml);
            require AddClasses("<doc><p>1</p></doc>") == "<doc><p>1</p></doc>";
            require AddClasses("<doc><p>1</p><p class='a'>2</p><p>3</p><p>4</p><p class='b'>5</p><p>6</p><p class='c'>7</p></doc>")
                 == "<doc><p>1</p><p class='a'>2</p><p class='a'>3</p><p class='a'>4</p><p class='b'>5</p><p class='b'>6</p><p class='c'>7</p></doc>";
        """,
        holdout=[
            (
                "AddClasses",
                ("<doc><p class='z'>1</p><p>2</p></doc>",),
                "<doc><p class='z'>1</p><p class='z'>2</p></doc>",
            )
        ],
    ),
    Benchmark(
        name="rename-bold",
        domain="xml",
        description="rename every <b> to <strong>",
        source="""
            language xml;
            function XDocument Modern(XDocument d);
            require Modern("<doc><b>hi</b><b>there</b></doc>")
                 == "<doc><strong>hi</strong><strong>there</strong></doc>";
        """,
        holdout=[
            (
                "Modern",
                ("<doc><b>x</b></doc>",),
                "<doc><strong>x</strong></doc>",
            )
        ],
    ),
    Benchmark(
        name="items-to-list",
        domain="xml",
        description="rebuild items as an HTML list",
        source="""
            language xml;
            function XElement ToList(XDocument d);
            require ToList("<items><item>alpha</item><item>beta</item></items>")
                 == "<ul><li>alpha</li><li>beta</li></ul>";
        """,
        holdout=[
            (
                "ToList",
                ("<items><item>one</item></items>",),
                "<ul><li>one</li></ul>",
            )
        ],
    ),
    Benchmark(
        name="links-from-images",
        domain="xml",
        description="turn <img src=..> into <a href=..>",
        source="""
            language xml;
            function XDocument Linkify(XDocument d);
            require Linkify("<g><img src='a.png'/><img src='b.png'/></g>")
                 == "<g><a href='a.png'/><a href='b.png'/></g>";
        """,
        holdout=[
            (
                "Linkify",
                ("<g><img src='z.jpg'/></g>",),
                "<g><a href='z.jpg'/></g>",
            )
        ],
        hard=True,
    ),
    Benchmark(
        name="strip-style",
        domain="xml",
        description="remove style attributes from the paragraphs",
        source="""
            language xml;
            function XDocument Clean(XDocument d);
            require Clean("<doc><p style='x'>1</p><p style='y'>2</p></doc>")
                 == "<doc><p>1</p><p>2</p></doc>";
        """,
        holdout=[
            (
                "Clean",
                ("<doc><p style='q'>only</p></doc>",),
                "<doc><p>only</p></doc>",
            )
        ],
    ),
    Benchmark(
        name="first-section",
        domain="xml",
        description="extract the first section element",
        source="""
            language xml;
            function XElement FirstSection(XDocument d);
            require FirstSection("<doc><section>a</section><section>b</section></doc>")
                 == "<section>a</section>";
            require FirstSection("<doc><intro/><section>z</section></doc>")
                 == "<section>z</section>";
        """,
        holdout=[
            (
                "FirstSection",
                ("<doc><section>only</section></doc>",),
                "<section>only</section>",
            )
        ],
    ),
    Benchmark(
        name="filter-highlights",
        domain="xml",
        description="keep only the highlighted paragraphs",
        source="""
            language xml;
            function XDocument Highlights(XDocument d);
            require Highlights("<doc><p kind='hl'>a</p><p>b</p><p kind='hl'>c</p></doc>")
                 == "<doc><p kind='hl'>a</p><p kind='hl'>c</p></doc>";
        """,
        holdout=[
            (
                "Highlights",
                ("<doc><p>x</p><p kind='hl'>y</p></doc>",),
                "<doc><p kind='hl'>y</p></doc>",
            )
        ],
        hard=True,
    ),
    Benchmark(
        name="title-from-text",
        domain="xml",
        description="wrap the document text into a title element",
        source="""
            language xml;
            function XElement Title(XDocument d);
            require Title("<doc><h>Hello</h></doc>") == "<title>Hello</title>";
            require Title("<doc><h>Report 7</h></doc>") == "<title>Report 7</title>";
        """,
        holdout=[
            ("Title", ("<doc><h>Z</h></doc>",), "<title>Z</title>"),
        ],
    ),
    Benchmark(
        name="bold-via-strings",
        domain="xml",
        description="cross-domain: build markup through the string bridge",
        source="""
            language xml;
            function XElement Boldify(XDocument d);
            require Boldify("<doc><h>win</h></doc>") == "<b>win</b>";
            require Boldify("<doc><h>go</h></doc>") == "<b>go</b>";
        """,
        holdout=[
            ("Boldify", ("<doc><h>yes</h></doc>",), "<b>yes</b>"),
        ],
    ),
]
