"""The table-transformation benchmark suite (§6.1.2).

Eight normalization scenarios in the style of Harris & Gulwani's
help-forum benchmarks, including the subheader-normalization cases the
paper's extended grammar adds. Tables are written as nested LaSy array
literals (rows of strings).
"""

from __future__ import annotations

from typing import List

from .benchmark import Benchmark

TABLE_BENCHMARKS: List[Benchmark] = [
    Benchmark(
        name="transpose",
        domain="tables",
        description="rows-to-columns layout flip",
        source="""
            language tables;
            function Table Flip(Table t);
            require Flip({{"a", "b"}, {"1", "2"}, {"3", "4"}})
                 == {{"a", "1", "3"}, {"b", "2", "4"}};
        """,
        holdout=[
            (
                "Flip",
                ((("x", "y", "z"), ("1", "2", "3")),),
                (("x", "1"), ("y", "2"), ("z", "3")),
            )
        ],
    ),
    Benchmark(
        name="drop-header",
        domain="tables",
        description="remove the header row",
        source="""
            language tables;
            function Table Body(Table t);
            require Body({{"name", "age"}, {"ann", "31"}, {"bo", "25"}})
                 == {{"ann", "31"}, {"bo", "25"}};
            require Body({{"h1", "h2"}, {"v", "w"}})
                 == {{"v", "w"}};
        """,
        holdout=[
            ("Body", ((("a", "b"), ("c", "d"), ("e", "f")),), (("c", "d"), ("e", "f"))),
        ],
    ),
    Benchmark(
        name="unpivot-wide",
        domain="tables",
        description="wide spreadsheet to long relational form",
        source="""
            language tables;
            function Table Normalize(Table t);
            require Normalize({{"name", "jan", "feb"},
                               {"ann", "3", "4"},
                               {"bo", "", "7"}})
                 == {{"ann", "jan", "3"},
                     {"ann", "feb", "4"},
                     {"bo", "feb", "7"}};
        """,
        holdout=[
            (
                "Normalize",
                (
                    (
                        ("id", "q1", "q2"),
                        ("x", "1", ""),
                        ("y", "5", "6"),
                    ),
                ),
                (("x", "q1", "1"), ("y", "q1", "5"), ("y", "q2", "6")),
            )
        ],
    ),
    Benchmark(
        name="fill-down-keys",
        domain="tables",
        description="fill blank key cells from the row above",
        source="""
            language tables;
            function Table Fill(Table t);
            require Fill({{"east", "a", "1"},
                          {"", "b", "2"},
                          {"west", "c", "3"},
                          {"", "d", "4"}})
                 == {{"east", "a", "1"},
                     {"east", "b", "2"},
                     {"west", "c", "3"},
                     {"west", "d", "4"}};
        """,
        holdout=[
            (
                "Fill",
                ((("k", "1"), ("", "2"), ("", "3")),),
                (("k", "1"), ("k", "2"), ("k", "3")),
            )
        ],
    ),
    Benchmark(
        name="promote-subheaders",
        domain="tables",
        description="turn one-cell subheader rows into a key column",
        source="""
            language tables;
            function Table Promote(Table t);
            require Promote({{"Fruit", ""},
                             {"apple", "3"},
                             {"pear", "5"},
                             {"Veg", ""},
                             {"leek", "2"}})
                 == {{"Fruit", "apple", "3"},
                     {"Fruit", "pear", "5"},
                     {"Veg", "leek", "2"}};
        """,
        holdout=[
            (
                "Promote",
                ((("A", ""), ("x", "1"), ("B", ""), ("y", "2")),),
                (("A", "x", "1"), ("B", "y", "2")),
            )
        ],
    ),
    Benchmark(
        name="delete-blank-rows",
        domain="tables",
        description="drop fully blank spacer rows",
        source="""
            language tables;
            function Table Compact(Table t);
            require Compact({{"a", "1"}, {"", ""}, {"b", "2"}, {"", ""}})
                 == {{"a", "1"}, {"b", "2"}};
            require Compact({{"", ""}, {"x", "y"}})
                 == {{"x", "y"}};
        """,
        holdout=[
            ("Compact", ((("", ""), ("p", "q"), ("", "")),), (("p", "q"),)),
        ],
    ),
    Benchmark(
        name="reverse-columns",
        domain="tables",
        description="mirror every row (a MapRows loop)",
        source="""
            language tables;
            function Table Mirror(Table t);
            require Mirror({{"a", "b", "c"}, {"1", "2", "3"}})
                 == {{"c", "b", "a"}, {"3", "2", "1"}};
        """,
        holdout=[
            ("Mirror", ((("x", "y"), ("u", "v")),), (("y", "x"), ("v", "u"))),
        ],
    ),
    Benchmark(
        name="move-footer-up",
        domain="tables",
        description="move the summary footer row to the top",
        source="""
            language tables;
            function Table FooterFirst(Table t);
            require FooterFirst({{"a", "1"}, {"b", "2"}, {"total", "3"}})
                 == {{"total", "3"}, {"a", "1"}, {"b", "2"}};
            require FooterFirst({{"x", "9"}, {"total", "9"}})
                 == {{"total", "9"}, {"x", "9"}};
            require FooterFirst({{"q", "1"}, {"r", "5"}, {"s", "2"}, {"total", "8"}})
                 == {{"total", "8"}, {"q", "1"}, {"r", "5"}, {"s", "2"}};
        """,
        holdout=[
            (
                "FooterFirst",
                ((("r", "0"), ("s", "1"), ("t", "2"), ("total", "3")),),
                (("total", "3"), ("r", "0"), ("s", "1"), ("t", "2")),
            )
        ],
        hard=True,
    ),
]
