"""Benchmark definitions shared by the suites and the experiment harness."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Tuple

from ..core.budget import Budget
from ..core.tds import TdsOptions
from ..lasy.parser import parse_lasy
from ..lasy.runner import LasyRunResult, run_lasy


@dataclass
class Benchmark:
    """One benchmark: a LaSy program plus optional held-out checks.

    ``holdout`` entries are (function name, args, expected output)
    triples *not* shown to the synthesizer; they check that the
    synthesized program generalized rather than memorized.
    """

    name: str
    source: str
    domain: str
    description: str = ""
    holdout: List[Tuple[str, Tuple[Any, ...], Any]] = field(
        default_factory=list
    )
    # Difficulty hint used by the experiment harness to size budgets.
    hard: bool = False

    def n_examples(self) -> int:
        return len(parse_lasy(self.source).examples)

    def run(
        self,
        budget_factory: Optional[Callable[[], Budget]] = None,
        options: Optional[TdsOptions] = None,
    ) -> LasyRunResult:
        program = parse_lasy(self.source)
        return run_lasy(
            program, budget_factory=budget_factory, options=options
        )

    def check_holdout(self, result: LasyRunResult) -> bool:
        """All held-out checks pass on the synthesized functions."""
        from ..core.values import structurally_equal
        from ..domains.registry import get_domain

        domain = get_domain(self.domain)
        program = parse_lasy(self.source)
        for func_name, args, expected in self.holdout:
            fn = result.functions.get(func_name)
            if fn is None:
                return False
            signature = program.declaration(func_name).signature
            coerced_args = tuple(
                domain.coerce(ty, value)
                for (_, ty), value in zip(signature.params, args)
            )
            coerced_expected = domain.coerce(signature.return_type, expected)
            try:
                actual = fn(*coerced_args)
            except Exception:
                return False
            if not structurally_equal(actual, coerced_expected):
                return False
        return True


@dataclass
class BenchmarkOutcome:
    """Result of running one benchmark through the synthesizer."""

    benchmark: Benchmark
    success: bool
    holdout_ok: bool
    elapsed: float
    dbs_times: List[float]

    @property
    def name(self) -> str:
        return self.benchmark.name

    def to_dict(self) -> dict:
        """JSON-able form for the checkpoint journal (the benchmark
        itself is referenced by name; the resuming run re-binds it)."""
        return {
            "name": self.name,
            "success": self.success,
            "holdout_ok": self.holdout_ok,
            "elapsed": self.elapsed,
            "dbs_times": list(self.dbs_times),
        }

    @classmethod
    def from_dict(cls, data: dict, benchmark: Benchmark) -> "BenchmarkOutcome":
        return cls(
            benchmark=benchmark,
            success=bool(data["success"]),
            holdout_ok=bool(data["holdout_ok"]),
            elapsed=float(data["elapsed"]),
            dbs_times=[float(t) for t in data.get("dbs_times", [])],
        )
