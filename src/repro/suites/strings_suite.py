"""The string-transformation benchmark suite (§6.1.1).

Fifteen example sequences: FlashFill-style tasks from Gulwani (POPL'11)
expressible in the original DSL, seven tasks that need the Fig. 6
extensions (nested substrings, loop-variable positions, SplitAndMerge,
lookups via helper functions), and greedy word wrap (§2.1, Fig. 1).
"""

from __future__ import annotations

from typing import List

from .benchmark import Benchmark

STRING_BENCHMARKS: List[Benchmark] = [
    # ---- FlashFill-expressible tasks -------------------------------
    Benchmark(
        name="surname-initial",
        domain="strings",
        description="'Dan Grossman' -> 'Grossman, D.' (POPL'11 style)",
        source="""
            language strings;
            function string Format(string name);
            require Format("Dan Grossman") == "Grossman, D.";
            require Format("Sumit Gulwani") == "Gulwani, S.";
        """,
        holdout=[("Format", ("Peter Provost",), "Provost, P.")],
    ),
    Benchmark(
        name="initials",
        domain="strings",
        description="'Dan Grossman' -> 'D.G.'",
        source="""
            language strings;
            function string Initials(string name);
            require Initials("Dan Grossman") == "D.G.";
            require Initials("Ada Lovelace") == "A.L.";
            require Initials("Alonzo The Church") == "A.T.";
        """,
        holdout=[("Initials", ("Grace Hopper",), "G.H.")],
    ),
    Benchmark(
        name="extract-domain",
        domain="strings",
        description="'user@host.com' -> 'host.com'",
        source="""
            language strings;
            function string Domain(string email);
            require Domain("alice@example.com") == "example.com";
            require Domain("bob@research.org") == "research.org";
        """,
        holdout=[("Domain", ("carol@city.edu",), "city.edu")],
    ),
    Benchmark(
        name="extract-quantity",
        domain="strings",
        description="'34 lbs' -> '34'",
        source="""
            language strings;
            function string Quantity(string s);
            require Quantity("34 lbs") == "34";
            require Quantity("7 oz") == "7";
        """,
        holdout=[("Quantity", ("128 kg",), "128")],
    ),
    Benchmark(
        name="parenthesize",
        domain="strings",
        description="'John' -> '(John)'",
        source="""
            language strings;
            function string Paren(string s);
            require Paren("John") == "(John)";
            require Paren("Mary Ann") == "(Mary Ann)";
        """,
        holdout=[("Paren", ("x",), "(x)")],
    ),
    Benchmark(
        name="date-reorder",
        domain="strings",
        description="'01/21/2001' -> '21-01-2001'",
        source="""
            language strings;
            function string Reorder(string d);
            require Reorder("01/21/2001") == "21-01-2001";
            require Reorder("12/03/1999") == "03-12-1999";
            require Reorder("07/30/2024") == "30-07-2024";
        """,
        holdout=[("Reorder", ("04/15/2010",), "15-04-2010")],
    ),
    Benchmark(
        name="drop-extension",
        domain="strings",
        description="'report.pdf' -> 'report'",
        source="""
            language strings;
            function string Stem(string f);
            require Stem("report.pdf") == "report";
            require Stem("archive.tar") == "archive";
        """,
        holdout=[("Stem", ("notes.txt",), "notes")],
    ),
    Benchmark(
        name="last-word",
        domain="strings",
        description="'one two three' -> 'three'",
        source="""
            language strings;
            function string LastWord(string s);
            require LastWord("one two three") == "three";
            require LastWord("hello world") == "world";
        """,
        holdout=[("LastWord", ("just one more test",), "test")],
    ),
    # ---- tasks needing the Fig. 6 extensions ------------------------
    Benchmark(
        name="two-digit-year",
        domain="strings",
        description="two-digit year from a date (nested substrings)",
        source="""
            language strings;
            function string Year2(string d);
            require Year2("03/15/2012") == "12";
            require Year2("1/2/1998") == "98";
            require Year2("5/6/2023 AD") == "23";
        """,
        holdout=[("Year2", ("11/30/2047 AD",), "47")],
        hard=True,
    ),
    Benchmark(
        name="reverse-string",
        domain="strings",
        description="reverse (loop-variable-dependent substring indexes)",
        source="""
            language strings;
            function string Rev(string s);
            require Rev("ab") == "ba";
            require Rev("abc") == "cba";
            require Rev("abcd") == "dcba";
        """,
        holdout=[("Rev", ("xyzw",), "wzyx")],
        hard=True,
    ),
    Benchmark(
        name="bib-venue",
        domain="strings",
        description="bibliography entry conversion with a lookup (Fig. 2)",
        source="""
            language strings;
            lookup string VenueFullName(string abbr);
            function string Cite(string entry);
            require VenueFullName("PLDI") == "Programming Language Design and Implementation";
            require VenueFullName("POPL") == "Principles of Programming Languages";
            require VenueFullName("ICSE") == "International Conference on Software Engineering";
            require Cite("Smith PLDI") == "Smith, Programming Language Design and Implementation.";
            require Cite("Jones POPL") == "Jones, Principles of Programming Languages.";
        """,
        holdout=[
            (
                "Cite",
                ("Brown ICSE",),
                "Brown, International Conference on Software Engineering.",
            )
        ],
        hard=True,
    ),
    Benchmark(
        name="split-merge-list",
        domain="strings",
        description="resegment a separated list (SplitAndMerge)",
        source="""
            language strings;
            function string Reseparate(string s);
            require Reseparate("alice,bob,carol") == "alice; bob; carol";
            require Reseparate("x,y") == "x; y";
            require Reseparate("a,b,c,d") == "a; b; c; d";
        """,
        holdout=[("Reseparate", ("p,q,r",), "p; q; r")],
    ),
    Benchmark(
        name="prefix-lines",
        domain="strings",
        description="bullet every line (SplitAndMerge with a loop body)",
        source="""
            language strings;
            function string Bullets(string s);
            require Bullets("alpha\\nbeta") == "- alpha\\n- beta";
            require Bullets("one") == "- one";
            require Bullets("a\\nbb\\nccc") == "- a\\n- bb\\n- ccc";
        """,
        holdout=[("Bullets", ("w\nx\ny\nz",), "- w\n- x\n- y\n- z")],
        hard=True,
    ),
    Benchmark(
        name="abbrev-dotted",
        domain="strings",
        description="'International Business Machines' -> 'I.B.M.' (Loop)",
        source="""
            language strings;
            function string Abbrev(string s);
            require Abbrev("International Business Machines") == "I.B.M.";
            require Abbrev("Central Processing Unit") == "C.P.U.";
        """,
        holdout=[("Abbrev", ("Full Time Job",), "F.T.J.")],
        hard=True,
    ),
    # ---- word wrap (§2.1, Fig. 1) -----------------------------------
    Benchmark(
        name="word-wrap",
        domain="strings",
        description="greedy word wrap, built up per the Fig. 1 sequence",
        source="""
            language strings;
            function string WordWrap(string text, int length);
            // Single word doesn't wrap.
            require WordWrap("Word", 4) == "Word";
            // Two words wrap when longer than line.
            require WordWrap("Extremely longWords", 14) == "Extremely\\nlongWords";
            // Wrap as late as possible...
            require WordWrap("How are", 76) == "How are";
            // ... but no later.
            require WordWrap("How are you?", 9) == "How are\\nyou?";
            require WordWrap("Hello, how are you today?", 14) == "Hello, how are\\nyou today?";
            // Wrap in middle of word.
            require WordWrap("Abcdef", 5) == "Abcde\\nf";
            require WordWrap("ThisIsAVeryLongWord a", 15) == "ThisIsAVeryLong\\nWord a";
            // Wrap multiple times (using recursion).
            require WordWrap("How are you?", 4) == "How\\nare\\nyou?";
            // Complicated test to ensure program is correct.
            require WordWrap("This is a longer test sentence. a bc", 7) == "This is\\na\\nlonger\\ntest\\nsentenc\\ne. a bc";
        """,
        holdout=[("WordWrap", ("one two three", 7), "one two\nthree")],
        hard=True,
    ),
]
