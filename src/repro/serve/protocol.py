"""The wire protocol: JSON objects, one per line, over a byte stream.

A connection carries any number of requests; the server answers each
with exactly one response line, in request order per connection (the
synthesis itself runs concurrently across connections). Both sides are
plain ``\\n``-terminated UTF-8 JSON — debuggable with ``nc``.

Request::

    {"id": 7, "op": "synthesize", "program": "<lasy source>",
     "timeout_s": 10.0, "schedule": "adaptive"}

``op`` is one of ``synthesize``, ``ping``, ``stats``, ``shutdown``.
``id`` is echoed back verbatim (any JSON value); omitted means null.
``schedule`` (optional) picks the example scheduler for this request —
``fifo`` (default), ``adaptive`` or ``representative`` (see
docs/scheduling.md); an unknown name is a ``bad-request``.

Response::

    {"id": 7, "ok": true, ...op-specific fields...}
    {"id": 7, "ok": false, "error": {"code": "overloaded",
     "message": "..."}}

Error codes: ``bad-request`` (malformed JSON / unknown op / missing
field), ``parse-error`` (LaSy source didn't parse), ``overloaded``
(admission control: queue full — retry later), ``internal``. A
*synthesis timeout* is not an error: the run truncates cooperatively
and the response reports ``ok: true`` with ``success: false`` and the
per-function ``timeout_reason`` (docs/service.md).
"""

from __future__ import annotations

import json
from typing import Any, Dict

PROTOCOL_VERSION = 1

# Refuse absurd lines before json.loads allocates; a LaSy program of
# this size is far beyond anything the engine can synthesize anyway.
MAX_LINE_BYTES = 4 * 1024 * 1024


class ProtocolError(Exception):
    """A malformed frame (not valid JSON, not an object, too large)."""


def encode(message: Dict[str, Any]) -> bytes:
    """One response/request as a newline-terminated JSON line."""
    return json.dumps(message, separators=(",", ":")).encode("utf-8") + b"\n"


def decode_line(line: bytes) -> Dict[str, Any]:
    """Parse one frame; raises :class:`ProtocolError` on garbage."""
    if len(line) > MAX_LINE_BYTES:
        raise ProtocolError(f"frame exceeds {MAX_LINE_BYTES} bytes")
    try:
        message = json.loads(line.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"bad JSON frame: {exc}")
    if not isinstance(message, dict):
        raise ProtocolError("frame must be a JSON object")
    return message


def ok_response(request_id: Any, **fields: Any) -> Dict[str, Any]:
    out: Dict[str, Any] = {"id": request_id, "ok": True}
    out.update(fields)
    return out


def error_response(
    request_id: Any, code: str, message: str, **fields: Any
) -> Dict[str, Any]:
    out: Dict[str, Any] = {
        "id": request_id,
        "ok": False,
        "error": {"code": code, "message": message},
    }
    out.update(fields)
    return out
