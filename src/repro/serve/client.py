"""A minimal blocking client for the synthesis service.

Deliberately socket-and-json only: anything that can open a TCP
connection and write a JSON line can talk to the server; this module
is just the convenient Python spelling of that (and what the CLI's
``repro request`` and the tests use).
"""

from __future__ import annotations

import json
import socket
from typing import Any, Dict

from .protocol import MAX_LINE_BYTES


class ServiceError(Exception):
    """The server answered with ``ok: false`` (code/message attached)."""

    def __init__(self, code: str, message: str, response: Dict[str, Any]):
        super().__init__(f"{code}: {message}")
        self.code = code
        self.response = response


def request(
    payload: Dict[str, Any],
    host: str = "127.0.0.1",
    port: int = 7337,
    timeout: float = 120.0,
    check: bool = False,
) -> Dict[str, Any]:
    """Send one request, wait for its one-line response.

    ``timeout`` bounds the whole round trip (connect + synthesis);
    size it above the request's ``timeout_s``. With ``check=True`` an
    ``ok: false`` response raises :class:`ServiceError` instead of
    being returned.
    """
    with socket.create_connection((host, port), timeout=timeout) as sock:
        stream = sock.makefile("rwb")
        stream.write(
            json.dumps(payload, separators=(",", ":")).encode("utf-8") + b"\n"
        )
        stream.flush()
        line = stream.readline(MAX_LINE_BYTES + 1)
    if not line:
        raise ConnectionError("server closed the connection mid-request")
    response = json.loads(line.decode("utf-8"))
    if check and not response.get("ok"):
        error = response.get("error") or {}
        raise ServiceError(
            error.get("code", "unknown"),
            error.get("message", "unknown error"),
            response,
        )
    return response
