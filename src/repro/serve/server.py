"""The asyncio synthesis server.

One process hosts one :class:`SynthesisServer`: an ``asyncio`` TCP
listener that reads JSON-line requests (see :mod:`.protocol`), runs the
actual synthesis on a small thread pool (the engine is synchronous,
CPU-bound Python), and multiplexes every request over one shared
:class:`~repro.core.engine.cache.SessionCache` — so a repeated or
prefix-extended request checks out a warm session and skips the TDS
iterations it already ran (docs/service.md).

Admission control is two-layered:

* a **queue depth** — at most ``queue_depth`` synthesize requests may
  be admitted (running or waiting for a worker thread) at once; past
  that the server answers ``overloaded`` immediately instead of letting
  latency grow without bound;
* a **per-request deadline** — ``timeout_s`` (request field, default
  from config) arms the engine's hard wall
  (:class:`~repro.core.budget.Deadline`) plus a
  :class:`~repro.core.budget.CancelToken` the connection handler fires
  if the client goes away, so an abandoned request stops burning a
  worker within one cooperative check.

The cache journals checked-in sessions to ``journal_path`` (an
:class:`~repro.exec.checkpoint.Journal`), so a killed-and-restarted
server comes back warm.
"""

from __future__ import annotations

import asyncio
import dataclasses
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Any, Callable, Dict, Optional

from ..core.budget import Budget, CancelToken
from ..core.engine.cache import SessionCache
from ..core.tds import TdsOptions
from ..obs import metrics as obs_metrics
from ..obs.trace import NULL_TRACER, get_tracer, set_thread_tracer
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
)


@dataclass
class ServerConfig:
    """Knobs for one server instance (the CLI mirrors these 1:1)."""

    host: str = "127.0.0.1"
    port: int = 0  # 0 = let the OS pick; see SynthesisServer.address
    max_workers: int = 2
    queue_depth: int = 8
    cache_size: int = 8
    journal_path: Optional[str] = None
    # Hard wall per synthesize request when the request names none.
    # None = unbounded (the per-DBS soft budget still applies).
    default_timeout_s: Optional[float] = 20.0
    budget_factory: Optional[Callable[[], Budget]] = None
    options: Optional[TdsOptions] = None


class SynthesisServer:
    """JSON-lines synthesis service over one warm session cache."""

    def __init__(
        self,
        config: Optional[ServerConfig] = None,
        metrics: Optional[obs_metrics.Registry] = None,
    ) -> None:
        self.config = config or ServerConfig()
        self.metrics = metrics if metrics is not None else obs_metrics.GLOBAL
        self.cache = SessionCache(
            capacity=self.config.cache_size,
            metrics=self.metrics,
            journal_path=self.config.journal_path,
        )
        # Tracers are LIFO per thread and not thread-safe; with more
        # than one worker each thread gets the null tracer so parallel
        # requests can't interleave spans (run --max-workers 1 to
        # capture synthesis spans in a --trace).
        initializer = (
            (lambda: set_thread_tracer(NULL_TRACER))
            if self.config.max_workers > 1
            else None
        )
        self._executor = ThreadPoolExecutor(
            max_workers=max(1, self.config.max_workers),
            thread_name_prefix="repro-serve",
            initializer=initializer,
        )
        self._inflight = 0
        self._server: Optional[asyncio.AbstractServer] = None
        self._shutdown = asyncio.Event()
        self._c_requests = self.metrics.counter("serve.requests")
        self._c_rejected = self.metrics.counter("serve.rejected")
        self._c_errors = self.metrics.counter("serve.errors")
        self._c_timeouts = self.metrics.counter("serve.timeouts")

    # -- lifecycle ---------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection, self.config.host, self.config.port
        )

    @property
    def address(self) -> tuple:
        """The bound ``(host, port)`` — resolves port 0 to the real one."""
        assert self._server is not None, "server not started"
        return self._server.sockets[0].getsockname()[:2]

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or task cancellation)."""
        assert self._server is not None, "server not started"
        async with self._server:
            await self._shutdown.wait()
        await self.aclose()

    async def aclose(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._executor.shutdown(wait=True)
        # Suspended sessions are already journaled at release; close
        # just drops the in-memory map and the journal handle.
        self.cache.close()

    # -- connection handling -----------------------------------------------

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Fired when the client disconnects; every synthesis running on
        # behalf of this connection checks it cooperatively.
        gone = CancelToken()
        try:
            while True:
                try:
                    line = await reader.readline()
                except (ConnectionResetError, asyncio.IncompleteReadError):
                    break
                except asyncio.CancelledError:
                    # Server shutdown cancels handlers parked between
                    # requests; close the connection quietly instead of
                    # letting the cancellation surface as a logged
                    # traceback in the streams callback.
                    break
                if not line:
                    break
                if line.strip() == b"":
                    continue
                try:
                    message = decode_line(line)
                except ProtocolError as exc:
                    response = error_response(None, "bad-request", str(exc))
                else:
                    response = await self._dispatch(message, gone)
                writer.write(encode(response))
                try:
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError):
                    break
        finally:
            gone.cancel("client disconnected")
            writer.close()
            try:
                await writer.wait_closed()
            except (
                ConnectionResetError,
                BrokenPipeError,
                asyncio.CancelledError,
            ):
                pass

    async def _dispatch(
        self, message: Dict[str, Any], gone: CancelToken
    ) -> Dict[str, Any]:
        request_id = message.get("id")
        op = message.get("op")
        self._c_requests.inc()
        if op == "ping":
            return ok_response(request_id, version=PROTOCOL_VERSION)
        if op == "stats":
            return ok_response(
                request_id,
                version=PROTOCOL_VERSION,
                inflight=self._inflight,
                cache=self.cache.stats(),
                counters={
                    "requests": self._c_requests.value,
                    "rejected": self._c_rejected.value,
                    "errors": self._c_errors.value,
                    "timeouts": self._c_timeouts.value,
                },
            )
        if op == "shutdown":
            self._shutdown.set()
            return ok_response(request_id)
        if op == "synthesize":
            return await self._synthesize(request_id, message, gone)
        self._c_errors.inc()
        return error_response(
            request_id, "bad-request", f"unknown op {op!r}"
        )

    async def _synthesize(
        self, request_id: Any, message: Dict[str, Any], gone: CancelToken
    ) -> Dict[str, Any]:
        source = message.get("program")
        if not isinstance(source, str) or not source.strip():
            self._c_errors.inc()
            return error_response(
                request_id, "bad-request", "missing 'program' (LaSy source)"
            )
        timeout_s = message.get("timeout_s", self.config.default_timeout_s)
        if timeout_s is not None and not isinstance(timeout_s, (int, float)):
            self._c_errors.inc()
            return error_response(
                request_id, "bad-request", "'timeout_s' must be a number"
            )
        # Per-request example scheduler ("schedule": "fifo" | "adaptive"
        # | "representative"); None falls back to the server's options.
        # A different scheduler keys a different cached session, so a
        # client's choice never poisons another client's warm state.
        schedule = message.get("schedule")
        if schedule is not None:
            from ..core.engine.schedule import SCHEDULERS

            if not isinstance(schedule, str) or schedule not in SCHEDULERS.names():
                self._c_errors.inc()
                return error_response(
                    request_id,
                    "bad-request",
                    f"'schedule' must be one of {SCHEDULERS.names()}",
                )
        # Admission control: count a request from acceptance to
        # completion (queued-for-a-worker time included — that wait is
        # exactly the latency the bound protects).
        if self._inflight >= self.config.queue_depth:
            self._c_rejected.inc()
            return error_response(
                request_id,
                "overloaded",
                f"queue full ({self._inflight} requests in flight); "
                "retry later",
                queue_depth=self.config.queue_depth,
            )
        self._inflight += 1
        with get_tracer().span("serve.request", op="synthesize") as span:
            try:
                loop = asyncio.get_running_loop()
                response = await loop.run_in_executor(
                    self._executor,
                    self._run_synthesis,
                    request_id,
                    source,
                    timeout_s,
                    schedule,
                    gone,
                )
            except Exception as exc:  # pragma: no cover - defensive
                self._c_errors.inc()
                response = error_response(request_id, "internal", str(exc))
            finally:
                self._inflight -= 1
            span.set(ok=response.get("ok", False))
        return response

    # -- the worker-thread side --------------------------------------------

    def _run_synthesis(
        self,
        request_id: Any,
        source: str,
        timeout_s: Optional[float],
        schedule: Optional[str],
        gone: CancelToken,
    ) -> Dict[str, Any]:
        from ..lasy.parser import LasyParseError, parse_lasy
        from ..lasy.runner import run_lasy

        try:
            program = parse_lasy(source)
        except LasyParseError as exc:
            self._c_errors.inc()
            return error_response(request_id, "parse-error", str(exc))
        options = self.config.options or TdsOptions()
        # The request's hard wall overrides the config default; 0 (or
        # null in the request) lifts it.
        options = dataclasses.replace(
            options, timeout_s=timeout_s if timeout_s else None
        )
        if schedule is not None:
            options = dataclasses.replace(options, schedule=schedule)
        start = time.monotonic()
        try:
            result = run_lasy(
                program,
                budget_factory=self.config.budget_factory,
                options=options,
                session_cache=self.cache,
                cancel=gone,
            )
        except LasyParseError as exc:  # unknown language, bad decl
            self._c_errors.inc()
            return error_response(request_id, "parse-error", str(exc))
        except (KeyError, ValueError) as exc:
            self._c_errors.inc()
            return error_response(request_id, "bad-request", str(exc))
        elapsed = time.monotonic() - start

        functions: Dict[str, Any] = {}
        for name, fn in result.functions.items():
            body = getattr(fn, "body", None)
            functions[name] = {
                "program": None if body is None else str(body),
                "lookup": body is None,
            }
        timeout_reasons: Dict[str, str] = {}
        for name, fn_result in result.results.items():
            for step in fn_result.steps:
                if step.action == "timeout" and step.timeout_reason:
                    timeout_reasons[name] = step.timeout_reason
        if result.truncated:
            self._c_timeouts.inc()
        return ok_response(
            request_id,
            success=result.success,
            elapsed=round(elapsed, 6),
            functions=functions,
            cache=result.cache_info,
            truncated=result.truncated,
            timeout_reasons=timeout_reasons,
        )


async def run_server(
    config: ServerConfig,
    ready: Optional[Callable[[str, int], None]] = None,
) -> None:
    """Start a server and run it until shutdown; ``ready`` is called
    with the bound (host, port) once the socket is listening."""
    server = SynthesisServer(config)
    await server.start()
    if ready is not None:
        host, port = server.address
        ready(host, port)
    await server.serve_until_shutdown()
