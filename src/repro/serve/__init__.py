"""Synthesis as a service: an asyncio front-end over the engine cache.

The server multiplexes concurrent synthesis requests over one
process-wide :class:`~repro.core.engine.cache.SessionCache`, so repeated
or prefix-extending requests reuse warm component pools instead of
rebuilding them (docs/service.md). Everything here is stdlib-only.
"""

from .client import ServiceError, request
from .protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_line,
    encode,
    error_response,
    ok_response,
)
from .server import ServerConfig, SynthesisServer

__all__ = [
    "PROTOCOL_VERSION",
    "ProtocolError",
    "ServerConfig",
    "ServiceError",
    "SynthesisServer",
    "decode_line",
    "encode",
    "error_response",
    "ok_response",
    "request",
]
