#!/usr/bin/env python3
"""XML transformations (§2.2, Figs. 3-4) through the LaSy front end.

Runs the paper's two showcase XML programs: aligning named paragraphs
from several <div>s into a table (Fig. 3) and propagating class
attributes to following siblings (Fig. 4)."""

from repro.core import Budget
from repro.lasy import synthesize

LISTS_TO_TABLE = """
language xml;
function XDocument ToTable(XDocument oldXml);
require ToTable("<doc><div id='ch1'><p name='a1'>1st Alinea.</p><p name='a1.1'>Zomaar ertussen.</p><p name='a2'>2nd Alinea.</p><p name='a3'>3rd Alinea.</p></div><div id='ch2'><p name='a1'>First Para.</p><p name='a2'>Second Para.</p><p name='a2.1'>Something added here.</p><p name='a3'>Third Para.</p></div></doc>")
     == "<table><tr><td>1st Alinea.</td><td>First Para.</td></tr><tr><td>Zomaar ertussen.</td><td/></tr><tr><td>2nd Alinea.</td><td>Second Para.</td></tr><tr><td/><td>Something added here.</td></tr><tr><td>3rd Alinea.</td><td>Third Para.</td></tr></table>";
"""

ADD_CLASSES = """
language xml;
function XDocument AddClasses(XDocument oldXml);
require AddClasses("<doc><p>1</p></doc>") == "<doc><p>1</p></doc>";
require AddClasses("<doc><p>1</p><p class='a'>2</p><p>3</p><p>4</p><p class='b'>5</p><p>6</p><p class='c'>7</p></doc>")
     == "<doc><p>1</p><p class='a'>2</p><p class='a'>3</p><p class='a'>4</p><p class='b'>5</p><p class='b'>6</p><p class='c'>7</p></doc>";
"""


def main() -> None:
    budget = lambda: Budget(max_seconds=30, max_expressions=300_000)

    print("== Fig. 3: lists to table ==")
    result = synthesize(LISTS_TO_TABLE, budget_factory=budget)
    print("success:", result.success, f"({result.elapsed:.1f}s)")
    print("program:", result.functions["ToTable"])
    probe = result.functions["ToTable"](
        __import__("repro.domains.xmltree", fromlist=["parse_xml"]).parse_xml(
            "<doc><div><p name='x'>A</p></div>"
            "<div><p name='x'>B</p><p name='y'>C</p></div></doc>"
        )
    )
    print("held-out probe:", probe)

    print("\n== Fig. 4: propagate class attributes ==")
    result = synthesize(ADD_CLASSES, budget_factory=budget)
    print("success:", result.success, f"({result.elapsed:.1f}s)")
    print("program:", result.functions["AddClasses"])


if __name__ == "__main__":
    main()
