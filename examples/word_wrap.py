#!/usr/bin/env python3
"""Greedy word wrap — the paper's flagship TDD sequence (§2.1, Fig. 1).

This is the hardest benchmark in the repository: the sequence teaches
line breaking in stages (no wrap → wrap at the space → wrap as late as
possible → wrap mid-word → wrap repeatedly via recursion), and the
synthesizer builds the program up step by step, growing a conditional
and finally a recursive call.

Expect a long run: the paper used a 3-minute DBS timeout on native code;
this script uses a comparable budget on the Python evaluator and prints
each TDS step as it lands.
"""

import time

from repro.core import Budget, Example, INT, STRING, Signature
from repro.core.tds import TdsSession
from repro.domains.registry import get_domain
from repro.lasy.codegen import to_python

EXAMPLES = [
    # Single word doesn't wrap.
    Example(("Word", 4), "Word"),
    # Two words wrap when longer than line.
    Example(("Extremely longWords", 14), "Extremely\nlongWords"),
    # Wrap as late as possible...
    Example(("How are", 76), "How are"),
    # ... but no later.
    Example(("How are you?", 9), "How are\nyou?"),
    Example(("Hello, how are you today?", 14), "Hello, how are\nyou today?"),
    # Wrap in middle of word.
    Example(("Abcdef", 5), "Abcde\nf"),
    Example(("ThisIsAVeryLongWord a", 15), "ThisIsAVeryLong\nWord a"),
    # Wrap multiple times (using recursion).
    Example(("How are you?", 4), "How\nare\nyou?"),
    # Complicated test to ensure program is correct.
    Example(
        ("This is a longer test sentence. a bc", 7),
        "This is\na\nlonger\ntest\nsentenc\ne. a bc",
    ),
]


def main() -> None:
    dsl = get_domain("strings").dsl()
    signature = Signature(
        "WordWrap", (("text", STRING), ("length", INT)), STRING
    )
    session = TdsSession(
        signature,
        dsl,
        budget_factory=lambda: Budget(
            max_seconds=75, max_expressions=800_000
        ),
    )
    for i, example in enumerate(EXAMPLES):
        started = time.monotonic()
        step = session.add_example(example)
        print(
            f"step {i}: {step.action:11s} ({time.monotonic() - started:5.1f}s)"
            f"  P = {str(session.program)[:110]}",
            flush=True,
        )
    result = session.finalize()
    print("\nsuccess:", result.success)
    if result.program is not None:
        print(to_python(signature, result.program))
        fn = result.function()
        print("\nWordWrap('one two three', 7) =",
              repr(fn("one two three", 7)))


if __name__ == "__main__":
    main()
