#!/usr/bin/env python3
"""Quickstart: the paper's §4.1 walkthrough, end to end.

Defines the tiny DSL of Example 1 —

    C ::= CharAt(S, N) | ToUpper(C)
    S ::= Word(S, N) | _PARAM
    N ::= 0 | 1

— and asks TDS for ``f(a) = ToUpper(CharAt(Word(a, 1), 0))`` (the
upper-cased initial of the second word) from the paper's three examples,
consumed in order. Prints each TDS step, the synthesized program, and
its generated Python/C# source.
"""

from repro.core import (
    Budget,
    DslBuilder,
    Example,
    INT,
    STRING,
    CHAR,
    Signature,
    tds,
)
from repro.lasy.codegen import to_csharp, to_python


def build_dsl():
    b = DslBuilder("walkthrough", start="C")
    b.nt("C", CHAR).nt("S", STRING).nt("N", INT)
    b.fn("C", "CharAt", ["S", "N"], lambda s, n: s[n])
    b.fn("C", "ToUpper", ["C"], lambda c: c.upper())
    b.fn("S", "Word", ["S", "N"], lambda s, n: s.split(" ")[n])
    b.param("S")
    b.constant("N")
    b.constants_from(lambda examples: {"N": [0, 1]})
    return b.build()


def main() -> None:
    dsl = build_dsl()
    signature = Signature("f", (("a", STRING),), CHAR)
    examples = [
        Example(("Sam Smith",), "S"),   # P1: first char of a
        Example(("Amy Smith",), "S"),   # P2: first char of the 2nd word
        Example(("jane doe",), "D"),    # P3: ... upper-cased
    ]
    result = tds(
        signature,
        examples,
        dsl,
        budget_factory=lambda: Budget(max_seconds=10, max_expressions=50_000),
    )
    print("success:", result.success)
    for step in result.steps:
        print(
            f"  example {step.example_index}: {step.action} "
            f"({step.dbs_time:.3f}s, {step.programs_tested} programs tested)"
        )
    print("\nsynthesized:", result.program)
    print("\nPython:")
    print(to_python(signature, result.program))
    print("\nC#:")
    print(to_csharp(signature, result.program))

    fn = result.function()
    print("\nf('Alan Turing') =", fn("Alan Turing"))


if __name__ == "__main__":
    main()
