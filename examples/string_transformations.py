#!/usr/bin/env python3
"""End-user string transformations in LaSy (§2.2, §6.1.1).

Synthesizes three LaSy programs over the extended FlashFill DSL:

1. a surname-and-initial formatter (the classic FlashFill shape);
2. the Fig. 2-style bibliography converter, combining a synthesized
   function with a user-declared ``lookup``;
3. a line bulleter using ``SplitAndMerge`` (a loop over string pieces).

Each program is written in LaSy source — the exact front-end the paper
describes — and run through the full parse → TDS → code generation
pipeline.
"""

from repro.core import Budget
from repro.lasy import synthesize, to_python

FORMAT_NAMES = """
language strings;
function string Format(string name);
require Format("Dan Grossman") == "Grossman, D.";
require Format("Sumit Gulwani") == "Gulwani, S.";
"""

BIBLIOGRAPHY = """
language strings;
lookup string VenueFullName(string abbr);
function string Cite(string entry);
require VenueFullName("PLDI") == "Programming Language Design and Implementation";
require VenueFullName("POPL") == "Principles of Programming Languages";
require VenueFullName("ICSE") == "International Conference on Software Engineering";
require Cite("Smith PLDI") == "Smith, Programming Language Design and Implementation.";
require Cite("Jones POPL") == "Jones, Principles of Programming Languages.";
"""

BULLETS = """
language strings;
function string Bullets(string text);
require Bullets("alpha\\nbeta") == "- alpha\\n- beta";
require Bullets("one") == "- one";
require Bullets("a\\nbb\\nccc") == "- a\\n- bb\\n- ccc";
"""


def show(title: str, source: str, probes) -> None:
    print(f"== {title} ==")
    result = synthesize(
        source,
        budget_factory=lambda: Budget(
            max_seconds=40, max_expressions=400_000
        ),
    )
    print("success:", result.success, f"({result.elapsed:.1f}s)")
    for name, fn in result.functions.items():
        body = getattr(fn, "body", None)
        if body is not None:
            print(to_python(fn.signature, body))
        else:
            print(f"{name}: {fn}")
    for func_name, args, note in probes:
        fn = result.functions[func_name]
        print(f"  {func_name}{args} = {fn(*args)!r}   # {note}")
    print()


def main() -> None:
    show(
        "surname and initial",
        FORMAT_NAMES,
        [("Format", ("Peter Provost",), "held-out name")],
    )
    show(
        "bibliography with a lookup (Fig. 2)",
        BIBLIOGRAPHY,
        [("Cite", ("Brown ICSE",), "uses the lookup on an unseen entry")],
    )
    show(
        "bullet every line (SplitAndMerge)",
        BULLETS,
        [("Bullets", ("w\nx\ny\nz",), "four lines, never seen")],
    )


if __name__ == "__main__":
    main()
