#!/usr/bin/env python3
"""Spreadsheet table normalization (§6.1.2).

Three normalization scenarios over the tables DSL: a layout transpose, a
wide-to-long unpivot, and a subheader promotion — the "non-standard
spreadsheets with subheaders into normalized relational tables" case the
paper's extended grammar targets."""

from repro.core import Budget
from repro.lasy import synthesize

TRANSPOSE = """
language tables;
function Table Flip(Table t);
require Flip({{"a", "b"}, {"1", "2"}, {"3", "4"}})
     == {{"a", "1", "3"}, {"b", "2", "4"}};
"""

UNPIVOT = """
language tables;
function Table Normalize(Table t);
require Normalize({{"name", "jan", "feb"},
                   {"ann", "3", "4"},
                   {"bo", "", "7"}})
     == {{"ann", "jan", "3"}, {"ann", "feb", "4"}, {"bo", "feb", "7"}};
"""

SUBHEADERS = """
language tables;
function Table Promote(Table t);
require Promote({{"Fruit", ""},
                 {"apple", "3"},
                 {"pear", "5"},
                 {"Veg", ""},
                 {"leek", "2"}})
     == {{"Fruit", "apple", "3"},
         {"Fruit", "pear", "5"},
         {"Veg", "leek", "2"}};
"""


def main() -> None:
    budget = lambda: Budget(max_seconds=20, max_expressions=200_000)
    for title, source, probe in [
        ("transpose", TRANSPOSE, ("Flip", (("x", "y"), ("1", "2")))),
        ("unpivot", UNPIVOT, None),
        ("promote subheaders", SUBHEADERS, None),
    ]:
        print(f"== {title} ==")
        result = synthesize(source, budget_factory=budget)
        print("success:", result.success, f"({result.elapsed:.1f}s)")
        for fn in result.functions.values():
            print("  ", fn)
        if probe is not None:
            name, table = probe
            print("  held-out probe:", result.functions[name](table))
        print()


if __name__ == "__main__":
    main()
