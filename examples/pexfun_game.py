#!/usr/bin/env python3
"""Playing the Pex4Fun game (§6.1.4).

TDS plays against the simulated Pex oracle: it proposes a program, the
oracle answers with a distinguishing input if the program differs from
the secret reference solution, and the counterexample becomes the next
example of the sequence — up to the paper's cap of seven rounds."""

from repro.core import Budget
from repro.pex import PUZZLES, play

SHOWCASE = ["square", "factorial", "concat-first-last", "swap-ends", "sign"]


def main() -> None:
    by_name = {p.name: p for p in PUZZLES}
    for name in SHOWCASE:
        puzzle = by_name[name]
        result = play(
            puzzle,
            budget_factory=lambda: Budget(
                max_seconds=15, max_expressions=200_000
            ),
        )
        print(f"== {puzzle.name} ({puzzle.category}) ==")
        for i, example in enumerate(result.examples):
            print(f"  round {i + 1}: Pex says {example}")
        status = "solved" if result.solved else "NOT solved"
        print(f"  {status} after {result.iterations} rounds "
              f"({result.elapsed:.1f}s)")
        if result.program is not None:
            print(f"  program: {result.program}")
        print()


if __name__ == "__main__":
    main()
