"""E3 — §6.1.3 XML transformations (TDS vs Sketch-like)."""

from repro.experiments import xml_exp


def test_e3_xml_transformations(benchmark, config):
    rows = benchmark.pedantic(
        lambda: xml_exp.run(config, include_sketch=True, sketch_seconds=6),
        rounds=1,
        iterations=1,
    )
    print()
    print(xml_exp.report(rows))
    solved = sum(r.tds_solved for r in rows)
    sketch = sum(r.sketch_solved for r in rows)
    assert solved >= 8  # paper: all 10, most under 10s
    assert sketch <= 1  # paper: none within 10 minutes
