"""F7/F8 — §6.2 example-ordering sensitivity.

Run twice: under the default FIFO scheduler (the paper's setting) and
under the adaptive scheduler, whose cheap-first ordering and timeout
deferral exist precisely to blunt the order sensitivity these figures
measure — a distant reordering that fronts a hard example should hurt
less when the scheduler can defer it behind the cheap ones.
"""

from repro.core.tds import TdsOptions
from repro.experiments import ordering


def test_f7_f8_example_ordering(benchmark, config):
    result = benchmark.pedantic(
        lambda: ordering.run(config, reorderings_per_sequence=4),
        rounds=1,
        iterations=1,
    )
    print()
    print(ordering.report(result))
    assert result.samples
    buckets = result.failure_buckets()
    # Paper shape: small perturbations mostly survive; distant
    # reorderings fail at a higher rate.
    low = [b for b in buckets if b[0] == "0.0-0.2"][0]
    high_failures = sum(f for name, f, t in buckets[2:])
    high_total = sum(t for name, f, t in buckets[2:])
    if low[2] and high_total:
        assert (low[1] / low[2]) <= max(
            high_failures / high_total, 0.5
        )


def test_f7_f8_example_ordering_adaptive(benchmark, config):
    result = benchmark.pedantic(
        lambda: ordering.run(
            config,
            reorderings_per_sequence=4,
            options=TdsOptions(schedule="adaptive"),
        ),
        rounds=1,
        iterations=1,
    )
    print()
    print(ordering.report(result))
    assert result.samples
    buckets = result.failure_buckets()
    # The adaptive scheduler must not make reordered sequences *worse*
    # than the paper shape: the near-curated bucket still mostly
    # survives.
    low = [b for b in buckets if b[0] == "0.0-0.2"][0]
    if low[2]:
        assert (low[1] / low[2]) <= 0.5
