"""F7/F8 — §6.2 example-ordering sensitivity."""

from repro.experiments import ordering


def test_f7_f8_example_ordering(benchmark, config):
    result = benchmark.pedantic(
        lambda: ordering.run(config, reorderings_per_sequence=4),
        rounds=1,
        iterations=1,
    )
    print()
    print(ordering.report(result))
    assert result.samples
    buckets = result.failure_buckets()
    # Paper shape: small perturbations mostly survive; distant
    # reorderings fail at a higher rate.
    low = [b for b in buckets if b[0] == "0.0-0.2"][0]
    high_failures = sum(f for name, f, t in buckets[2:])
    high_total = sum(t for name, f, t in buckets[2:])
    if low[2] and high_total:
        assert (low[1] / low[2]) <= max(
            high_failures / high_total, 0.5
        )
