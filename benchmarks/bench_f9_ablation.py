"""F9 — §6.3 significance of the algorithm's parts."""

import os

from repro.experiments import ablation


def test_f9_ablation(benchmark, config):
    suites = (
        None  # all four sets
        if os.environ.get("REPRO_BENCH_FULL")
        else ["tables", "xml"]
    )
    result = benchmark.pedantic(
        lambda: ablation.run(config, suites=suites, pexfun_sample=6),
        rounds=1,
        iterations=1,
    )
    print()
    print(ablation.report(result))
    for suite, counts in result.counts.items():
        # Paper shape: the full algorithm dominates each ablation.
        assert counts["full"] >= counts["neither"], suite
        if "no DSL" in counts:
            assert counts["full"] >= counts["no DSL"], suite
