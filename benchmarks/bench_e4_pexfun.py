"""E4 — §6.1.4 the Pex4Fun game (solved via Pex tests vs manual)."""

import os

from repro.experiments import pexfun_exp
from repro.pex.puzzles import PUZZLES

# A category-stratified sample keeps the default bench run bounded; the
# full 60+ puzzle sweep runs with REPRO_BENCH_FULL=1.
_SAMPLE = [
    "identity-int", "double", "square", "max-of-two", "sign",
    "factorial", "sum-to-n", "repeat-digits",
    "shout", "mirror", "greeting", "is-palindrome",
    "first-elem", "concat-first-last", "squares-of",
    "parse-and-double",
    "collatz-steps", "bitwise-or", "cubic-poly",
]


def test_e4_pexfun_game(benchmark, config):
    if os.environ.get("REPRO_BENCH_FULL"):
        puzzles = list(PUZZLES)
    else:
        puzzles = [p for p in PUZZLES if p.name in _SAMPLE]
    rows = benchmark.pedantic(
        lambda: pexfun_exp.run(config, puzzles=puzzles),
        rounds=1,
        iterations=1,
    )
    print()
    print(pexfun_exp.report(rows))
    by_category = {}
    for row in rows:
        by_category.setdefault(row.category, []).append(row)
    # Paper shape: a substantial fraction solved, mostly from Pex tests,
    # a few needing manual sequences; the named failure categories fail.
    solved = sum(r.solved for r in rows)
    assert solved >= len(rows) // 2
    assert sum(r.solved_by_pex for r in rows) >= sum(
        r.solved_manually for r in rows
    )
    for category in ("missing-component", "too-large", "unsupported-loop"):
        for row in by_category.get(category, []):
            assert not row.solved, f"{row.name} should be unsolvable"
