"""F10 — §6.4 CDF of all DBS execution times."""

from repro.experiments import cdf


def test_f10_dbs_time_cdf(benchmark, config):
    result = benchmark.pedantic(
        lambda: cdf.run(config), rounds=1, iterations=1
    )
    print()
    print(cdf.report(result))
    assert len(result.times) >= 20
    # Paper shape: the distribution is head-heavy — the median is far
    # below the timeout and most runs finish quickly.
    assert result.percentile(0.5) < config.budget_seconds / 2
    assert result.fraction_under(10.0) >= 0.6
